// Micro benchmarks (google-benchmark) for the pipeline's component costs:
// HTML parsing, entity matching, topic identification, relation
// annotation, feature extraction, training, and extraction. Not a paper
// table; used to watch for performance regressions.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/entity_matcher.h"
#include "core/extractor.h"
#include "core/pipeline.h"
#include "core/relation_annotator.h"
#include "core/topic_identification.h"
#include "core/training.h"
#include "dom/html_parser.h"
#include "synth/kb_builder.h"
#include "synth/site_generator.h"
#include "synth/world.h"

namespace ceres {
namespace {

// Shared fixture: a 40-page film site plus its seed KB.
struct MicroFixture {
  MicroFixture() {
    synth::MovieWorldConfig world_config;
    world_config.scale = 0.3;
    world = std::make_unique<synth::World>(
        synth::BuildMovieWorld(world_config));
    synth::SeedKbConfig kb_config;
    kb_config.default_coverage = 0.9;
    kb = std::make_unique<KnowledgeBase>(
        synth::BuildSeedKb(*world, kb_config));

    synth::SiteSpec spec;
    spec.name = "micro.example";
    spec.seed = 77;
    spec.tmpl.topic_type = "film";
    spec.tmpl.num_recommendations = 3;
    spec.tmpl.sections = {
        {synth::pred::kFilmDirectedBy, "director",
         synth::SectionLayout::kRow, 0.05, 3},
        {synth::pred::kFilmHasCastMember, "cast",
         synth::SectionLayout::kList, 0.05, 15},
        {synth::pred::kFilmHasGenre, "genre", synth::SectionLayout::kList,
         0.05, 5},
        {synth::pred::kFilmReleaseDate, "release_date",
         synth::SectionLayout::kRow, 0.05, 1},
    };
    TypeId film = *world->kb.ontology().TypeByName("film");
    const auto& films = world->OfType(film);
    spec.topics.assign(films.begin(), films.begin() + 40);
    generated = GenerateSite(*world, spec);
    for (const synth::GeneratedPage& page : generated) {
      pages.push_back(std::move(ParseHtml(page.html)).value());
    }
    for (const DomDocument& doc : pages) page_ptrs.push_back(&doc);
    for (const DomDocument& doc : pages) {
      mentions.push_back(MatchPageMentions(doc, *kb));
    }
    TopicConfig topic_config;
    topics = IdentifyTopics(page_ptrs, mentions, *kb, topic_config);
    annotations = AnnotateRelations(page_ptrs, mentions, topics, *kb, {});
    featurizer =
        std::make_unique<FeatureExtractor>(page_ptrs, FeatureConfig{});
    model = std::make_unique<TrainedModel>(std::move(
        TrainExtractor(page_ptrs, annotations.annotations, *featurizer,
                       kb->ontology(), TrainingConfig{}))
                                               .value());
  }

  std::unique_ptr<synth::World> world;
  std::unique_ptr<KnowledgeBase> kb;
  std::vector<synth::GeneratedPage> generated;
  std::vector<DomDocument> pages;
  std::vector<const DomDocument*> page_ptrs;
  std::vector<PageMentions> mentions;
  TopicResult topics;
  AnnotationResult annotations;
  std::unique_ptr<FeatureExtractor> featurizer;
  std::unique_ptr<TrainedModel> model;
};

MicroFixture& Fixture() {
  static auto* fixture = new MicroFixture();
  return *fixture;
}

void BM_ParseHtml(benchmark::State& state) {
  const std::string& html = Fixture().generated[0].html;
  for (auto _ : state) {
    Result<DomDocument> doc = ParseHtml(html);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(html.size()));
}
BENCHMARK(BM_ParseHtml);

void BM_EntityMatching(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  for (auto _ : state) {
    PageMentions mentions = MatchPageMentions(fixture.pages[0],
                                              *fixture.kb);
    benchmark::DoNotOptimize(mentions);
  }
}
BENCHMARK(BM_EntityMatching);

void BM_TopicIdentification(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  for (auto _ : state) {
    TopicResult topics = IdentifyTopics(fixture.page_ptrs, fixture.mentions,
                                        *fixture.kb, TopicConfig{});
    benchmark::DoNotOptimize(topics);
  }
}
BENCHMARK(BM_TopicIdentification);

void BM_RelationAnnotation(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  for (auto _ : state) {
    AnnotationResult annotations =
        AnnotateRelations(fixture.page_ptrs, fixture.mentions,
                          fixture.topics, *fixture.kb, {});
    benchmark::DoNotOptimize(annotations);
  }
}
BENCHMARK(BM_RelationAnnotation);

void BM_FeatureExtraction(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  const DomDocument& doc = fixture.pages[0];
  std::vector<NodeId> fields = doc.TextFields();
  for (auto _ : state) {
    for (NodeId node : fields) {
      SparseVector features =
          fixture.featurizer->Extract(doc, node, &fixture.model->features);
      benchmark::DoNotOptimize(features);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fields.size()));
}
BENCHMARK(BM_FeatureExtraction);

void BM_Training(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  for (auto _ : state) {
    Result<TrainedModel> model = TrainExtractor(
        fixture.page_ptrs, fixture.annotations.annotations,
        *fixture.featurizer, fixture.kb->ontology(), TrainingConfig{});
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_Training)->Unit(benchmark::kMillisecond);

void BM_Extraction(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  std::vector<PageIndex> indices;
  for (size_t i = 0; i < fixture.pages.size(); ++i) {
    indices.push_back(static_cast<PageIndex>(i));
  }
  for (auto _ : state) {
    std::vector<Extraction> extractions =
        ExtractFromPages(fixture.page_ptrs, indices, fixture.model.get(),
                         *fixture.featurizer, ExtractionConfig{});
    benchmark::DoNotOptimize(extractions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fixture.pages.size()));
}
BENCHMARK(BM_Extraction)->Unit(benchmark::kMillisecond);

void BM_FullPipeline40Pages(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  for (auto _ : state) {
    Result<PipelineResult> result =
        RunPipeline(fixture.pages, *fixture.kb, PipelineConfig{});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullPipeline40Pages)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ceres

BENCHMARK_MAIN();
