#include "fusion/knowledge_fusion.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>

#include "text/fuzzy_matcher.h"
#include "text/normalize.h"

namespace ceres::fusion {

namespace {

// Canonical key of a triple across sites: normalized subject (with a
// trailing year stripped, so "Film (1989)" and "Film" merge), predicate,
// normalized object.
using TripleKey = std::tuple<std::string, PredicateId, std::string>;

struct Support {
  // Best extraction confidence per supporting site.
  std::map<std::string, double> site_confidence;
};

std::string CanonicalSubject(const std::string& raw) {
  return StripTrailingYear(NormalizeText(raw));
}

// Reliability-weighted noisy-or: each supporting site contributes
// p = reliability * extraction confidence; belief = 1 - prod(1 - p).
double Belief(const Support& support,
              const std::unordered_map<std::string, double>& reliability) {
  double miss = 1.0;
  for (const auto& [site, confidence] : support.site_confidence) {
    auto it = reliability.find(site);
    double r = it == reliability.end() ? 0.5 : it->second;
    miss *= 1.0 - r * confidence;
  }
  return 1.0 - miss;
}

}  // namespace

FusionResult FuseExtractions(const std::vector<SiteExtractions>& sites,
                             const Ontology& ontology,
                             const FusionConfig& config) {
  FusionResult result;

  // 1. Normalize and collect support. The deadline is observed at site
  // granularity: an expired budget stops further ingestion but everything
  // already collected still flows through scoring below.
  std::map<TripleKey, Support> support;
  std::unordered_map<std::string, double> reliability;
  for (const SiteExtractions& site : sites) {
    if (config.deadline.expired()) {
      result.deadline_expired = true;
      break;
    }
    reliability.emplace(site.site, config.initial_site_reliability);
    for (const Extraction& extraction : site.extractions) {
      if (extraction.predicate == kNamePredicate) continue;
      if (extraction.confidence < config.min_extraction_confidence) continue;
      TripleKey key{CanonicalSubject(extraction.subject),
                    extraction.predicate,
                    NormalizeText(extraction.object)};
      if (std::get<0>(key).empty() || std::get<2>(key).empty()) continue;
      double& best = support[key].site_confidence[site.site];
      best = std::max(best, extraction.confidence);
    }
  }

  // 2. Alternate triple-belief and site-reliability updates. Each
  // iteration refines the estimate; stopping early under an expired
  // deadline degrades smoothly toward the initial-reliability prior.
  for (int iteration = 0; iteration < config.reliability_iterations;
       ++iteration) {
    if (config.deadline.expired()) {
      result.deadline_expired = true;
      break;
    }
    std::unordered_map<std::string, double> belief_sum;
    std::unordered_map<std::string, int64_t> belief_count;
    for (const auto& [key, sup] : support) {
      double belief = Belief(sup, reliability);
      for (const auto& [site, confidence] : sup.site_confidence) {
        belief_sum[site] += belief;
        ++belief_count[site];
      }
    }
    for (auto& [site, r] : reliability) {
      auto count_it = belief_count.find(site);
      if (count_it == belief_count.end() || count_it->second == 0) continue;
      double mean = belief_sum[site] / static_cast<double>(count_it->second);
      r = std::clamp(mean, config.reliability_floor,
                     config.reliability_ceiling);
    }
  }

  // 3. Score triples.
  result.triples.reserve(support.size());
  for (const auto& [key, sup] : support) {
    FusedTriple triple;
    triple.subject = std::get<0>(key);
    triple.predicate = std::get<1>(key);
    triple.object = std::get<2>(key);
    triple.score = Belief(sup, reliability);
    for (const auto& [site, confidence] : sup.site_confidence) {
      triple.sites.push_back(site);
    }
    result.triples.push_back(std::move(triple));
  }

  // 4. Functional-predicate conflict resolution: keep the best object per
  // (subject, predicate); flag or drop the rest.
  std::map<std::pair<std::string, PredicateId>, const FusedTriple*> winner;
  for (const FusedTriple& triple : result.triples) {
    if (ontology.predicate(triple.predicate).multi_valued) continue;
    auto key = std::make_pair(triple.subject, triple.predicate);
    auto it = winner.find(key);
    if (it == winner.end() || triple.score > it->second->score) {
      winner[key] = &triple;
    }
  }
  std::vector<FusedTriple> resolved;
  resolved.reserve(result.triples.size());
  for (FusedTriple& triple : result.triples) {
    if (!ontology.predicate(triple.predicate).multi_valued) {
      auto key = std::make_pair(triple.subject, triple.predicate);
      if (winner.at(key) != &triple) {
        if (!config.keep_conflicts) continue;
        triple.conflicting = true;
      }
    }
    resolved.push_back(std::move(triple));
  }
  result.triples = std::move(resolved);

  std::sort(result.triples.begin(), result.triples.end(),
            [](const FusedTriple& a, const FusedTriple& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.subject != b.subject) return a.subject < b.subject;
              if (a.predicate != b.predicate) return a.predicate < b.predicate;
              return a.object < b.object;
            });

  result.sites.reserve(reliability.size());
  std::unordered_map<std::string, int64_t> triple_counts;
  for (const FusedTriple& triple : result.triples) {
    for (const std::string& site : triple.sites) ++triple_counts[site];
  }
  // A site name may appear in several SiteExtractions entries (e.g. two
  // crawl shards of one site); its extractions were already pooled above,
  // so report it once — a row per entry would double-count triple_count
  // in any sum over result.sites.
  std::set<std::string> reported;
  for (const SiteExtractions& site : sites) {
    // Sites never ingested (deadline expired first) have no estimate and
    // get no row, rather than a misleading reliability of zero.
    auto it = reliability.find(site.site);
    if (it == reliability.end()) continue;
    if (!reported.insert(site.site).second) continue;
    result.sites.push_back(
        SiteReliability{site.site, it->second, triple_counts[site.site]});
  }
  return result;
}

KnowledgeBase BuildKbFromFusedTriples(const FusionResult& fused,
                                      const Ontology& ontology,
                                      double min_score) {
  KnowledgeBase kb(ontology);
  std::map<std::pair<TypeId, std::string>, EntityId> entities;
  auto intern = [&](TypeId type, const std::string& name) {
    auto key = std::make_pair(type, name);
    auto it = entities.find(key);
    if (it != entities.end()) return it->second;
    EntityId id = kb.AddEntity(type, name);
    entities.emplace(key, id);
    return id;
  };
  for (const FusedTriple& triple : fused.triples) {
    if (triple.score < min_score || triple.conflicting) continue;
    const PredicateDecl& predicate = ontology.predicate(triple.predicate);
    EntityId subject = intern(predicate.subject_type, triple.subject);
    EntityId object = intern(predicate.object_type, triple.object);
    kb.AddTriple(subject, triple.predicate, object);
  }
  kb.Freeze();
  return kb;
}

}  // namespace ceres::fusion
