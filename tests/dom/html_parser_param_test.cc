// Parameterized robustness sweep for the tag-soup parser: every input —
// however malformed — must parse into a structurally consistent tree
// (correct parent/child back-links, correct same-tag sibling indices) and
// never crash. Includes a deterministic random-bytes fuzz case.

#include <gtest/gtest.h>

#include <string>

#include "dom/html_parser.h"
#include "dom/xpath.h"
#include "util/random.h"

namespace ceres {
namespace {

// Structural consistency invariants every parsed document must satisfy.
void ExpectWellFormed(const DomDocument& doc) {
  for (NodeId id = 0; id < doc.size(); ++id) {
    const DomNode& node = doc.node(id);
    if (id == doc.root()) {
      EXPECT_EQ(node.parent, kInvalidNode);
    } else {
      ASSERT_GE(node.parent, 0);
      ASSERT_LT(node.parent, doc.size());
      const DomNode& parent = doc.node(node.parent);
      ASSERT_LT(node.child_position, parent.child_count);
      const std::vector<NodeId> siblings(doc.children(node.parent).begin(),
                                         doc.children(node.parent).end());
      EXPECT_EQ(siblings[static_cast<size_t>(node.child_position)], id);
    }
    // sibling_index counts same-tag predecessors, 1-based.
    if (node.parent != kInvalidNode) {
      int same_tag = 0;
      for (NodeId sibling : doc.children(node.parent)) {
        if (sibling == id) break;
        if (doc.node(sibling).tag == node.tag) ++same_tag;
      }
      EXPECT_EQ(node.sibling_index, same_tag + 1);
    }
    // Every node resolves through its own XPath.
    EXPECT_EQ(XPath::FromNode(doc, id).Resolve(doc), id);
  }
}

class MalformedHtmlTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MalformedHtmlTest, ParsesWithoutCrashAndStaysConsistent) {
  Result<DomDocument> doc = ParseHtml(GetParam());
  ASSERT_TRUE(doc.ok());
  ExpectWellFormed(*doc);
}

INSTANTIATE_TEST_SUITE_P(
    Soup, MalformedHtmlTest,
    ::testing::Values(
        "",
        "plain text with no tags at all",
        "<",
        "<>",
        "< >",
        "<div",
        "</div>",
        "</",
        "<div><span></div></span>",           // Crossed close tags.
        "<b><i>nested</b> wrong</i>",
        "<div class=>empty attr</div>",
        "<div class>valueless</div>",
        "<div class='unterminated>text</div>",
        "<p><p><p><p>",
        "<ul><li><ul><li>deep<li>soup",
        "<table><td>no tr</td></table>",
        "<script>if (a < b) { alert('</'); }</script><p>after</p>",
        "<style>div { color: red; }</style>",
        "<!-- unterminated comment <div>hidden</div>",
        "<!doctype html><?xml version=\"1.0\"?><div>x</div>",
        "<DIV CLASS=\"UPPER\">case</DIV>",
        "<div>&unknown; &amp &#x; &#xZZ; &#99999999999;</div>",
        "<img><br><hr><input type=text>",
        "<a href=\"x\"<b>mangled</b>",
        "<div>\xc3\x28 bad utf8</div>",
        "<html><html><body><body>double</body></body></html></html>"));

TEST(HtmlParserFuzzTest, RandomBytesNeverBreakInvariants) {
  Rng rng(2024);
  const std::string vocab = "<>/=\"' abcdiv spn&;#x-!";
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    int length = static_cast<int>(rng.Uniform(0, 200));
    for (int i = 0; i < length; ++i) {
      input.push_back(vocab[rng.Index(vocab.size())]);
    }
    Result<DomDocument> doc = ParseHtml(input);
    ASSERT_TRUE(doc.ok()) << input;
    ExpectWellFormed(*doc);
  }
}

TEST(HtmlParserFuzzTest, RandomTagSoupNeverBreaksInvariants) {
  Rng rng(55);
  const std::vector<std::string> pieces{
      "<div>",  "</div>", "<span class=a>", "</span>", "<ul>",  "</ul>",
      "<li>",   "</li>",  "<p>",            "</p>",    "text ", "&amp;",
      "<br>",   "<table>", "<tr>",          "<td>",    "</td>", "</tr>",
      "</table>", "<!-- c -->"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    int length = static_cast<int>(rng.Uniform(0, 60));
    for (int i = 0; i < length; ++i) input += rng.Pick(pieces);
    Result<DomDocument> doc = ParseHtml(input);
    ASSERT_TRUE(doc.ok()) << input;
    ExpectWellFormed(*doc);
  }
}

}  // namespace
}  // namespace ceres
