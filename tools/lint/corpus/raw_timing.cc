// Corpus: serving/pipeline code timing a stage with a raw steady_clock
// (the test lints this content under a src/core/ path). Exactly one
// raw-timing violation — the ad-hoc clock pair; the obs::TraceSpan /
// obs::MonotonicNow form below is compliant, so the measurement lands in
// the shared trace and metrics surfaces.
// Never compiled — linted by tests/lint/ceres_lint_test.cc.

#include <chrono>

#include "obs/trace.h"

namespace ceres {

void TimeStage(obs::TraceTree* tree) {
  const auto start = std::chrono::steady_clock::now();  // BAD: ad-hoc timer
  (void)start;

  obs::TraceSpan span(tree, "stage");  // timing lands in the trace tree
  const obs::TimePoint t0 = obs::MonotonicNow();
  (void)obs::ElapsedMicros(t0, obs::MonotonicNow());
}

}  // namespace ceres
