#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "dom/html_parser.h"
#include "synth/truth.h"
#include "util/parallel.h"
#include "util/logging.h"

namespace ceres::bench {

ParsedCorpus ParseCorpus(synth::Corpus corpus,
                         uint64_t (*alloc_counter)()) {
  ParsedCorpus parsed(std::move(corpus));
  for (const synth::SyntheticSite& site : parsed.corpus.sites) {
    ParsedSite out;
    out.name = site.name;
    out.focus = site.focus;
    for (const synth::GeneratedPage& page : site.pages) {
      const uint64_t before = alloc_counter != nullptr ? alloc_counter() : 0;
      Result<DomDocument> doc = ParseHtml(page.html);
      if (alloc_counter != nullptr) {
        parsed.parse_allocs += alloc_counter() - before;
      }
      CERES_CHECK_MSG(doc.ok(), "parse failed for " << page.url << ": "
                                                    << doc.status().ToString());
      doc->set_url(page.url);
      out.pages.push_back(std::move(doc).value());
    }
    out.truth = synth::BuildSiteTruth(site.pages, out.pages);
    CERES_CHECK_MSG(out.truth.unresolved == 0,
                    out.truth.unresolved
                        << " unresolved ground-truth XPaths on "
                        << site.name);
    parsed.sites.push_back(std::move(out));
  }
  return parsed;
}

Split HalfSplit(size_t num_pages) {
  Split split;
  for (size_t i = 0; i < num_pages; ++i) {
    (i % 2 == 0 ? split.train : split.eval)
        .push_back(static_cast<PageIndex>(i));
  }
  return split;
}

PipelineConfig MakeConfig(System system, const Split& split) {
  PipelineConfig config;
  config.annotation_pages = split.train;
  config.extraction_pages = split.eval;
  config.extraction.confidence_threshold = 0.5;
  if (system == System::kCeresTopic) {
    config.annotator.use_relation_filtering = false;
  }
  return config;
}

PipelineResult RunSite(const ParsedSite& site, const KnowledgeBase& seed_kb,
                       const PipelineConfig& config) {
  Result<PipelineResult> result = RunPipeline(site.pages, seed_kb, config);
  CERES_CHECK_MSG(result.ok(), "pipeline failed on "
                                   << site.name << ": "
                                   << result.status().ToString());
  return std::move(result).value();
}

std::vector<Annotation> ManualAnnotations(const ParsedSite& site,
                                          const Split& split,
                                          int num_pages) {
  std::vector<Annotation> annotations;
  int used = 0;
  for (PageIndex page : split.train) {
    const eval::PageTruth& truth = site.truth.pages[static_cast<size_t>(page)];
    if (truth.topic == kInvalidEntity || truth.facts.empty()) continue;
    for (const eval::PageTruth::Fact& fact : truth.facts) {
      annotations.push_back(
          Annotation{page, fact.node, fact.predicate, kInvalidEntity});
    }
    if (++used >= num_pages) break;
  }
  return annotations;
}

std::vector<Extraction> RunVertex(const ParsedSite& site, const Split& split,
                                  int manual_pages) {
  std::vector<const DomDocument*> all_pages;
  for (const DomDocument& doc : site.pages) all_pages.push_back(&doc);
  std::vector<Annotation> manual =
      ManualAnnotations(site, split, manual_pages);
  if (manual.empty()) return {};
  Result<VertexWrapper> wrapper = VertexWrapper::Learn(all_pages, manual);
  if (!wrapper.ok()) return {};
  std::vector<const DomDocument*> eval_pages;
  for (PageIndex page : split.eval) {
    eval_pages.push_back(&site.pages[static_cast<size_t>(page)]);
  }
  return wrapper->Extract(eval_pages, split.eval);
}

std::vector<PredicateId> EvalPredicates(const synth::Corpus& corpus,
                                        bool include_name) {
  std::vector<PredicateId> predicates;
  if (include_name) predicates.push_back(kNamePredicate);
  for (const std::string& name : corpus.eval_predicates) {
    Result<PredicateId> id =
        corpus.seed_kb.ontology().PredicateByName(name);
    CERES_CHECK_MSG(id.ok(), "unknown eval predicate " << name);
    predicates.push_back(*id);
  }
  return predicates;
}

eval::Prf SumPrf(const std::map<PredicateId, eval::Prf>& by_predicate) {
  eval::Prf total;
  for (const auto& [predicate, prf] : by_predicate) total += prf;
  return total;
}

void ForEachSite(const ParsedCorpus& corpus,
                 const std::function<void(size_t)>& body) {
  // Default config: all hardware threads, one site per worker minimum.
  ParallelFor(corpus.sites.size(), ParallelConfig{}, body);
}

void BenchJson::Emit(const std::string& json_object) {
  std::printf("BENCH %s\n", json_object.c_str());
  lines_.push_back(json_object);
}

bool BenchJson::Persist(const std::string& path) const {
  const std::string target =
      path.empty() ? "BENCH_" + name_ + ".json" : path;
  std::FILE* out = std::fopen(target.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", target.c_str());
    return false;
  }
  for (const std::string& line : lines_) {
    std::fprintf(out, "%s\n", line.c_str());
  }
  std::fclose(out);
  std::printf("persisted %zu BENCH line(s) to %s\n", lines_.size(),
              target.c_str());
  return true;
}

}  // namespace ceres::bench
