// Checkpoint layer tests: atomic save/load roundtrip, corrupt and missing
// files, directory listing, and the corrupt-checkpoint process fault.

#include "dist/checkpoint.h"

#include <stdlib.h>
#include <unistd.h>

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ceres::dist {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ceres_ckpt_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    // Best-effort cleanup of the handful of files the tests create.
    for (int32_t shard : ListShardCheckpoints(dir_)) {
      (void)::unlink(ShardCheckpointPath(dir_, shard).c_str());
    }
    (void)::rmdir(dir_.c_str());
  }

  static ShardResult MakeResult(int32_t shard) {
    ShardResult result;
    result.shard = shard;
    SiteResult site;
    site.site = "ck.example";
    site.pages = 3;
    Extraction e;
    e.page = 0;
    e.node = 7;
    e.predicate = 1;
    e.subject = "Film";
    e.object = "Director";
    e.confidence = 0.875;
    site.extractions.push_back(e);
    result.sites.push_back(site);
    return result;
  }

  std::string dir_;
};

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  int64_t bytes = 0;
  ASSERT_TRUE(SaveShardCheckpoint(dir_, MakeResult(2), &bytes).ok());
  EXPECT_GT(bytes, 0);

  Result<ShardResult> loaded = LoadShardCheckpoint(dir_, 2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->shard, 2);
  ASSERT_EQ(loaded->sites.size(), 1u);
  EXPECT_EQ(loaded->sites[0].site, "ck.example");
  ASSERT_EQ(loaded->sites[0].extractions.size(), 1u);
  EXPECT_EQ(loaded->sites[0].extractions[0].confidence, 0.875);
}

TEST_F(CheckpointTest, MissingIsNotFound) {
  EXPECT_EQ(LoadShardCheckpoint(dir_, 9).status().code(),
            StatusCode::kNotFound);
}

TEST_F(CheckpointTest, SaveLeavesNoTempFile) {
  ASSERT_TRUE(SaveShardCheckpoint(dir_, MakeResult(0), nullptr).ok());
  // Only the renamed-in-place final file may exist.
  std::vector<int32_t> shards = ListShardCheckpoints(dir_);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], 0);
}

TEST_F(CheckpointTest, OverwriteReplacesAtomically) {
  ASSERT_TRUE(SaveShardCheckpoint(dir_, MakeResult(1), nullptr).ok());
  ShardResult second = MakeResult(1);
  second.sites[0].pages = 42;
  ASSERT_TRUE(SaveShardCheckpoint(dir_, second, nullptr).ok());
  Result<ShardResult> loaded = LoadShardCheckpoint(dir_, 1);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->sites[0].pages, 42);
}

TEST_F(CheckpointTest, CorruptFileIsInternal) {
  ASSERT_TRUE(SaveShardCheckpoint(dir_, MakeResult(5), nullptr).ok());
  ASSERT_TRUE(CorruptShardCheckpoint(dir_, 5).ok());
  Result<ShardResult> loaded = LoadShardCheckpoint(dir_, 5);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInternal);
}

TEST_F(CheckpointTest, ShardIdMismatchRejected) {
  // A checkpoint renamed onto the wrong shard id must not load.
  ASSERT_TRUE(SaveShardCheckpoint(dir_, MakeResult(3), nullptr).ok());
  ASSERT_EQ(::rename(ShardCheckpointPath(dir_, 3).c_str(),
                     ShardCheckpointPath(dir_, 4).c_str()),
            0);
  Result<ShardResult> loaded = LoadShardCheckpoint(dir_, 4);
  ASSERT_EQ(loaded.status().code(), StatusCode::kInternal);
  EXPECT_NE(loaded.status().message().find("holds shard"),
            std::string::npos);
}

TEST_F(CheckpointTest, TruncatedFileIsInternal) {
  ASSERT_TRUE(SaveShardCheckpoint(dir_, MakeResult(6), nullptr).ok());
  const std::string path = ShardCheckpointPath(dir_, 6);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_EQ(LoadShardCheckpoint(dir_, 6).status().code(),
            StatusCode::kInternal);
}

TEST_F(CheckpointTest, ListSkipsForeignFiles) {
  ASSERT_TRUE(SaveShardCheckpoint(dir_, MakeResult(10), nullptr).ok());
  ASSERT_TRUE(SaveShardCheckpoint(dir_, MakeResult(2), nullptr).ok());
  {
    std::ofstream junk(dir_ + "/notes.txt");
    junk << "not a checkpoint";
  }
  {
    std::ofstream junk(dir_ + "/shard_x.ckpt");
    junk << "non-numeric id";
  }
  std::vector<int32_t> shards = ListShardCheckpoints(dir_);
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0], 2);
  EXPECT_EQ(shards[1], 10);
  (void)::unlink((dir_ + "/notes.txt").c_str());
  (void)::unlink((dir_ + "/shard_x.ckpt").c_str());
}

TEST_F(CheckpointTest, CorruptMissingIsNotFound) {
  EXPECT_EQ(CorruptShardCheckpoint(dir_, 77).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ceres::dist
