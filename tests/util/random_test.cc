#include "util/random.h"

#include <gtest/gtest.h>

#include <set>

namespace ceres {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform(0, 1'000'000) == b.Uniform(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDegenerateRange) {
  Rng rng(1);
  EXPECT_EQ(rng.Uniform(3, 3), 3);
}

TEST(RngTest, IndexCoversAllSlots) {
  Rng rng(2);
  std::set<size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.03);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(6);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(7);
  std::vector<std::string> items{"x", "y", "z"};
  for (int i = 0; i < 50; ++i) {
    const std::string& picked = rng.Pick(items);
    EXPECT_TRUE(picked == "x" || picked == "y" || picked == "z");
  }
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng parent_a(9);
  Rng parent_b(9);
  Rng child_a = parent_a.Fork();
  Rng child_b = parent_b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child_a.Uniform(0, 1000), child_b.Uniform(0, 1000));
  }
  // Parents continue to agree after forking.
  EXPECT_EQ(parent_a.Uniform(0, 1000), parent_b.Uniform(0, 1000));
}

TEST(RngTest, PoissonMeanRoughlyCorrect) {
  Rng rng(10);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) sum += rng.Poisson(4.0);
  EXPECT_NEAR(sum / 5000.0, 4.0, 0.2);
}

}  // namespace
}  // namespace ceres
