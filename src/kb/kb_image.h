#ifndef CERES_KB_KB_IMAGE_H_
#define CERES_KB_KB_IMAGE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/mmap_file.h"
#include "util/status.h"

namespace ceres {

// ---------------------------------------------------------------------------
// The frozen-KB image format: one flat file holding the post-Freeze() CSR
// arrays, designed to be mmap'd read-only and queried in place.
//
//   +--------------------------------------------------------------+
//   | KbImageHeader (magic, version, checksums, section table)     |
//   +--------------------------------------------------------------+
//   | sections, each 8-byte aligned, in KbImageSectionId order:    |
//   |   types            KbTypeRecord[num_types]                   |
//   |   predicates       KbPredicateRecord[num_predicates]         |
//   |   entities         KbEntityRecord[num_entities]              |
//   |   alias_refs       KbStringRef[total_aliases]                |
//   |   triples          Triple[num_triples]  (sorted s,p,o)       |
//   |   subject_offsets  uint64[num_entities + 1]                  |
//   |   object_offsets   uint64[num_entities + 1]                  |
//   |   objects          int64[] (per-subject sorted unique)       |
//   |   name_keys        KbNameKey[] (sorted by key bytes)         |
//   |   name_ids         int64[] (per-key match lists)             |
//   |   object_counts    KbObjectStringCount[] (sorted by key)     |
//   |   strings          raw UTF-8 blob (all KbStringRefs point in)|
//   +--------------------------------------------------------------+
//
// Every record is fixed-size, trivially copyable, and 8-byte aligned, so a
// mapped section can be reinterpreted as a typed span directly (UBSan-clean
// alignment). Strings are referenced by (offset, length) into the strings
// section — no pointers, no relocation. Integers are stored in native byte
// order; images are a same-architecture serving format, not an interchange
// format (the text KB of kb_io.h remains the portable one).
// ---------------------------------------------------------------------------

inline constexpr char kKbImageMagic[8] = {'C', 'E', 'R', 'E',
                                          'S', 'K', 'B', '1'};
inline constexpr uint32_t kKbImageVersion = 1;

/// A string stored out-of-line in the strings section.
struct KbStringRef {
  uint64_t offset = 0;
  uint64_t length = 0;
};
static_assert(sizeof(KbStringRef) == 16);

/// One ontology entity type (EntityTypeDecl, serialized).
struct KbTypeRecord {
  KbStringRef name;
  uint32_t is_literal = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(KbTypeRecord) == 24);

/// One ontology predicate (PredicateDecl, serialized).
struct KbPredicateRecord {
  KbStringRef name;
  int32_t subject_type = -1;
  int32_t object_type = -1;
  uint32_t multi_valued = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(KbPredicateRecord) == 32);

/// One KB entity. Aliases are the alias_refs rows [alias_begin, alias_end).
struct KbEntityRecord {
  KbStringRef name;
  uint64_t alias_begin = 0;
  uint64_t alias_end = 0;
  int32_t type = -1;
  int32_t pad = 0;
};
static_assert(sizeof(KbEntityRecord) == 40);

/// One normalized surface key of the name index; its match list (entity
/// ids in registration order) is name_ids rows [ids_begin, ids_end). The
/// name_keys section is sorted by key bytes for binary-search lookup.
struct KbNameKey {
  KbStringRef key;
  uint64_t ids_begin = 0;
  uint64_t ids_end = 0;
};
static_assert(sizeof(KbNameKey) == 32);

/// One normalized object string with its triple count (the §3.1.1
/// common-string statistic), sorted by key bytes.
struct KbObjectStringCount {
  KbStringRef key;
  int64_t count = 0;
};
static_assert(sizeof(KbObjectStringCount) == 24);

enum KbImageSectionId : uint32_t {
  kKbSectionTypes = 0,
  kKbSectionPredicates,
  kKbSectionEntities,
  kKbSectionAliasRefs,
  kKbSectionTriples,
  kKbSectionSubjectOffsets,
  kKbSectionObjectOffsets,
  kKbSectionObjects,
  kKbSectionNameKeys,
  kKbSectionNameIds,
  kKbSectionObjectStringCounts,
  kKbSectionStrings,
  kKbImageSectionCount,
};

struct KbImageSection {
  uint64_t offset = 0;
  uint64_t bytes = 0;
};
static_assert(sizeof(KbImageSection) == 16);

struct KbImageHeader {
  char magic[8] = {};
  uint32_t version = 0;
  uint32_t section_count = 0;
  uint64_t file_bytes = 0;
  /// FNV-1a over [sizeof(KbImageHeader), file_bytes) — everything after
  /// the header, padding included. Verified only on request (it is an
  /// O(n) pass; the structural checks below stay O(1)).
  uint64_t payload_checksum = 0;
  /// FNV-1a over this header with header_checksum itself zeroed. Always
  /// verified on open.
  uint64_t header_checksum = 0;
  KbImageSection sections[kKbImageSectionCount] = {};
};
static_assert(std::is_trivially_copyable_v<KbImageHeader>);
static_assert(sizeof(KbImageHeader) % 8 == 0);

/// Accumulates raw section contents and serializes them into one image
/// buffer (header + aligned sections + checksums). The caller appends
/// typed records; the builder owns layout and integrity.
class KbImageBuilder {
 public:
  /// Appends one fixed-size record to `section`.
  template <typename T>
  void Append(KbImageSectionId section, const T& record) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= 8);
    const char* bytes = reinterpret_cast<const char*>(&record);
    sections_[section].insert(sections_[section].end(), bytes,
                              bytes + sizeof(T));
  }

  /// Appends `text` to the strings section and returns its ref.
  KbStringRef AddString(std::string_view text);

  /// Lays out the final image: header, then sections in id order, each
  /// zero-padded to 8-byte alignment, with both checksums filled in.
  std::vector<char> Serialize() const;

 private:
  std::array<std::vector<char>, kKbImageSectionCount> sections_;
};

/// A validated view over image bytes — either an owned buffer (freshly
/// frozen KB) or a read-only mapping (out-of-core KB). Move-only; spans
/// and string_views handed out stay valid for the KbImage's lifetime.
class KbImage {
 public:
  KbImage() = default;
  KbImage(KbImage&&) = default;
  KbImage& operator=(KbImage&&) = default;
  KbImage(const KbImage&) = delete;
  KbImage& operator=(const KbImage&) = delete;

  /// Wraps an owned buffer (as produced by KbImageBuilder::Serialize).
  static Result<KbImage> FromBuffer(std::vector<char> buffer,
                                    bool verify_payload = false);

  /// Maps `path` read-only; O(1) in the image size unless `verify_payload`
  /// (which runs the full-payload checksum). Corruption (bad magic, wrong
  /// version, truncation, checksum mismatch, malformed section table)
  /// yields a typed kDataLoss status, never a crash.
  static Result<KbImage> Map(const std::string& path,
                             bool verify_payload = false);

  bool valid() const { return data_ != nullptr; }
  const char* data() const { return data_; }
  size_t size() const { return size_; }
  const KbImageHeader& header() const {
    return *reinterpret_cast<const KbImageHeader*>(data_);
  }

  /// The records of `section` as a typed span. The section byte count must
  /// be an exact multiple of sizeof(T) (validated by the typed open path).
  template <typename T>
  std::span<const T> Section(KbImageSectionId section) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const KbImageSection& s = header().sections[section];
    return std::span<const T>(
        reinterpret_cast<const T*>(data_ + s.offset),
        static_cast<size_t>(s.bytes) / sizeof(T));
  }

  /// The string `ref` points at. `ref` must lie inside the strings
  /// section (guaranteed for refs written by KbImageBuilder; Validate
  /// checks the section table, and VerifyRefs checks every stored ref).
  std::string_view View(KbStringRef ref) const {
    const KbImageSection& s = header().sections[kKbSectionStrings];
    return std::string_view(data_ + s.offset + ref.offset,
                            static_cast<size_t>(ref.length));
  }

  /// Deep check that every stored KbStringRef and index range lies in
  /// bounds. O(n); used by tests and `ceres_kb_build --verify`.
  Status VerifyRefs() const;

 private:
  Status Validate(bool verify_payload) const;

  std::vector<char> owned_;
  MappedFile mapped_;
  const char* data_ = nullptr;
  size_t size_ = 0;
};

/// Writes `image` (a serialized buffer or a KbImage's bytes) to `path`
/// atomically enough for a build step: write to a temp sibling then rename.
Status WriteKbImageFile(std::span<const char> image, const std::string& path);

}  // namespace ceres

#endif  // CERES_KB_KB_IMAGE_H_
