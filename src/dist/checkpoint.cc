#include "dist/checkpoint.h"

#include <dirent.h>
#include <errno.h>
#include <stdio.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/string_util.h"

namespace ceres::dist {

namespace {

constexpr std::string_view kCheckpointPrefix = "shard_";
constexpr std::string_view kCheckpointSuffix = ".ckpt";

}  // namespace

std::string ShardCheckpointPath(std::string_view dir, int32_t shard) {
  return StrCat(dir, "/", kCheckpointPrefix, shard, kCheckpointSuffix);
}

Status SaveShardCheckpoint(std::string_view dir, const ShardResult& result,
                           int64_t* bytes_written) {
  const std::string path = ShardCheckpointPath(dir, result.shard);
  // Same-directory temp file so the rename is atomic on every POSIX
  // filesystem; the pid suffix keeps a concurrently resuming coordinator
  // from clobbering our in-flight write.
  const std::string tmp = StrCat(path, ".tmp.", ::getpid());
  const std::string bytes =
      EncodeFrame(FrameType::kResult, EncodeShardResult(result));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal(StrCat("cannot open ", tmp, " for writing"));
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      (void)::unlink(tmp.c_str());
      return Status::Internal(StrCat("short write to ", tmp));
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    (void)::unlink(tmp.c_str());
    return Status::Internal(StrCat("rename ", tmp, " -> ", path,
                                   " failed: ", std::strerror(err)));
  }
  if (bytes_written != nullptr) {
    *bytes_written = static_cast<int64_t>(bytes.size());
  }
  return Status::Ok();
}

Result<ShardResult> LoadShardCheckpoint(std::string_view dir, int32_t shard) {
  const std::string path = ShardCheckpointPath(dir, shard);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrCat("no checkpoint at ", path));
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string bytes = contents.str();

  FrameBuffer buffer;
  buffer.Append(bytes.data(), bytes.size());
  Frame frame;
  Status decoded = buffer.Next(&frame);
  if (decoded.code() == StatusCode::kNotFound) {
    // "Need more bytes" is fine on a live stream, but the whole file is in
    // hand here: an incomplete frame means the checkpoint was truncated.
    decoded = Status::Internal(
        StrCat("truncated after ", bytes.size(), " byte(s)"));
  }
  CERES_RETURN_IF_ERROR(PrependContext(std::move(decoded),
                                       StrCat("checkpoint ", path)));
  if (buffer.pending_bytes() != 0) {
    return Status::Internal(
        StrCat("checkpoint ", path, ": trailing bytes after frame"));
  }
  if (frame.type != FrameType::kResult) {
    return Status::Internal(StrCat("checkpoint ", path, ": unexpected ",
                                   FrameTypeName(frame.type), " frame"));
  }
  CERES_ASSIGN_OR_RETURN(ShardResult result, DecodeShardResult(frame.payload),
                         StrCat("checkpoint ", path));
  if (result.shard != shard) {
    return Status::Internal(StrCat("checkpoint ", path, ": holds shard ",
                                   result.shard, ", expected ", shard));
  }
  return result;
}

std::vector<int32_t> ListShardCheckpoints(std::string_view dir) {
  std::vector<int32_t> shards;
  DIR* d = ::opendir(std::string(dir).c_str());
  if (d == nullptr) return shards;
  while (struct dirent* entry = ::readdir(d)) {
    std::string_view name = entry->d_name;
    if (name.size() <= kCheckpointPrefix.size() + kCheckpointSuffix.size() ||
        name.substr(0, kCheckpointPrefix.size()) != kCheckpointPrefix ||
        name.substr(name.size() - kCheckpointSuffix.size()) !=
            kCheckpointSuffix) {
      continue;
    }
    const std::string_view digits = name.substr(
        kCheckpointPrefix.size(),
        name.size() - kCheckpointPrefix.size() - kCheckpointSuffix.size());
    int32_t shard = 0;
    bool numeric = !digits.empty();
    for (char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      shard = shard * 10 + (c - '0');
    }
    if (numeric) shards.push_back(shard);
  }
  ::closedir(d);
  std::sort(shards.begin(), shards.end());
  return shards;
}

Status CorruptShardCheckpoint(std::string_view dir, int32_t shard) {
  const std::string path = ShardCheckpointPath(dir, shard);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound(StrCat("no checkpoint at ", path));
    std::ostringstream contents;
    contents << in.rdbuf();
    bytes = contents.str();
  }
  if (bytes.empty()) return Status::Ok();  // already maximally corrupt
  // Flip bytes in the middle of the payload: the header stays plausible,
  // so only the checksum catches it — the realistic failure mode.
  const size_t mid = bytes.size() / 2;
  bytes[mid] = static_cast<char>(~bytes[mid]);
  if (mid + 1 < bytes.size()) {
    bytes[mid + 1] = static_cast<char>(bytes[mid + 1] ^ 0x5A);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal(StrCat("cannot rewrite ", path));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::Internal(StrCat("short rewrite of ", path));
  return Status::Ok();
}

}  // namespace ceres::dist
