#include "synth/site_generator.h"

#include <algorithm>
#include <unordered_set>

#include "dom/html_serializer.h"
#include "dom/xpath.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ceres::synth {

namespace {

// Thin builder over DomDocument with ground-truth bookkeeping.
class PageBuilder {
 public:
  PageBuilder() = default;

  NodeId root() { return doc_.root(); }

  NodeId El(NodeId parent, const std::string& tag,
            const std::string& cls = "") {
    NodeId id = doc_.AddChild(parent, tag);
    if (!cls.empty()) {
      doc_.AddAttribute(id, "class", cls);
    }
    return id;
  }

  NodeId TextEl(NodeId parent, const std::string& tag, const std::string& cls,
                std::string_view text) {
    NodeId id = El(parent, tag, cls);
    doc_.SetText(id, text);
    return id;
  }

  std::string PathOf(NodeId id) const {
    return XPath::FromNode(doc_, id).ToString();
  }

  std::string Serialize() const { return SerializeHtml(doc_); }

 private:
  DomDocument doc_;
};

// Resolves a predicate name, aborting on template/ontology mismatch (a
// programming error in corpus configuration).
PredicateId MustPredicate(const Ontology& ontology, const std::string& name) {
  Result<PredicateId> id = ontology.PredicateByName(name);
  CERES_CHECK_MSG(id.ok(), "unknown predicate in template: " << name);
  return *id;
}

// All (predicate, object) facts of `topic` for the given predicate.
std::vector<Triple> FactsOf(const World& world, EntityId topic,
                            PredicateId predicate) {
  std::vector<Triple> out;
  for (const Triple& triple : world.kb.TriplesWithSubject(topic)) {
    if (triple.predicate == predicate) out.push_back(triple);
  }
  return out;
}

std::vector<EntityId> ObjectsOf(const World& world, EntityId topic,
                                PredicateId predicate) {
  std::vector<EntityId> out;
  for (const Triple& triple : FactsOf(world, topic, predicate)) {
    out.push_back(triple.object);
  }
  return out;
}

// Renders one value section and records ground truth.
void RenderSection(const World& world, const PredicateSection& section,
                   PredicateId predicate, const TemplateSpec& tmpl,
                   const std::vector<EntityId>& objects, PageBuilder* page,
                   NodeId main, GeneratedPage* out) {
  const std::string& prefix = tmpl.css_prefix;
  const std::string label =
      UiLabel(tmpl.weak_labels ? "details" : section.label_key, tmpl.locale);
  auto record = [&](NodeId node, EntityId object) {
    out->facts.push_back(
        GroundTruthFact{page->PathOf(node), predicate,
                        std::string(world.kb.entity(object).name), object});
  };
  switch (section.layout) {
    case SectionLayout::kRow: {
      NodeId row = page->El(main, "div", prefix + "-row");
      page->TextEl(row, "span", prefix + "-lbl", label);
      for (EntityId object : objects) {
        NodeId value = page->TextEl(row, "span", prefix + "-val",
                                    world.kb.entity(object).name);
        record(value, object);
      }
      break;
    }
    case SectionLayout::kList: {
      NodeId sec = page->El(
          main, "div",
          tmpl.weak_labels ? prefix + "-sec"
                           : prefix + "-sec " + prefix + "-" +
                                 Slugify(section.label_key));
      page->TextEl(sec, "h3", prefix + "-h", label);
      NodeId list = page->El(sec, "ul", prefix + "-ul");
      for (EntityId object : objects) {
        NodeId item =
            page->TextEl(list, "li", "", world.kb.entity(object).name);
        record(item, object);
      }
      break;
    }
    case SectionLayout::kTable: {
      NodeId table = page->El(main, "table", prefix + "-tbl");
      bool first = true;
      for (EntityId object : objects) {
        NodeId row = page->El(table, "tr", "");
        page->TextEl(row, "td", prefix + "-lblcell", first ? label : "");
        NodeId value =
            page->TextEl(row, "td", prefix + "-valcell",
                         world.kb.entity(object).name);
        record(value, object);
        first = false;
      }
      break;
    }
  }
}

// A film-title list section that asserts nothing (trap).
void RenderTrapFilmList(const World& world, const std::string& heading,
                        const std::string& cls,
                        const std::vector<EntityId>& films, PageBuilder* page,
                        NodeId parent, const TemplateSpec& tmpl) {
  if (films.empty()) return;
  NodeId sec = page->El(parent, "div", tmpl.css_prefix + "-" + cls);
  page->TextEl(sec, "h3", tmpl.css_prefix + "-h", heading);
  NodeId list = page->El(sec, "ul", "");
  for (EntityId film : films) {
    page->TextEl(list, "li", "", world.kb.entity(film).name);
  }
}

}  // namespace

std::vector<GeneratedPage> GenerateSite(const World& world,
                                        const SiteSpec& spec) {
  const Ontology& ontology = world.kb.ontology();
  const TemplateSpec& tmpl = spec.tmpl;
  const std::string& prefix = tmpl.css_prefix;
  Rng site_rng(spec.seed);

  // Pre-resolve the predicates referenced by the template.
  std::vector<PredicateId> section_predicates;
  section_predicates.reserve(tmpl.sections.size());
  for (const PredicateSection& section : tmpl.sections) {
    section_predicates.push_back(MustPredicate(ontology, section.predicate));
  }
  // Movie-domain predicates used by trap sections; resolved lazily since
  // non-movie ontologies don't declare them.
  auto maybe_predicate = [&](const char* name) -> PredicateId {
    Result<PredicateId> id = ontology.PredicateByName(name);
    return id.ok() ? *id : kInvalidPredicate;
  };
  const PredicateId acted_in = maybe_predicate(pred::kPersonActedIn);
  const PredicateId director_of = maybe_predicate(pred::kPersonDirectorOf);
  const PredicateId writer_of = maybe_predicate(pred::kPersonWriterOf);
  const PredicateId producer_of = maybe_predicate(pred::kPersonProducerOf);
  const PredicateId film_genre = maybe_predicate(pred::kFilmHasGenre);
  const PredicateId film_cast = maybe_predicate(pred::kFilmHasCastMember);
  const PredicateId film_year = maybe_predicate(pred::kFilmReleaseYear);

  Result<TypeId> genre_type = ontology.TypeByName("genre");
  Result<TypeId> film_type = ontology.TypeByName("film");

  std::vector<GeneratedPage> pages;
  pages.reserve(spec.topics.size() +
                static_cast<size_t>(spec.num_non_detail_pages));

  auto render_chrome_top = [&](PageBuilder* page, NodeId body) {
    NodeId container = page->El(body, "div", prefix + "-page");
    if (tmpl.nav) {
      NodeId nav = page->El(container, "div", prefix + "-nav");
      page->TextEl(nav, "span", prefix + "-brand", spec.name);
      for (const char* key : {"home", "search", "login", "help"}) {
        page->TextEl(nav, "a", prefix + "-navlink", UiLabel(key, tmpl.locale));
      }
    }
    if (tmpl.all_genres_nav && genre_type.ok()) {
      NodeId gnav = page->El(container, "div", prefix + "-gnav");
      page->TextEl(gnav, "h3", prefix + "-h", UiLabel("genre", tmpl.locale));
      NodeId list = page->El(gnav, "ul", "");
      for (EntityId g : world.OfType(*genre_type)) {
        page->TextEl(list, "li", "", world.kb.entity(g).name);
      }
    }
    return container;
  };

  auto render_footer = [&](PageBuilder* page, NodeId container, Rng* rng) {
    if (!tmpl.footer) return;
    NodeId footer = page->El(container, "div", prefix + "-footer");
    page->TextEl(footer, "span", "", StrCat("© 2017 ", spec.name));
    page->TextEl(footer, "a", "", "Contact");
    page->TextEl(footer, "a", "", "About");
    if (rng->Bernoulli(0.5)) {
      page->TextEl(footer, "span", "", "All rights reserved");
    }
  };

  const PredicateId film_date = maybe_predicate(pred::kFilmReleaseDate);

  // Renders a box-office chart. On detail pages (mimic_sections) the chart
  // shares the value tables' class AND leads with the film's release date
  // as its first row — the-numbers.com's layout, where "long lists of the
  // date and box office receipts" surround the one true release date
  // (§5.5.1). The remaining rows differ from the labelled one only at the
  // <tr> index, so the §4.1 list-exclusion heuristic shields them from
  // negative sampling and the extractor learns the whole column.
  auto render_charts = [&](PageBuilder* page, NodeId parent, Rng* rng,
                           bool mimic_sections, EntityId topic,
                           GeneratedPage* out) {
    NodeId table = page->El(parent, "table",
                            mimic_sections ? prefix + "-tbl"
                                           : prefix + "-charttbl");
    // On detail pages the film's release date appears at its chronological
    // position among the box-office rows, with nothing but the date value
    // to mark it — the paper's description of the site.
    EntityId release_date = kInvalidEntity;
    int release_row = -1;
    int rows = static_cast<int>(
        mimic_sections ? rng->Uniform(4, 10) : rng->Uniform(12, 28));
    if (mimic_sections && topic != kInvalidEntity &&
        film_date != kInvalidPredicate) {
      std::vector<EntityId> dates = ObjectsOf(world, topic, film_date);
      if (!dates.empty()) {
        release_date = dates[0];
        release_row = static_cast<int>(rng->Uniform(0, rows));
        ++rows;
      }
    }
    for (int r = 0; r < rows; ++r) {
      NodeId row = page->El(table, "tr", "");
      page->TextEl(row, "td", prefix + "-lblcell",
                   r == 0 ? UiLabel("charts", tmpl.locale) : "");
      if (r == release_row) {
        NodeId value =
            page->TextEl(row, "td", prefix + "-valcell",
                         world.kb.entity(release_date).name);
        out->facts.push_back(GroundTruthFact{
            page->PathOf(value), film_date,
            std::string(world.kb.entity(release_date).name), release_date});
      } else {
        page->TextEl(row, "td", prefix + "-valcell",
                     DateString(rng, 2015, 2017));
      }
      page->TextEl(row, "td", "",
                   StrCat("$", rng->Uniform(10'000, 9'999'999)));
    }
  };

  // ---- Detail pages --------------------------------------------------------
  for (size_t t = 0; t < spec.topics.size(); ++t) {
    Rng rng = site_rng.Fork();
    const EntityId topic = spec.topics[t];
    const Entity& topic_entity = world.kb.entity(topic);

    GeneratedPage out;
    out.topic = topic;
    out.topic_name = std::string(topic_entity.name);
    out.url = StrCat("https://", spec.name, "/",
                     Slugify(topic_entity.name), "-", t);

    PageBuilder page;
    NodeId head = page.El(page.root(), "head");
    page.TextEl(head, "title", "",
                StrCat(topic_entity.name, " - ", spec.name));
    NodeId body = page.El(page.root(), "body");
    NodeId container = render_chrome_top(&page, body);

    // Title field.
    std::string display_title(topic_entity.name);
    if (tmpl.title_year_suffix && film_year != kInvalidPredicate) {
      std::vector<EntityId> years = ObjectsOf(world, topic, film_year);
      if (!years.empty()) {
        display_title =
            StrCat(topic_entity.name, " (",
                   world.kb.entity(years.front()).name, ")");
      }
    }
    NodeId title = page.TextEl(container, "h1", prefix + "-title",
                               display_title);
    out.topic_xpath = page.PathOf(title);
    out.facts.push_back(GroundTruthFact{out.topic_xpath, kNamePredicate,
                                        std::string(topic_entity.name),
                                        topic});

    if (tmpl.search_box_values) {
      NodeId search = page.El(container, "div", prefix + "-srch");
      page.TextEl(search, "span", "", UiLabel("search", tmpl.locale));
      NodeId select = page.El(search, "select", prefix + "-opts");
      page.TextEl(select, "option", "", "Public");
      page.TextEl(select, "option", "", "Private");
    }

    NodeId main = page.El(container, "div", prefix + "-main");

    // Section order (with optional per-page shuffle) and the ad insert.
    std::vector<size_t> order(tmpl.sections.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    if (tmpl.section_shuffle_prob > 0 &&
        rng.Bernoulli(tmpl.section_shuffle_prob)) {
      rng.Shuffle(&order);
    }
    const bool insert_ad = rng.Bernoulli(tmpl.page_noise_prob);
    const size_t ad_position =
        order.empty() ? 0 : rng.Index(order.size() + 1);

    // Merged filmography absorbs the role lists when enabled.
    const std::unordered_set<PredicateId> merged_roles =
        tmpl.merged_filmography
            ? std::unordered_set<PredicateId>{acted_in, director_of,
                                              writer_of}
            : std::unordered_set<PredicateId>{};

    for (size_t pos = 0; pos <= order.size(); ++pos) {
      if (insert_ad && pos == ad_position) {
        NodeId ad = page.El(main, "div", prefix + "-promo");
        page.TextEl(ad, "span", "", "Sponsored");
        if (film_type.ok() && !world.OfType(*film_type).empty()) {
          page.TextEl(ad, "a", "",
                      world.kb.entity(rng.Pick(world.OfType(*film_type))).name);
        }
      }
      if (pos == order.size()) break;
      const PredicateSection& section = tmpl.sections[order[pos]];
      const PredicateId predicate = section_predicates[order[pos]];
      if (merged_roles.count(predicate) > 0) continue;
      std::vector<EntityId> objects = ObjectsOf(world, topic, predicate);
      if (objects.empty()) continue;
      if (rng.Bernoulli(section.missing_prob)) continue;
      if (static_cast<int>(objects.size()) > section.max_values) {
        objects.resize(static_cast<size_t>(section.max_values));
      }
      RenderSection(world, section, predicate, tmpl, objects, &page, main,
                    &out);
    }

    if (tmpl.merged_filmography && acted_in != kInvalidPredicate) {
      // One flat list; ground truth labels each entry with every role that
      // actually holds.
      std::vector<EntityId> films;
      std::unordered_set<EntityId> seen;
      for (PredicateId role : {acted_in, director_of, writer_of}) {
        if (role == kInvalidPredicate) continue;
        for (EntityId f : ObjectsOf(world, topic, role)) {
          if (seen.insert(f).second) films.push_back(f);
        }
      }
      if (!films.empty()) {
        NodeId sec = page.El(main, "div", prefix + "-filmo");
        page.TextEl(sec, "h3", prefix + "-h",
                    UiLabel("filmography", tmpl.locale));
        NodeId list = page.El(sec, "ul", "");
        for (EntityId f : films) {
          NodeId item = page.TextEl(list, "li", "", world.kb.entity(f).name);
          for (PredicateId role : {acted_in, director_of, writer_of}) {
            if (role == kInvalidPredicate) continue;
            std::vector<EntityId> objs = ObjectsOf(world, topic, role);
            if (std::find(objs.begin(), objs.end(), f) != objs.end()) {
              out.facts.push_back(
                  GroundTruthFact{page.PathOf(item), role,
                                  std::string(world.kb.entity(f).name), f});
            }
          }
        }
      }
    }

    // Trap sections. These list the person's most *popular* films (low
    // roster ids), which is exactly what real "Known For" strips do — and
    // what makes them poisonous for the naive DS assumption: popular films
    // are the ones the seed KB covers, so every trap entry is annotatable.
    if (tmpl.known_for && acted_in != kInvalidPredicate) {
      std::vector<EntityId> pool;
      for (PredicateId role : {acted_in, director_of, producer_of}) {
        if (role == kInvalidPredicate) continue;
        for (EntityId f : ObjectsOf(world, topic, role)) pool.push_back(f);
      }
      std::sort(pool.begin(), pool.end());
      pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
      if (pool.size() > 4) pool.resize(4);
      RenderTrapFilmList(world, UiLabel("known_for", tmpl.locale), "known",
                         pool, &page, container, tmpl);
    }
    if (tmpl.on_video_list && acted_in != kInvalidPredicate) {
      std::vector<EntityId> pool = ObjectsOf(world, topic, acted_in);
      std::sort(pool.begin(), pool.end());
      if (pool.size() > 6) pool.resize(6);
      RenderTrapFilmList(world, UiLabel("on_video", tmpl.locale), "video",
                         pool, &page, container, tmpl);
    }
    if (tmpl.projects_in_development && film_type.ok()) {
      std::vector<EntityId> pool;
      for (PredicateId role : {producer_of, writer_of}) {
        if (role == kInvalidPredicate) continue;
        for (EntityId f : ObjectsOf(world, topic, role)) pool.push_back(f);
      }
      rng.Shuffle(&pool);
      if (pool.size() > 2) pool.resize(2);
      int extras = static_cast<int>(rng.Uniform(1, 3));
      for (int i = 0; i < extras; ++i) {
        pool.push_back(rng.Pick(world.OfType(*film_type)));
      }
      RenderTrapFilmList(world, UiLabel("projects", tmpl.locale), "projects",
                         pool, &page, container, tmpl);
    }
    if (tmpl.num_recommendations > 0 && film_type.ok()) {
      NodeId recs = page.El(container, "div", prefix + "-recs");
      page.TextEl(recs, "h3", prefix + "-h",
                  UiLabel("recommendations", tmpl.locale));
      int cards = static_cast<int>(
          rng.Uniform(1, tmpl.num_recommendations));
      for (int c = 0; c < cards; ++c) {
        EntityId related = rng.Pick(world.OfType(*film_type));
        NodeId card = page.El(recs, "div", prefix + "-card");
        page.TextEl(card, "a", prefix + "-cardtitle",
                    world.kb.entity(related).name);
        if (film_genre != kInvalidPredicate) {
          NodeId glist = page.El(card, "ul", prefix + "-cardgenres");
          for (EntityId g : ObjectsOf(world, related, film_genre)) {
            page.TextEl(glist, "li", "", world.kb.entity(g).name);
          }
        }
        // Real recommendation strips show the related title and genre
        // tags only; showing its cast too would let the card out-score
        // the page topic in Equation (1).
        (void)film_cast;
      }
    }
    if (tmpl.daily_charts) {
      render_charts(&page, main, &rng, /*mimic_sections=*/true, topic, &out);
    }
    render_footer(&page, container, &rng);

    out.html = page.Serialize();
    pages.push_back(std::move(out));
  }

  // ---- Non-detail pages ----------------------------------------------------
  for (int i = 0; i < spec.num_non_detail_pages; ++i) {
    Rng rng = site_rng.Fork();
    GeneratedPage out;
    out.url = StrCat("https://", spec.name, "/charts/", i);
    PageBuilder page;
    NodeId head = page.El(page.root(), "head");
    page.TextEl(head, "title", "", StrCat(spec.name, " charts"));
    NodeId body = page.El(page.root(), "body");
    NodeId container = render_chrome_top(&page, body);
    page.TextEl(container, "h1", prefix + "-title",
                StrCat(UiLabel("charts", tmpl.locale), " #", i + 1));
    render_charts(&page, container, &rng, /*mimic_sections=*/false,
                  kInvalidEntity, &out);
    if (rng.Bernoulli(0.5)) {
      render_charts(&page, container, &rng, /*mimic_sections=*/false,
                    kInvalidEntity, &out);
    }
    render_footer(&page, container, &rng);
    out.html = page.Serialize();
    pages.push_back(std::move(out));
  }
  return pages;
}

}  // namespace ceres::synth
