#include "util/string_util.h"

#include <gtest/gtest.h>

namespace ceres {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a/b/c", '/'),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a//b", '/'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("/a/", '/'), (std::vector<std::string>{"", "a", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", '/'), (std::vector<std::string>{""}));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(SplitJoinTest, RoundTrips) {
  const std::string original = "x/y//z";
  EXPECT_EQ(Join(Split(original, '/'), "/"), original);
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hello \t\n"), "hello");
  EXPECT_EQ(StripWhitespace("inner space kept"), "inner space kept");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("film.hasGenre", "film."));
  EXPECT_FALSE(StartsWith("film", "film."));
  EXPECT_TRUE(EndsWith("index.html", ".html"));
  EXPECT_FALSE(EndsWith("html", ".html"));
}

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("page-", 12, "/", 3.5), "page-12/3.5");
  EXPECT_EQ(StrCat(), "");
}

}  // namespace
}  // namespace ceres
