#include "serve/extraction_service.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace ceres::serve {

namespace {

/// Bumps the per-cause shed counter (no-op when metrics are off). Shed
/// paths are cold, so the name lookup per call is fine.
void RecordShedMetric(ShedCause cause, int64_t n) {
  if (!obs::Enabled() || n == 0) return;
  obs::MetricsRegistry::Default()
      .GetCounter(StrCat("ceres_serve_shed_", ShedCauseName(cause), "_total"))
      ->Increment(n);
}

}  // namespace

ExtractionService::ExtractionService(ModelRegistry* registry,
                                     ExtractionServiceConfig config)
    : registry_(registry), config_(std::move(config)) {}

ExtractionService::~ExtractionService() { Stop(); }

ServeResult ExtractionService::ShedResult(Status status, ShedCause cause) {
  ServeResult result;
  result.status = std::move(status);
  result.diagnostics.shed_cause = cause;
  return result;
}

Status ExtractionService::Start() {
  MutexLock lock(mu_);
  if (started_) return Status::FailedPrecondition("service already started");
  if (stopping_) return Status::FailedPrecondition("service was stopped");
  started_ = true;
  const size_t workers =
      config_.worker_threads > 0
          ? static_cast<size_t>(config_.worker_threads)
          : std::max(1u, std::thread::hardware_concurrency());
  // The pool rides util/parallel.h: one launcher thread fans out `workers`
  // long-lived WorkerLoop bodies and inherits ParallelFor's exception
  // containment (a throwing worker surfaces at join, not via terminate).
  pool_ = std::thread([this, workers] {
    ParallelConfig pool;
    pool.threads = static_cast<int>(workers);
    ParallelFor(workers, pool, [this](size_t) { WorkerLoop(); });
  });
  return Status::Ok();
}

void ExtractionService::Stop() {
  std::vector<PendingRequest> orphans;
  // The pool handle leaves the critical section with us so the join below
  // never races a concurrent Start writing pool_.
  std::thread pool;
  {
    MutexLock lock(mu_);
    accepting_ = false;
    stopping_ = true;
    pool = std::move(pool_);
    for (auto& [site, queue] : queues_) {
      for (PendingRequest& pending : queue.pending) {
        orphans.push_back(std::move(pending));
      }
      queue.pending.clear();
      queue.in_ready_list = false;
    }
    ready_.clear();
    total_pending_ = 0;
  }
  work_ready_.notify_all();
  for (PendingRequest& orphan : orphans) {
    ServeResult result = ShedResult(
        Status::Cancelled("service stopped with request still queued"),
        ShedCause::kShutdown);
    if (orphan.on_complete) orphan.on_complete(result);
    orphan.promise.set_value(std::move(result));
  }
  if (!orphans.empty()) {
    MutexLock lock(stats_mu_);
    stats_.shed[static_cast<int>(ShedCause::kShutdown)] +=
        static_cast<int64_t>(orphans.size());
  }
  RecordShedMetric(ShedCause::kShutdown, static_cast<int64_t>(orphans.size()));
  if (pool.joinable()) pool.join();
}

std::future<ServeResult> ExtractionService::Submit(
    ServeRequest request, CompletionHook on_complete) {
  std::promise<ServeResult> shed_promise;
  std::future<ServeResult> shed_future = shed_promise.get_future();
  {
    MutexLock lock(stats_mu_);
    ++stats_.submitted;
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Default()
        .GetCounter("ceres_serve_submitted_total")
        ->Increment();
  }

  auto shed = [&](Status status, ShedCause cause) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.shed[static_cast<int>(cause)];
    }
    RecordShedMetric(cause, 1);
    ServeResult result = ShedResult(std::move(status), cause);
    if (on_complete) on_complete(result);
    shed_promise.set_value(std::move(result));
    return std::move(shed_future);
  };

  if (request.deadline.expired()) {
    return shed(request.deadline.Check("admission"),
                ShedCause::kDeadlineBeforeAdmission);
  }

  UniqueMutexLock lock(mu_);
  if (!accepting_) {
    lock.unlock();
    return shed(Status::Cancelled("service is stopped"),
                ShedCause::kShutdown);
  }
  if (total_pending_ >= config_.max_queue) {
    lock.unlock();
    return shed(
        Status::ResourceExhausted(StrCat(
            "request queue full (", config_.max_queue, " pending)")),
        ShedCause::kQueueFull);
  }

  PendingRequest pending;
  pending.request = std::move(request);
  pending.on_complete = std::move(on_complete);
  pending.enqueued = obs::MonotonicNow();
  std::future<ServeResult> future = pending.promise.get_future();
  SiteQueue& queue = queues_[pending.request.site];
  const std::string site = pending.request.site;
  queue.pending.push_back(std::move(pending));
  ++total_pending_;
  MaybeReadyLocked(site, &queue);
  return future;
}

void ExtractionService::MaybeReadyLocked(const std::string& site,
                                         SiteQueue* queue) {
  if (queue->in_ready_list || queue->pending.empty()) return;
  if (queue->inflight_batches >= config_.per_site_max_inflight) return;
  ready_.push_back(site);
  queue->in_ready_list = true;
  work_ready_.notify_one();
}

void ExtractionService::WorkerLoop() {
  UniqueMutexLock lock(mu_);
  for (;;) {
    work_ready_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (ready_.empty()) {
      if (stopping_) return;
      continue;
    }
    const std::string site = std::move(ready_.front());
    ready_.pop_front();
    auto it = queues_.find(site);
    if (it == queues_.end()) continue;
    SiteQueue& queue = it->second;
    queue.in_ready_list = false;
    if (queue.pending.empty()) continue;

    const size_t n = std::min(config_.max_batch, queue.pending.size());
    std::vector<PendingRequest> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue.pending.front()));
      queue.pending.pop_front();
    }
    total_pending_ -= n;
    ++queue.inflight_batches;
    // Leftover work re-arms the site immediately (up to the inflight cap),
    // so another worker can run the next batch concurrently.
    MaybeReadyLocked(site, &queue);

    lock.unlock();
    ProcessBatch(site, std::move(batch));
    lock.lock();

    auto post = queues_.find(site);
    if (post != queues_.end()) {
      --post->second.inflight_batches;
      if (post->second.pending.empty() &&
          post->second.inflight_batches == 0 &&
          !post->second.in_ready_list) {
        queues_.erase(post);
      } else {
        MaybeReadyLocked(site, &post->second);
      }
    }
  }
}

void ExtractionService::ProcessBatch(const std::string& site,
                                     std::vector<PendingRequest> batch) {
  struct LiveRequest {
    PendingRequest pending;
    std::chrono::microseconds queue_wait{0};
    std::chrono::microseconds parse_time{0};
    DomDocument doc;
  };
  // Promises are fulfilled only at the very end, AFTER the stats update: a
  // caller woken by future.get() must never observe counters that do not
  // yet include its own request. The whole PendingRequest rides along so
  // its completion hook can run just before set_value.
  std::vector<PendingRequest> resolved;
  std::vector<ServeResult> outcomes;
  resolved.reserve(batch.size());
  outcomes.reserve(batch.size());
  auto resolve = [&](PendingRequest pending, ServeResult result) {
    resolved.push_back(std::move(pending));
    outcomes.push_back(std::move(result));
  };

  int64_t timed_out = 0;
  int64_t parse_failed = 0;
  int64_t model_load_failed = 0;
  int64_t completed = 0;
  int64_t total_extractions = 0;
  bool batch_ran = false;

  // Histogram handles are fetched once per batch when metrics are on; the
  // per-request recording below is then a null check plus a lock-free
  // bucket increment.
  obs::Histogram* queue_wait_hist = nullptr;
  obs::Histogram* parse_hist = nullptr;
  obs::Histogram* inference_hist = nullptr;
  obs::Histogram* latency_hist = nullptr;
  obs::Histogram* batch_size_hist = nullptr;
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Default();
    queue_wait_hist = registry.GetHistogram("ceres_serve_queue_wait_us");
    parse_hist = registry.GetHistogram("ceres_serve_parse_us");
    inference_hist = registry.GetHistogram("ceres_serve_inference_us");
    latency_hist = registry.GetHistogram("ceres_serve_request_latency_us");
    batch_size_hist =
        registry.GetHistogram("ceres_serve_batch_size", obs::SizeBuckets());
  }

  std::vector<LiveRequest> live;
  live.reserve(batch.size());
  const obs::TimePoint picked_up = obs::MonotonicNow();
  for (PendingRequest& pending : batch) {
    const std::chrono::microseconds wait =
        obs::ElapsedMicros(pending.enqueued, picked_up);
    if (queue_wait_hist != nullptr) queue_wait_hist->Record(wait.count());
    if (pending.request.deadline.expired()) {
      ServeResult result = ShedResult(pending.request.deadline.Check("queue"),
                                      ShedCause::kTimedOutInQueue);
      result.diagnostics.queue_wait = wait;
      resolve(std::move(pending), std::move(result));
      ++timed_out;
      continue;
    }
    LiveRequest request;
    request.pending = std::move(pending);
    request.queue_wait = wait;
    live.push_back(std::move(request));
  }

  if (!live.empty()) {
    // One model fetch covers the whole batch — this is where
    // micro-batching pays: the registry lookup (or cold load) amortizes
    // across `live`.
    bool cache_hit = false;
    Result<std::shared_ptr<const SiteModel>> model_or =
        registry_->Get(site, &cache_hit);
    if (!model_or.ok()) {
      model_load_failed = static_cast<int64_t>(live.size());
      for (LiveRequest& request : live) {
        ServeResult result =
            ShedResult(model_or.status(), ShedCause::kModelLoadFailed);
        result.diagnostics.queue_wait = request.queue_wait;
        result.diagnostics.batch_size = static_cast<int>(live.size());
        resolve(std::move(request.pending), std::move(result));
      }
      live.clear();
    } else {
      const std::shared_ptr<const SiteModel>& model = model_or.value();

      // Parse each page; a broken page fails its own request only.
      std::vector<LiveRequest> parsed;
      parsed.reserve(live.size());
      for (LiveRequest& request : live) {
        const obs::TimePoint parse_start = obs::MonotonicNow();
        Result<DomDocument> doc =
            ParseHtml(request.pending.request.html, config_.parse);
        request.parse_time =
            obs::ElapsedMicros(parse_start, obs::MonotonicNow());
        if (parse_hist != nullptr) {
          parse_hist->Record(request.parse_time.count());
        }
        if (!doc.ok()) {
          ServeResult result = ShedResult(
              PrependContext(doc.status(),
                             StrCat("parsing ", request.pending.request.url)),
              ShedCause::kParseFailed);
          result.diagnostics.queue_wait = request.queue_wait;
          result.diagnostics.parse_time = request.parse_time;
          result.diagnostics.model_version = model->version;
          result.diagnostics.model_cache_hit = cache_hit;
          resolve(std::move(request.pending), std::move(result));
          ++parse_failed;
          continue;
        }
        request.doc = std::move(doc).value();
        parsed.push_back(std::move(request));
      }

      if (!parsed.empty()) {
        std::vector<const DomDocument*> pages;
        std::vector<PageIndex> page_indices;
        pages.reserve(parsed.size());
        page_indices.reserve(parsed.size());
        for (size_t i = 0; i < parsed.size(); ++i) {
          pages.push_back(&parsed[i].doc);
          page_indices.push_back(static_cast<PageIndex>(i));
        }

        // The frozen feature map makes this a read-only pass over the
        // shared model; ExtractFromPages only takes TrainedModel* for the
        // (unused here) training-time interning path.
        const obs::TimePoint inference_start = obs::MonotonicNow();
        std::vector<Extraction> extractions = ExtractFromPages(
            pages, page_indices,
            const_cast<TrainedModel*>(&model->model), model->featurizer,
            config_.extraction);
        const std::chrono::microseconds inference_time =
            obs::ElapsedMicros(inference_start, obs::MonotonicNow());
        if (inference_hist != nullptr) {
          inference_hist->Record(inference_time.count());
        }

        std::vector<std::vector<Extraction>> per_request(parsed.size());
        for (Extraction& extraction : extractions) {
          const size_t index = static_cast<size_t>(extraction.page);
          extraction.page = 0;  // each request carries exactly one page
          per_request[index].push_back(std::move(extraction));
        }

        batch_ran = true;
        completed = static_cast<int64_t>(parsed.size());
        if (batch_size_hist != nullptr) batch_size_hist->Record(completed);
        const obs::TimePoint resolved_at = obs::MonotonicNow();
        for (size_t i = 0; i < parsed.size(); ++i) {
          if (latency_hist != nullptr) {
            latency_hist->Record(
                obs::ElapsedMicros(parsed[i].pending.enqueued, resolved_at)
                    .count());
          }
          ServeResult result;
          result.status = Status::Ok();
          result.triples = std::move(per_request[i]);
          total_extractions += static_cast<int64_t>(result.triples.size());
          result.diagnostics.queue_wait = parsed[i].queue_wait;
          result.diagnostics.parse_time = parsed[i].parse_time;
          result.diagnostics.inference_time = inference_time;
          result.diagnostics.batch_size = static_cast<int>(parsed.size());
          result.diagnostics.model_cache_hit = cache_hit;
          result.diagnostics.model_version = model->version;
          resolve(std::move(parsed[i].pending), std::move(result));
        }
      }
    }
  }

  {
    MutexLock lock(stats_mu_);
    stats_.shed[static_cast<int>(ShedCause::kTimedOutInQueue)] += timed_out;
    stats_.shed[static_cast<int>(ShedCause::kParseFailed)] += parse_failed;
    stats_.shed[static_cast<int>(ShedCause::kModelLoadFailed)] +=
        model_load_failed;
    stats_.completed += completed;
    stats_.extractions += total_extractions;
    if (batch_ran) {
      ++stats_.batches;
      stats_.batched_requests += completed;
    }
  }
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Default();
    RecordShedMetric(ShedCause::kTimedOutInQueue, timed_out);
    RecordShedMetric(ShedCause::kParseFailed, parse_failed);
    RecordShedMetric(ShedCause::kModelLoadFailed, model_load_failed);
    registry.GetCounter("ceres_serve_completed_total")->Increment(completed);
    registry.GetCounter("ceres_serve_extractions_total")
        ->Increment(total_extractions);
  }
  for (size_t i = 0; i < resolved.size(); ++i) {
    if (resolved[i].on_complete) resolved[i].on_complete(outcomes[i]);
    resolved[i].promise.set_value(std::move(outcomes[i]));
  }
}

ServiceStats ExtractionService::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace ceres::serve
