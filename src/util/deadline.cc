#include "util/deadline.h"

#include <string>

namespace ceres {

Status Deadline::Check(std::string_view stage) const {
  if (cancelled()) {
    return Status::Cancelled(std::string(stage) + ": cancellation requested");
  }
  if (time_expired()) {
    return Status::DeadlineExceeded(std::string(stage) +
                                    ": deadline exceeded");
  }
  return Status::Ok();
}

}  // namespace ceres
