#include "ml/hashed_feature_map.h"

#include "util/logging.h"

namespace ceres {

namespace {
constexpr size_t kInitialSlots = 1 << 10;
}  // namespace

HashedFeatureMap::HashedFeatureMap() : table_(kInitialSlots, -1) {}

size_t HashedFeatureMap::SlotFor(uint64_t id) const {
  const size_t mask = table_.size() - 1;
  size_t i = static_cast<size_t>(id) & mask;
  while (table_[i] != -1 && ids_[static_cast<size_t>(table_[i])] != id) {
    i = (i + 1) & mask;
  }
  return i;
}

int32_t HashedFeatureMap::GetOrAdd(uint64_t id) {
  size_t slot = SlotFor(id);
  if (table_[slot] != -1) return table_[slot];
  if (frozen_) return -1;
  if ((ids_.size() + 1) * 4 >= table_.size() * 3) {
    Grow();
    slot = SlotFor(id);
  }
  const int32_t index = static_cast<int32_t>(ids_.size());
  ids_.push_back(id);
  table_[slot] = index;
  return index;
}

int32_t HashedFeatureMap::Get(uint64_t id) const {
  const size_t slot = SlotFor(id);
  return table_[slot];
}

uint64_t HashedFeatureMap::IdAt(int32_t index) const {
  CERES_CHECK(index >= 0 && index < size());
  return ids_[static_cast<size_t>(index)];
}

void HashedFeatureMap::Grow() {
  table_.assign(table_.size() * 2, -1);
  for (size_t dense = 0; dense < ids_.size(); ++dense) {
    const size_t mask = table_.size() - 1;
    size_t i = static_cast<size_t>(ids_[dense]) & mask;
    while (table_[i] != -1) i = (i + 1) & mask;
    table_[i] = static_cast<int32_t>(dense);
  }
}

}  // namespace ceres
