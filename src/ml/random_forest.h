#ifndef CERES_ML_RANDOM_FOREST_H_
#define CERES_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "ml/logistic_regression.h"  // LabeledExample.
#include "ml/sparse_vector.h"
#include "util/status.h"

namespace ceres {

/// Configuration of the random-forest classifier — one of the alternative
/// node classifiers the paper reports experimenting with before settling
/// on multinomial logistic regression (§4.2).
struct RandomForestConfig {
  int num_trees = 20;
  int max_depth = 12;
  /// Nodes with fewer examples become leaves.
  int min_samples_leaf = 2;
  /// Candidate features per split: ceil(sqrt(num_features)) when 0.
  int features_per_split = 0;
  /// Bootstrap-sample fraction per tree.
  double bagging_fraction = 1.0;
  uint64_t seed = 13;
};

/// A bagged ensemble of binary-split decision trees over sparse feature
/// vectors. Splits test feature *presence* (value != 0), which matches the
/// one-hot structural/text features of the DOM extractor. Prediction
/// averages the per-tree leaf class distributions.
class RandomForest {
 public:
  RandomForest() = default;

  /// Fits the forest. Deterministic for a given config.seed.
  Status Train(const std::vector<LabeledExample>& examples,
               int32_t num_features, int32_t num_classes,
               const RandomForestConfig& config = {});

  /// Averaged leaf distributions; requires a trained forest.
  std::vector<double> PredictProbabilities(const SparseVector& features) const;

  /// Argmax class with its probability.
  std::pair<int32_t, double> Predict(const SparseVector& features) const;

  bool trained() const { return trained_; }
  int32_t num_classes() const { return num_classes_; }

  /// Number of nodes across all trees (for introspection tests).
  int64_t TotalNodes() const;

 private:
  struct Node {
    /// Split feature; -1 marks a leaf.
    int32_t feature = -1;
    /// Children when internal (feature absent -> left, present -> right).
    int32_t left = -1;
    int32_t right = -1;
    /// Class distribution when leaf.
    std::vector<double> distribution;
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  int32_t num_classes_ = 0;
  std::vector<Tree> trees_;
  bool trained_ = false;
};

}  // namespace ceres

#endif  // CERES_ML_RANDOM_FOREST_H_
