file(REMOVE_RECURSE
  "CMakeFiles/fusion_ablation.dir/fusion_ablation.cc.o"
  "CMakeFiles/fusion_ablation.dir/fusion_ablation.cc.o.d"
  "fusion_ablation"
  "fusion_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
