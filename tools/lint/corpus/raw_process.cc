// Corpus: non-dist code spawning and reaping its own child process (the
// test lints this content under a src/serve/ path). Exactly one
// raw-process violation — the bare ::fork(); the member call, the
// class-qualified name, and the suppressed kill below are all compliant
// shapes the rule must not confuse with the raw syscalls.
// Never compiled — linted by tests/lint/ceres_lint_test.cc.

#include <sys/wait.h>
#include <unistd.h>

namespace ceres {

struct ProcessHandle {
  void kill();
  static int waitpid(int pid);
};

void SpawnHelper(ProcessHandle* handle) {
  const int pid = ::fork();  // BAD: process lifecycle outside src/dist/
  (void)pid;

  handle->kill();                    // member call, not the syscall
  (void)ProcessHandle::waitpid(1);   // class-qualified, not the syscall
  ::kill(0, 0);  // ceres-lint: allow(raw-process)
}

}  // namespace ceres
