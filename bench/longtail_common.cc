#include "bench/longtail_common.h"

#include <cstdio>
#include <set>

#include "text/normalize.h"
#include "util/parallel.h"

namespace ceres::bench {

std::vector<LongTailSiteRun> RunLongTail(const ParsedCorpus& corpus) {
  std::vector<LongTailSiteRun> runs(corpus.sites.size());
  ForEachSite(corpus, [&](size_t s) {
    const ParsedSite& site = corpus.sites[s];
    LongTailSiteRun run;
    run.site = &site;
    run.num_pages = static_cast<int64_t>(site.pages.size());
    PipelineConfig config;
    config.extraction.confidence_threshold = 0.0;  // Sweep later.
    Result<PipelineResult> result =
        RunPipeline(site.pages, corpus.corpus.seed_kb, config);
    if (result.ok()) {
      run.result = std::move(result).value();
      run.annotated_pages =
          static_cast<int64_t>(run.result.annotated_pages.size());
      for (const Annotation& annotation : run.result.annotations) {
        if (annotation.predicate != kNamePredicate) ++run.annotations;
      }
    }
    std::fprintf(stderr, "[longtail] %s: %lld pages, %lld annotations\n",
                 site.name.c_str(), static_cast<long long>(run.num_pages),
                 static_cast<long long>(run.annotations));
    runs[s] = std::move(run);
  });
  return runs;
}

ThresholdPoint CountAtThreshold(const LongTailSiteRun& run,
                                double threshold) {
  ThresholdPoint point;
  point.threshold = threshold;
  for (const Extraction& extraction : run.result.extractions) {
    if (extraction.predicate == kNamePredicate) continue;
    if (extraction.confidence < threshold) continue;
    ++point.extractions;
    const eval::PageTruth& truth =
        run.site->truth.pages[static_cast<size_t>(extraction.page)];
    if (truth.Asserts(extraction.node, extraction.predicate) &&
        eval::SubjectMatchesTruth(extraction, truth)) {
      ++point.correct;
    }
  }
  return point;
}

}  // namespace ceres::bench
