#ifndef CERES_DIST_CHECKPOINT_H_
#define CERES_DIST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dist/wire.h"
#include "util/status.h"

/// Per-shard checkpoint files for the distributed coordinator.
///
/// A checkpoint is the shard's validated ShardResult wrapped in one wire
/// frame (`[0xCE][kResult][len u32le][payload][Fnv1a64 u64le]`) — the same
/// bytes the worker sent, so the on-disk format gets the frame layer's
/// corruption detection for free. Files are written atomically (temp file
/// + rename in the same directory), so a crash mid-write leaves either the
/// old file or no file, never a torn one. A checkpoint that fails any
/// validation (magic, length, checksum, decode, shard-id mismatch) is
/// treated as absent: the shard simply re-runs.
namespace ceres::dist {

/// The checkpoint file path for `shard` under `dir` (no I/O).
std::string ShardCheckpointPath(std::string_view dir, int32_t shard);

/// Atomically writes `result` as the checkpoint for its shard under `dir`.
/// On success `bytes_written` (optional) receives the file size, for the
/// checkpoint-bytes metric.
Status SaveShardCheckpoint(std::string_view dir, const ShardResult& result,
                           int64_t* bytes_written = nullptr);

/// Loads and validates the checkpoint for `shard` under `dir`. kNotFound
/// when no file exists; kInternal when the file exists but fails
/// validation — callers treat both as "re-run the shard", but the typed
/// split keeps corrupt-vs-missing visible in diagnostics.
Result<ShardResult> LoadShardCheckpoint(std::string_view dir, int32_t shard);

/// Shard ids with a checkpoint file present under `dir` (valid or not),
/// ascending. Used by the resuming coordinator to know what to try loading.
std::vector<int32_t> ListShardCheckpoints(std::string_view dir);

/// Flips bytes in the middle of the checkpoint file for `shard` — the
/// kCorruptCheckpoint process fault (simulated partial storage failure).
/// kNotFound when there is no checkpoint to corrupt.
Status CorruptShardCheckpoint(std::string_view dir, int32_t shard);

}  // namespace ceres::dist

#endif  // CERES_DIST_CHECKPOINT_H_
