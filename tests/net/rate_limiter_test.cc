#include "net/rate_limiter.h"

#include <gtest/gtest.h>

#include <string>

namespace ceres::net {
namespace {

constexpr int64_t kSecond = 1'000'000;  // injected clock is microseconds

TEST(RateLimiterTest, ZeroRateAdmitsEverythingWithoutTracking) {
  RateLimiter limiter(TokenBucketConfig{0.0, 16.0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(limiter.Admit("client", i));
  }
  // Disabled limiting keeps no per-key state at all.
  EXPECT_EQ(limiter.tracked_keys(), 0u);
}

TEST(RateLimiterTest, AdmitsBurstThenSheds) {
  RateLimiter limiter(TokenBucketConfig{1.0, 4.0});
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(limiter.Admit("client", 0)) << "burst token " << i;
  }
  EXPECT_FALSE(limiter.Admit("client", 0));
}

TEST(RateLimiterTest, RefillRestoresTokensAtConfiguredRate) {
  RateLimiter limiter(TokenBucketConfig{1.0, 2.0});
  EXPECT_TRUE(limiter.Admit("client", 0));
  EXPECT_TRUE(limiter.Admit("client", 0));
  EXPECT_FALSE(limiter.Admit("client", 0));
  // Half a second refills half a token — still shed.
  EXPECT_FALSE(limiter.Admit("client", kSecond / 2));
  // By 1.6s total a full token has accrued (the failed probes spend none).
  EXPECT_TRUE(limiter.Admit("client", (kSecond * 16) / 10));
  EXPECT_FALSE(limiter.Admit("client", (kSecond * 16) / 10));
}

TEST(RateLimiterTest, RefillIsCappedAtBurst) {
  RateLimiter limiter(TokenBucketConfig{1.0, 4.0});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(limiter.Admit("client", 0));
  }
  // A long idle stretch refills to burst, never beyond it.
  const int64_t later = 100 * kSecond;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(limiter.Admit("client", later)) << "refilled token " << i;
  }
  EXPECT_FALSE(limiter.Admit("client", later));
}

TEST(RateLimiterTest, KeysAreIndependent) {
  RateLimiter limiter(TokenBucketConfig{1.0, 1.0});
  EXPECT_TRUE(limiter.Admit("a", 0));
  EXPECT_FALSE(limiter.Admit("a", 0));
  EXPECT_TRUE(limiter.Admit("b", 0));
  EXPECT_EQ(limiter.tracked_keys(), 2u);
}

TEST(RateLimiterTest, BurstHasAFloorOfOneToken) {
  // A sub-1 burst would admit nothing ever; the limiter clamps to one.
  RateLimiter limiter(TokenBucketConfig{1.0, 0.25});
  EXPECT_TRUE(limiter.Admit("client", 0));
  EXPECT_FALSE(limiter.Admit("client", 0));
}

TEST(RateLimiterTest, TimeGoingBackwardNeverMintsTokens) {
  RateLimiter limiter(TokenBucketConfig{1.0, 1.0});
  EXPECT_TRUE(limiter.Admit("client", 10 * kSecond));
  EXPECT_FALSE(limiter.Admit("client", 10 * kSecond));
  // A clock step backwards must not be read as negative elapsed time.
  EXPECT_FALSE(limiter.Admit("client", 0));
}

TEST(RateLimiterTest, SweepDropsIdleFullBucketsAndKeepsLiveState) {
  // 4097 one-shot clients at t=0 push the table past the sweep threshold.
  RateLimiter limiter(TokenBucketConfig{1000.0, 1.0});
  for (int i = 0; i <= 4096; ++i) {
    ASSERT_TRUE(limiter.Admit("client-" + std::to_string(i), 0));
  }
  EXPECT_EQ(limiter.tracked_keys(), 4097u);
  // One second later every idle bucket has refilled to burst — it carries
  // no admission state, so the next successful admit sweeps them all.
  EXPECT_TRUE(limiter.Admit("hot", kSecond));
  EXPECT_EQ(limiter.tracked_keys(), 1u);
  // The surviving bucket kept its spent-token state: a reconstructed
  // bucket would admit at full burst, the real one must shed.
  EXPECT_FALSE(limiter.Admit("hot", kSecond));
}

}  // namespace
}  // namespace ceres::net
