#include "core/entity_matcher.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace ceres {
namespace {

using testing::FilmPageHtml;
using testing::ParseOrDie;
using testing::TinyMovieKb;

TEST(EntityMatcherTest, FindsAllEntities) {
  TinyMovieKb fixture;
  DomDocument page = ParseOrDie(FilmPageHtml(
      "Do the Right Thing", "Spike Lee", "Spike Lee",
      {"Spike Lee", "Danny Aiello", "John Turturro"},
      {"Comedy", "Dramedy"}));
  PageMentions mentions = MatchPageMentions(page, fixture.kb);
  EXPECT_TRUE(mentions.page_set.count(fixture.right_thing) > 0);
  EXPECT_TRUE(mentions.page_set.count(fixture.lee) > 0);
  EXPECT_TRUE(mentions.page_set.count(fixture.aiello) > 0);
  EXPECT_TRUE(mentions.page_set.count(fixture.comedy) > 0);
  EXPECT_FALSE(mentions.page_set.count(fixture.harris) > 0);
}

TEST(EntityMatcherTest, MultipleMentionsTracked) {
  TinyMovieKb fixture;
  DomDocument page = ParseOrDie(FilmPageHtml(
      "Do the Right Thing", "Spike Lee", "Spike Lee",
      {"Spike Lee", "Danny Aiello"}, {"Comedy"}));
  PageMentions mentions = MatchPageMentions(page, fixture.kb);
  // Lee appears as director, writer, and in the cast.
  ASSERT_TRUE(mentions.mentions_of.count(fixture.lee) > 0);
  EXPECT_EQ(mentions.mentions_of.at(fixture.lee).size(), 3u);
  EXPECT_EQ(mentions.mentions_of.at(fixture.aiello).size(), 1u);
}

TEST(EntityMatcherTest, FieldsAndCandidatesParallel) {
  TinyMovieKb fixture;
  DomDocument page = ParseOrDie(FilmPageHtml(
      "Selma", "Nobody Known", "Unknown Writer", {"Danny Aiello"},
      {"Dramedy"}));
  PageMentions mentions = MatchPageMentions(page, fixture.kb);
  ASSERT_EQ(mentions.fields.size(), mentions.candidates.size());
  for (size_t i = 0; i < mentions.fields.size(); ++i) {
    EXPECT_FALSE(mentions.candidates[i].empty());
    for (EntityId id : mentions.candidates[i]) {
      EXPECT_TRUE(mentions.page_set.count(id) > 0);
    }
  }
}

TEST(EntityMatcherTest, UnmatchedFieldsSkipped) {
  TinyMovieKb fixture;
  DomDocument page = ParseOrDie(
      "<body><div>Completely unrelated text</div>"
      "<div>Spike Lee</div></body>");
  PageMentions mentions = MatchPageMentions(page, fixture.kb);
  EXPECT_EQ(mentions.fields.size(), 1u);
  EXPECT_EQ(mentions.page_set.size(), 1u);
}

TEST(EntityMatcherTest, EmptyPage) {
  TinyMovieKb fixture;
  DomDocument page = ParseOrDie("<body></body>");
  PageMentions mentions = MatchPageMentions(page, fixture.kb);
  EXPECT_TRUE(mentions.page_set.empty());
  EXPECT_TRUE(mentions.fields.empty());
}

}  // namespace
}  // namespace ceres
