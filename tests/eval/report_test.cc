#include "eval/report.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ceres::eval {
namespace {

TEST(TableReportTest, RendersAlignedTable) {
  TableReport report({"System", "F1"});
  report.AddRow({"CERES-Full", "0.99"});
  report.AddRow({"Vertex++", "0.90"});
  std::string out = report.ToString();
  EXPECT_NE(out.find("| System"), std::string::npos);
  EXPECT_NE(out.find("| CERES-Full | 0.99 |"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TableReportTest, ShortRowsPadded) {
  TableReport report({"A", "B", "C"});
  report.AddRow({"x"});
  std::string out = report.ToString();
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

TEST(TableReportTest, ExtraCellsDropped) {
  TableReport report({"A"});
  report.AddRow({"1", "overflow"});
  EXPECT_EQ(report.ToString().find("overflow"), std::string::npos);
}

TEST(FormatRatioTest, Basics) {
  EXPECT_EQ(FormatRatio(0.987), "0.99");
  EXPECT_EQ(FormatRatio(0.5, 3), "0.500");
  EXPECT_EQ(FormatRatio(std::nan("")), "NA");
}

TEST(RatioOrNaTest, Basics) {
  EXPECT_EQ(RatioOrNa(true, 0.75), "0.75");
  EXPECT_EQ(RatioOrNa(false, 0.75), "NA");
}

}  // namespace
}  // namespace ceres::eval
