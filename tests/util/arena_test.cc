#include "util/arena.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace ceres::util {
namespace {

TEST(TextArenaTest, AppendCopiesAndStaysStable) {
  TextArena arena;
  std::string source = "hello arena";
  std::string_view v = arena.Append(source);
  EXPECT_EQ(v, "hello arena");
  EXPECT_NE(v.data(), source.data());
  source[0] = 'X';
  EXPECT_EQ(v, "hello arena");
}

TEST(TextArenaTest, ViewsSurviveManyAppends) {
  TextArena arena;
  std::vector<std::string_view> views;
  for (int i = 0; i < 3000; ++i) {
    views.push_back(arena.Append("arena-entry-" + std::to_string(i)));
  }
  for (int i = 0; i < 3000; ++i) {
    EXPECT_EQ(views[static_cast<size_t>(i)],
              "arena-entry-" + std::to_string(i));
  }
  EXPECT_GT(arena.bytes_used(), 0u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(TextArenaTest, ExtendTailGrowsInPlaceWhenLast) {
  TextArena arena;
  std::string_view head = arena.Append("hello");
  std::string_view joined = arena.ExtendTail(head, " ", "world");
  EXPECT_EQ(joined, "hello world");
  // The head was the last allocation, so it extends in place.
  EXPECT_EQ(joined.data(), head.data());
}

TEST(TextArenaTest, ExtendTailCopiesWhenNotLast) {
  TextArena arena;
  std::string_view head = arena.Append("hello");
  arena.Append("interloper");
  std::string_view joined = arena.ExtendTail(head, " ", "world");
  EXPECT_EQ(joined, "hello world");
  EXPECT_NE(joined.data(), head.data());
}

TEST(TextArenaTest, ExtendTailFromEmptyHead) {
  TextArena arena;
  std::string_view joined = arena.ExtendTail(std::string_view(), " ", "solo");
  // An empty head means "first segment": no separator is prepended.
  EXPECT_EQ(joined, "solo");
}

TEST(TextArenaTest, MovePreservesViews) {
  TextArena arena;
  std::string_view v = arena.Append("movable content");
  TextArena moved = std::move(arena);
  EXPECT_EQ(v, "movable content");
  std::string_view after = moved.Append("more");
  EXPECT_EQ(after, "more");
}

}  // namespace
}  // namespace ceres::util
