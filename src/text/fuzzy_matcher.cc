#include "text/fuzzy_matcher.h"

#include <algorithm>
#include <cctype>

#include "text/normalize.h"

namespace ceres {

std::string StripTrailingYear(std::string_view normalized) {
  size_t space = normalized.rfind(' ');
  if (space == std::string_view::npos) return std::string(normalized);
  std::string_view last = normalized.substr(space + 1);
  if (last.size() != 4) return std::string(normalized);
  for (char c : last) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return std::string(normalized);
    }
  }
  return std::string(normalized.substr(0, space));
}

void FuzzyMatcher::Add(std::string_view name, int64_t id) {
  std::string key = NormalizeText(name);
  if (key.empty()) return;
  std::vector<int64_t>& ids = index_[key];
  if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
    ids.push_back(id);
  }
}

const std::vector<int64_t>* FuzzyMatcher::Lookup(
    const std::string& normalized) const {
  auto it = index_.find(normalized);
  return it == index_.end() ? nullptr : &it->second;
}

std::vector<int64_t> FuzzyMatcher::Match(std::string_view text) const {
  std::string key = NormalizeText(text);
  if (key.empty()) return {};
  const std::vector<int64_t>* hit = Lookup(key);
  if (hit == nullptr) {
    // Retry with a trailing disambiguation year removed, a common pattern on
    // film sites ("Do the Right Thing (1989)").
    std::string stripped = StripTrailingYear(key);
    if (stripped != key && !stripped.empty()) hit = Lookup(stripped);
  }
  return hit != nullptr ? *hit : std::vector<int64_t>{};
}

bool FuzzyMatcher::Matches(std::string_view text) const {
  return !Match(text).empty();
}

}  // namespace ceres
