// Table 5 — Extraction quality on the IMDb-like corpus: per predicate,
// CERES-TOPIC vs CERES-FULL, grouped into Person and Film/TV page domains.
//
// This is the paper's central ablation: on a complex multi-predicate site,
// bypassing Algorithm 2 (CERES-Topic) floods training with mislabelled
// mentions and collapses precision on ambiguous person-page predicates,
// while CERES-Full keeps precision high at some recall cost.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"

namespace {

using namespace ceres;         // NOLINT(build/namespaces)
using namespace ceres::bench;  // NOLINT(build/namespaces)

}  // namespace

int main() {
  const double scale = synth::EnvScale();
  std::printf(
      "Table 5: IMDb-like extraction quality, CERES-Topic vs CERES-Full "
      "(scale=%.2f)\n\n",
      scale);

  ParsedCorpus corpus = ParseCorpus(synth::MakeImdbCorpus(scale));
  const ParsedSite& site = corpus.sites[0];
  const Ontology& ontology = corpus.corpus.seed_kb.ontology();
  const TypeId person_type = *ontology.TypeByName("person");
  Split split = HalfSplit(site.pages.size());

  // Eval pages split by domain using the world's topic types.
  std::vector<PageIndex> person_pages;
  std::vector<PageIndex> film_pages;
  for (PageIndex page : split.eval) {
    EntityId topic = site.truth.pages[static_cast<size_t>(page)].topic;
    if (topic == kInvalidEntity) continue;
    if (corpus.corpus.world.kb.entity(topic).type == person_type) {
      person_pages.push_back(page);
    } else {
      film_pages.push_back(page);
    }
  }

  // Run both systems once; score per domain afterwards.
  std::vector<Extraction> extractions[2];
  for (System system : {System::kCeresTopic, System::kCeresFull}) {
    std::fprintf(stderr, "[table5] running %s...\n",
                 system == System::kCeresFull ? "full" : "topic");
    PipelineResult result =
        RunSite(site, corpus.corpus.seed_kb, MakeConfig(system, split));
    extractions[system == System::kCeresFull ? 1 : 0] =
        std::move(result.extractions);
  }

  for (bool person_domain : {true, false}) {
    const std::vector<PageIndex>& pages =
        person_domain ? person_pages : film_pages;
    std::map<PredicateId, eval::Prf> scored[2];
    for (int sys = 0; sys < 2; ++sys) {
      eval::ScoreOptions options;
      options.pages = pages;
      options.confidence_threshold = 0.5;
      scored[sys] = eval::ScoreExtractionsByPredicate(extractions[sys],
                                                      site.truth, options);
    }

    std::printf("== %s domain (%zu eval pages) ==\n",
                person_domain ? "Person" : "Film/TV", pages.size());
    eval::TableReport table({"Predicate", "Topic P", "Topic R", "Topic F1",
                             "Full P", "Full R", "Full F1"});
    eval::Prf topic_total;
    eval::Prf full_total;
    auto add_row = [&](PredicateId predicate, const std::string& label) {
      const eval::Prf& t = scored[0][predicate];
      const eval::Prf& f = scored[1][predicate];
      if (t.tp + t.fp + t.fn + f.tp + f.fp + f.fn == 0) return;
      table.AddRow({label, eval::FormatRatio(t.precision()),
                    eval::FormatRatio(t.recall()),
                    eval::FormatRatio(t.f1()),
                    eval::FormatRatio(f.precision()),
                    eval::FormatRatio(f.recall()),
                    eval::FormatRatio(f.f1())});
      topic_total += t;
      full_total += f;
    };
    add_row(kNamePredicate, person_domain ? "name" : "title");
    for (const PredicateDecl& predicate : ontology.predicates()) {
      add_row(predicate.id, predicate.name);
    }
    table.AddRow({"All Extractions",
                  eval::FormatRatio(topic_total.precision()),
                  eval::FormatRatio(topic_total.recall()),
                  eval::FormatRatio(topic_total.f1()),
                  eval::FormatRatio(full_total.precision()),
                  eval::FormatRatio(full_total.recall()),
                  eval::FormatRatio(full_total.f1())});
    table.Print();
    std::printf("\n");
  }

  std::printf(
      "Paper (Table 5): Person all-extractions Topic 0.36/0.65 vs Full "
      "0.93/0.68 (P/R); Film/TV Topic 0.88/0.59 vs Full 0.99/0.65. "
      "CERES-Full lifts precision dramatically on ambiguous person "
      "predicates (alias 0.06 -> 0.98, acted_in 0.41 -> 0.93).\n");
  return 0;
}
