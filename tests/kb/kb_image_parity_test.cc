// Parity tests: a KB opened from its mmap'd image must answer every query
// byte-identically to the heap-frozen KB that wrote the image. The two
// backings share serving code by construction (both read the flat image),
// so these tests concentrate on the one divergent path — mention matching,
// which is hash-accelerated on the heap KB and binary-searched on the
// mapped KB — plus end-to-end pipeline output.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/entity_matcher.h"
#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "kb/knowledge_base.h"
#include "synth/corpora.h"
#include "synth/kb_builder.h"
#include "util/string_util.h"

namespace ceres {
namespace {

template <typename T>
std::vector<T> ToVector(std::span<const T> span) {
  return std::vector<T>(span.begin(), span.end());
}

class KbImageParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::MovieWorldConfig config;
    config.scale = 0.15;
    world_ = new synth::World(synth::BuildMovieWorld(config));
    synth::SeedKbConfig kb_config;
    kb_config.default_coverage = 0.9;
    heap_ = new KnowledgeBase(synth::BuildSeedKb(*world_, kb_config));

    image_path_ = new std::string(::testing::TempDir() + "/parity.kbi");
    ASSERT_TRUE(heap_->SaveImage(*image_path_).ok());
    KnowledgeBase::OpenOptions options;
    options.verify_checksum = true;
    Result<KnowledgeBase> mapped =
        KnowledgeBase::OpenImage(*image_path_, options);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    mapped_ = new KnowledgeBase(std::move(mapped).value());
  }

  static void TearDownTestSuite() {
    std::remove(image_path_->c_str());
    delete mapped_;
    delete heap_;
    delete world_;
    delete image_path_;
    mapped_ = nullptr;
    heap_ = nullptr;
    world_ = nullptr;
    image_path_ = nullptr;
  }

  static synth::World* world_;
  static KnowledgeBase* heap_;
  static KnowledgeBase* mapped_;
  static std::string* image_path_;
};

synth::World* KbImageParityTest::world_ = nullptr;
KnowledgeBase* KbImageParityTest::heap_ = nullptr;
KnowledgeBase* KbImageParityTest::mapped_ = nullptr;
std::string* KbImageParityTest::image_path_ = nullptr;

TEST_F(KbImageParityTest, CatalogMatches) {
  ASSERT_EQ(heap_->num_entities(), mapped_->num_entities());
  ASSERT_EQ(heap_->num_triples(), mapped_->num_triples());
  for (EntityId id = 0; id < heap_->num_entities(); ++id) {
    const Entity a = heap_->entity(id);
    const Entity b = mapped_->entity(id);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.aliases.size(), b.aliases.size());
    for (size_t i = 0; i < a.aliases.size(); ++i) {
      EXPECT_EQ(a.aliases[i], b.aliases[i]);
    }
  }
}

TEST_F(KbImageParityTest, MentionMatchingIsIdentical) {
  // Every surface the matcher was built from, plus decorated and negative
  // probes, must return the same id list (same ids, same order) from both
  // the hash index and the image binary search.
  auto expect_same = [](std::string_view probe) {
    std::vector<EntityId> a = ToVector(heap_->MatchMentionsView(probe));
    std::vector<EntityId> b = ToVector(mapped_->MatchMentionsView(probe));
    EXPECT_EQ(a, b) << "probe: " << probe;
  };
  for (EntityId id = 0; id < heap_->num_entities(); ++id) {
    const Entity entity = heap_->entity(id);
    expect_same(entity.name);
    expect_same(StrCat("  ", entity.name, "\t"));
    expect_same(StrCat(entity.name, " (2014)"));
    for (std::string_view alias : entity.aliases) expect_same(alias);
  }
  expect_same("");
  expect_same("no such entity anywhere");
  expect_same("1999");
}

TEST_F(KbImageParityTest, TripleQueriesAreIdentical) {
  for (EntityId subject = 0; subject < heap_->num_entities(); ++subject) {
    EXPECT_EQ(ToVector(heap_->TriplesWithSubject(subject)),
              ToVector(mapped_->TriplesWithSubject(subject)));
    EXPECT_EQ(ToVector(heap_->ObjectsOfSubject(subject)),
              ToVector(mapped_->ObjectsOfSubject(subject)));
  }
  // HasTriple / PredicatesBetween over every stored triple, and over a
  // shifted probe that is mostly absent.
  for (const Triple& triple : heap_->triples()) {
    EXPECT_TRUE(mapped_->HasTriple(triple.subject, triple.predicate,
                                   triple.object));
    EXPECT_EQ(heap_->PredicatesBetween(triple.subject, triple.object),
              mapped_->PredicatesBetween(triple.subject, triple.object));
    const EntityId other = (triple.object + 1) % heap_->num_entities();
    EXPECT_EQ(heap_->HasTriple(triple.subject, triple.predicate, other),
              mapped_->HasTriple(triple.subject, triple.predicate, other));
  }
}

TEST_F(KbImageParityTest, CommonObjectStringsAreIdentical) {
  for (double fraction : {0.0001, 0.01, 0.5}) {
    EXPECT_EQ(heap_->CommonObjectStrings(fraction, 2),
              mapped_->CommonObjectStrings(fraction, 2));
  }
}

TEST_F(KbImageParityTest, PipelineOutputIsIdentical) {
  synth::SiteSpec spec;
  spec.name = "parity.example";
  spec.seed = 7;
  spec.tmpl.topic_type = "film";
  spec.tmpl.css_prefix = "pt";
  spec.tmpl.sections = {
      {synth::pred::kFilmDirectedBy, "director", synth::SectionLayout::kRow,
       0.05, 3},
      {synth::pred::kFilmHasCastMember, "cast", synth::SectionLayout::kList,
       0.05, 10},
      {synth::pred::kFilmReleaseDate, "release_date",
       synth::SectionLayout::kRow, 0.05, 1},
  };
  TypeId film = *world_->kb.ontology().TypeByName("film");
  const auto& films = world_->OfType(film);
  ASSERT_GE(films.size(), 40u);
  spec.topics.assign(films.begin(), films.begin() + 40);
  std::vector<synth::GeneratedPage> generated = GenerateSite(*world_, spec);

  std::vector<DomDocument> pages;
  for (const synth::GeneratedPage& page : generated) {
    Result<DomDocument> parsed = ParseHtml(page.html);
    ASSERT_TRUE(parsed.ok());
    pages.push_back(std::move(parsed).value());
  }

  // Per-page mention sets first (the pipeline stage that touches the
  // divergent matcher path)...
  for (const DomDocument& page : pages) {
    PageMentions a = MatchPageMentions(page, *heap_);
    PageMentions b = MatchPageMentions(page, *mapped_);
    EXPECT_EQ(a.page_set, b.page_set);
    EXPECT_EQ(a.fields, b.fields);
    EXPECT_EQ(a.candidates, b.candidates);
  }

  // ...then the whole pipeline: identical extractions, fact for fact.
  PipelineConfig config;
  Result<PipelineResult> a = RunPipeline(pages, *heap_, config);
  Result<PipelineResult> b = RunPipeline(pages, *mapped_, config);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->topic_of_page, b->topic_of_page);
  ASSERT_EQ(a->extractions.size(), b->extractions.size());
  for (size_t i = 0; i < a->extractions.size(); ++i) {
    const Extraction& x = a->extractions[i];
    const Extraction& y = b->extractions[i];
    EXPECT_EQ(x.page, y.page);
    EXPECT_EQ(x.node, y.node);
    EXPECT_EQ(x.predicate, y.predicate);
    EXPECT_EQ(x.subject, y.subject);
    EXPECT_EQ(x.object, y.object);
    EXPECT_EQ(x.confidence, y.confidence);
  }
}

}  // namespace
}  // namespace ceres
