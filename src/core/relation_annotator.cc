#include "core/relation_annotator.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <tuple>

#include "dom/dom_utils.h"
#include "dom/xpath.h"
#include "ml/agglomerative.h"
#include "util/logging.h"

namespace ceres {

namespace {

// One (page, predicate, object) annotation decision.
struct Task {
  PageIndex page = 0;
  PredicateId predicate = kInvalidPredicate;
  EntityId object = kInvalidEntity;
  std::vector<NodeId> mentions;
};

// BestLocalMention of Algorithm 2: the mention(s) whose highest exclusive
// ancestor subtree contains the most mentions of any object of the
// predicate.
std::vector<NodeId> BestLocalMentions(
    const DomDocument& doc, const std::vector<NodeId>& object_mentions,
    const std::vector<NodeId>& all_predicate_mentions) {
  int best_count = -1;
  std::vector<NodeId> best;
  for (NodeId mention : object_mentions) {
    NodeId ancestor = HighestExclusiveAncestor(doc, mention, object_mentions);
    int neighbor_count =
        CountInSubtree(doc, ancestor, all_predicate_mentions);
    if (neighbor_count > best_count) {
      best_count = neighbor_count;
      best = {mention};
    } else if (neighbor_count == best_count) {
      best.push_back(mention);
    }
  }
  return best;
}

// Membership of each distinct mention XPath of one predicate in a cluster,
// computed across all pages (§3.2.2). largest_cluster is the id whose
// member paths account for the most mention occurrences.
struct PredicateClusters {
  std::unordered_map<std::string, int> cluster_of_path;
  int largest_cluster = -1;
};

PredicateClusters ClusterPredicatePaths(
    const std::vector<std::pair<XPath, int64_t>>& path_occurrences,
    size_t num_clusters, size_t max_paths) {
  PredicateClusters out;
  if (path_occurrences.empty()) return out;

  // Keep the most frequent paths when over budget.
  std::vector<size_t> kept(path_occurrences.size());
  for (size_t i = 0; i < kept.size(); ++i) kept[i] = i;
  if (kept.size() > max_paths) {
    std::sort(kept.begin(), kept.end(), [&](size_t a, size_t b) {
      return path_occurrences[a].second > path_occurrences[b].second;
    });
    kept.resize(max_paths);
  }

  num_clusters = std::max<size_t>(1, std::min(num_clusters, kept.size()));
  std::vector<int> labels = AgglomerativeCluster(
      kept.size(),
      [&](size_t a, size_t b) {
        return XPathEditDistance(path_occurrences[kept[a]].first,
                                 path_occurrences[kept[b]].first);
      },
      num_clusters, Linkage::kSingle);

  std::unordered_map<int, int64_t> weight;
  for (size_t i = 0; i < kept.size(); ++i) {
    const auto& [path, count] = path_occurrences[kept[i]];
    out.cluster_of_path[path.ToString()] = labels[i];
    weight[labels[i]] += count;
  }
  // Precision-first: the "largest cluster" rule only applies when there IS
  // a unique largest cluster. With tied weights the global evidence is as
  // ambiguous as the local evidence was, and no annotation is made.
  int64_t best_weight = -1;
  int64_t second_weight = -1;
  for (const auto& [label, w] : weight) {
    if (w > best_weight) {
      second_weight = best_weight;
      best_weight = w;
      out.largest_cluster = label;
    } else if (w > second_weight) {
      second_weight = w;
    }
  }
  if (best_weight == second_weight) out.largest_cluster = -1;
  return out;
}

}  // namespace

AnnotationResult AnnotateRelations(
    const std::vector<const DomDocument*>& pages,
    const std::vector<PageMentions>& mentions, const TopicResult& topics,
    const KnowledgeBase& kb, const AnnotatorConfig& config) {
  CERES_CHECK(pages.size() == mentions.size());
  CERES_CHECK(pages.size() == topics.topic.size());
  AnnotationResult result;

  // Gather all annotation tasks, grouped by predicate.
  std::vector<Task> tasks;
  std::unordered_map<PredicateId, std::vector<size_t>> tasks_of_predicate;
  // Per predicate: mention nodes of any of its objects, per page.
  std::map<std::pair<PageIndex, PredicateId>, std::vector<NodeId>>
      predicate_mentions_on_page;
  int64_t annotated_page_count = 0;

  for (size_t i = 0; i < pages.size(); ++i) {
    if (config.deadline.expired()) {
      result.deadline_expired = true;
      return result;
    }
    EntityId topic = topics.topic[i];
    if (topic == kInvalidEntity) continue;
    ++annotated_page_count;
    for (const Triple& triple : kb.TriplesWithSubject(topic)) {
      auto mention_it = mentions[i].mentions_of.find(triple.object);
      if (mention_it == mentions[i].mentions_of.end()) continue;
      Task task;
      task.page = static_cast<PageIndex>(i);
      task.predicate = triple.predicate;
      task.object = triple.object;
      task.mentions = mention_it->second;
      tasks_of_predicate[triple.predicate].push_back(tasks.size());
      auto& pm = predicate_mentions_on_page[{task.page, task.predicate}];
      for (NodeId node : task.mentions) {
        if (std::find(pm.begin(), pm.end(), node) == pm.end()) {
          pm.push_back(node);
        }
      }
      tasks.push_back(std::move(task));
    }
  }

  // Lazy per-page XPath memos, shared by every predicate's clustering and
  // candidate lookups below; the same mention nodes are serialized many
  // times otherwise (once per predicate that shares them).
  std::vector<std::unique_ptr<XPathStringCache>> page_paths(pages.size());
  auto paths_for = [&](PageIndex page) -> XPathStringCache& {
    auto& slot = page_paths[static_cast<size_t>(page)];
    if (slot == nullptr) {
      slot = std::make_unique<XPathStringCache>(*pages[page]);
    }
    return *slot;
  };

  std::set<PageIndex> pages_with_annotations;
  auto emit = [&](PageIndex page, NodeId node, PredicateId predicate,
                  EntityId object) {
    result.annotations.push_back(Annotation{page, node, predicate, object});
    pages_with_annotations.insert(page);
  };

  if (!config.use_relation_filtering) {
    // CERES-Topic baseline: label every mention of the object with every
    // predicate it holds with the topic.
    for (const Task& task : tasks) {
      for (NodeId node : task.mentions) {
        emit(task.page, node, task.predicate, task.object);
      }
    }
  } else {
    // Predicate-level aggregates for the clustering triggers.
    for (auto& [predicate, task_indices] : tasks_of_predicate) {
      // Is the predicate frequently duplicated? (fraction of tasks whose
      // object has multiple mentions)
      int64_t duplicated = 0;
      size_t max_mentions_per_object = 1;
      std::unordered_map<EntityId, std::set<PageIndex>> pages_of_object;
      for (size_t index : task_indices) {
        const Task& task = tasks[index];
        if (task.mentions.size() > 1) ++duplicated;
        max_mentions_per_object =
            std::max(max_mentions_per_object, task.mentions.size());
        pages_of_object[task.object].insert(task.page);
      }
      const bool frequently_duplicated =
          static_cast<double>(duplicated) >
          config.duplicated_predicate_fraction *
              static_cast<double>(task_indices.size());

      // Does some object value recur across most annotated pages?
      bool suspicious_value = false;
      std::unordered_set<EntityId> suspicious_objects;
      for (const auto& [object, page_set] : pages_of_object) {
        if (annotated_page_count > 1 &&
            static_cast<double>(page_set.size()) >
                config.duplicate_page_fraction *
                    static_cast<double>(annotated_page_count)) {
          suspicious_value = true;
          suspicious_objects.insert(object);
        }
      }

      // Global clustering, computed only when some decision needs it.
      PredicateClusters clusters;
      bool clusters_ready = false;
      auto ensure_clusters = [&]() {
        if (clusters_ready) return;
        // Count path-string occurrences without a string-keyed map: the
        // cached PathString references are stable for the caches'
        // lifetime, so string_views into them can be stable_sorted and
        // run-length counted. Output order (key-sorted) and the
        // representative XPath per key (first mention encountered) match
        // the std::map formulation exactly, so clustering stays
        // deterministic.
        std::vector<std::tuple<std::string_view, PageIndex, NodeId>> mentions;
        for (size_t index : task_indices) {
          const Task& task = tasks[index];
          XPathStringCache& page_paths = paths_for(task.page);
          for (NodeId node : task.mentions) {
            mentions.emplace_back(page_paths.PathString(node), task.page,
                                  node);
          }
        }
        std::stable_sort(mentions.begin(), mentions.end(),
                         [](const auto& a, const auto& b) {
                           return std::get<0>(a) < std::get<0>(b);
                         });
        std::vector<std::pair<XPath, int64_t>> paths;
        for (size_t i = 0; i < mentions.size();) {
          size_t j = i + 1;
          while (j < mentions.size() &&
                 std::get<0>(mentions[j]) == std::get<0>(mentions[i])) {
            ++j;
          }
          const auto& [key, page, node] = mentions[i];
          paths.emplace_back(paths_for(page).Path(node),
                             static_cast<int64_t>(j - i));
          i = j;
        }
        clusters = ClusterPredicatePaths(paths, max_mentions_per_object,
                                         config.max_cluster_paths);
        clusters_ready = true;
      };

      for (size_t index : task_indices) {
        if (config.deadline.expired()) {
          result.deadline_expired = true;
          return result;
        }
        const Task& task = tasks[index];
        const DomDocument& doc = *pages[task.page];
        const std::vector<NodeId>& all_pred_mentions =
            predicate_mentions_on_page.at({task.page, task.predicate});
        std::vector<NodeId> best =
            BestLocalMentions(doc, task.mentions, all_pred_mentions);
        NodeId chosen = kInvalidNode;
        if (best.size() == 1) {
          chosen = best.front();
        } else if (frequently_duplicated) {
          ensure_clusters();
          for (NodeId candidate : best) {
            const std::string& key = paths_for(task.page).PathString(candidate);
            auto it = clusters.cluster_of_path.find(key);
            if (it != clusters.cluster_of_path.end() &&
                it->second == clusters.largest_cluster) {
              chosen = candidate;
              break;
            }
          }
        }
        // Informativeness guard: values recurring on most pages must sit in
        // the dominant cluster to be trusted.
        if (chosen != kInvalidNode && suspicious_value &&
            suspicious_objects.count(task.object) > 0) {
          ensure_clusters();
          const std::string& key = paths_for(task.page).PathString(chosen);
          auto it = clusters.cluster_of_path.find(key);
          if (it == clusters.cluster_of_path.end() ||
              it->second != clusters.largest_cluster) {
            chosen = kInvalidNode;
          }
        }
        if (chosen != kInvalidNode) {
          emit(task.page, chosen, task.predicate, task.object);
        }
      }
    }
  }

  // NAME annotations for pages that kept at least one relation label.
  for (size_t i = 0; i < pages.size(); ++i) {
    PageIndex page = static_cast<PageIndex>(i);
    if (topics.topic[i] == kInvalidEntity) continue;
    if (pages_with_annotations.count(page) == 0) continue;
    CERES_CHECK(topics.topic_node[i] != kInvalidNode);
    result.annotations.push_back(Annotation{
        page, topics.topic_node[i], kNamePredicate, topics.topic[i]});
    result.annotated_pages.push_back(page);
  }
  std::sort(result.annotated_pages.begin(), result.annotated_pages.end());
  return result;
}

}  // namespace ceres
