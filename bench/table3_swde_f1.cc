// Table 3 — Page-hit F1 on the four SWDE-style verticals, comparing the
// annotation-based VERTEX++ wrapper, the classic distant-supervision
// CERES-BASELINE, CERES-TOPIC (Algorithm 1 only), and CERES-FULL.
//
// Methodology follows Hao et al. as in the paper: credit per (page,
// predicate) for the single highest-confidence extraction; 50/50
// train/eval split; 0.5 confidence threshold; distantly supervised systems
// are scored on the predicates their seed KB covers (Movie.MPAA-Rating is
// absent from the KB, hence NA contribution for CERES-* on that attribute,
// exactly as footnote a of the paper's Table 3).
//
// Paper reference rows are printed below the measured table.

#include <cstdio>

#include "baselines/ceres_baseline.h"
#include "bench/bench_common.h"

namespace {

using namespace ceres;         // NOLINT(build/namespaces)
using namespace ceres::bench;  // NOLINT(build/namespaces)

// Aggregated page-hit score of one system across a vertical's 10 sites.
struct VerticalScore {
  eval::Prf prf;
  bool available = true;
  std::string note;
};

VerticalScore ScoreCeres(const ParsedCorpus& corpus, System system,
                         const std::vector<PredicateId>& predicates) {
  std::vector<eval::Prf> per_site(corpus.sites.size());
  ForEachSite(corpus, [&](size_t s) {
    const ParsedSite& site = corpus.sites[s];
    Split split = HalfSplit(site.pages.size());
    PipelineResult result =
        RunSite(site, corpus.corpus.seed_kb, MakeConfig(system, split));
    eval::ScoreOptions options;
    options.pages = split.eval;
    options.predicates = predicates;
    options.confidence_threshold = 0.5;
    per_site[s] =
        eval::ScorePageHits(result.extractions, site.truth, options);
  });
  VerticalScore score;
  for (const eval::Prf& prf : per_site) score.prf += prf;
  return score;
}

VerticalScore ScoreVertex(const ParsedCorpus& corpus,
                          const std::vector<PredicateId>& predicates) {
  std::vector<eval::Prf> per_site(corpus.sites.size());
  ForEachSite(corpus, [&](size_t s) {
    const ParsedSite& site = corpus.sites[s];
    Split split = HalfSplit(site.pages.size());
    std::vector<Extraction> extractions = RunVertex(site, split);
    eval::ScoreOptions options;
    options.pages = split.eval;
    options.predicates = predicates;
    per_site[s] = eval::ScorePageHits(extractions, site.truth, options);
  });
  VerticalScore score;
  for (const eval::Prf& prf : per_site) score.prf += prf;
  return score;
}

VerticalScore ScorePairBaseline(const ParsedCorpus& corpus,
                                const std::vector<PredicateId>& predicates) {
  VerticalScore score;
  for (const ParsedSite& site : corpus.sites) {
    Split split = HalfSplit(site.pages.size());
    PairBaselineConfig config;
    // Stand-in for the paper's 32 GB memory ceiling: the entity-dense
    // Movie vertical produces ~6x more pair annotations per site than the
    // other verticals (and in the paper it was the one that OOMed), so a
    // fixed per-site cap reproduces the NA outcome without thrashing.
    config.max_pair_annotations = 600;
    config.max_candidate_fields_per_page = 60;
    Result<PairBaselineResult> result = RunPairBaseline(
        site.pages, corpus.corpus.seed_kb, split.train, split.eval, config);
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kResourceExhausted) {
        score.available = false;
        score.note = "out of memory (annotation cap exceeded)";
        return score;
      }
      continue;  // No annotations on this site: contributes nothing.
    }
    eval::ScoreOptions options;
    options.pages = split.eval;
    options.predicates = predicates;
    options.confidence_threshold = 0.5;
    options.check_subject = true;
    score.prf += eval::ScorePageHits(result->extractions, site.truth,
                                     options);
  }
  return score;
}

}  // namespace

int main() {
  const double scale = synth::EnvScale();
  std::printf("Table 3: SWDE page-hit F1 by system (scale=%.2f)\n\n", scale);

  eval::TableReport table({"System", "Manual labels", "Movie", "NBA Player",
                           "University", "Book"});
  std::vector<std::string> vertex_row{"Vertex++", "yes"};
  std::vector<std::string> baseline_row{"CERES-Baseline", "no"};
  std::vector<std::string> topic_row{"CERES-Topic", "no"};
  std::vector<std::string> full_row{"CERES-Full", "no"};

  for (synth::SwdeVertical vertical :
       {synth::SwdeVertical::kMovie, synth::SwdeVertical::kNbaPlayer,
        synth::SwdeVertical::kUniversity, synth::SwdeVertical::kBook}) {
    std::fprintf(stderr, "[table3] building %s corpus...\n",
                 SwdeVerticalName(vertical).c_str());
    ParsedCorpus corpus =
        ParseCorpus(synth::MakeSwdeCorpus(vertical, scale));
    // Vertex++ (manual labels) is scored on all vertical attributes incl.
    // NAME; distantly supervised systems on the KB-covered ones plus NAME.
    std::vector<PredicateId> all_predicates =
        EvalPredicates(corpus.corpus, /*include_name=*/true);
    std::vector<PredicateId> kb_predicates;
    for (PredicateId predicate : all_predicates) {
      if (predicate == kNamePredicate) {
        kb_predicates.push_back(predicate);
        continue;
      }
      bool covered = false;
      for (const Triple& triple : corpus.corpus.seed_kb.triples()) {
        if (triple.predicate == predicate) {
          covered = true;
          break;
        }
      }
      if (covered) kb_predicates.push_back(predicate);
    }

    std::fprintf(stderr, "[table3] vertex++...\n");
    VerticalScore vertex = ScoreVertex(corpus, all_predicates);
    std::fprintf(stderr, "[table3] ceres-baseline...\n");
    VerticalScore baseline = ScorePairBaseline(corpus, kb_predicates);
    std::fprintf(stderr, "[table3] ceres-topic...\n");
    VerticalScore topic = ScoreCeres(corpus, System::kCeresTopic,
                                     kb_predicates);
    std::fprintf(stderr, "[table3] ceres-full...\n");
    VerticalScore full = ScoreCeres(corpus, System::kCeresFull,
                                    kb_predicates);

    vertex_row.push_back(eval::FormatRatio(vertex.prf.f1()));
    baseline_row.push_back(
        eval::RatioOrNa(baseline.available, baseline.prf.f1()));
    topic_row.push_back(eval::FormatRatio(topic.prf.f1()));
    full_row.push_back(eval::FormatRatio(full.prf.f1()));
    if (!baseline.available) {
      std::fprintf(stderr, "[table3] baseline on %s: %s\n",
                   SwdeVerticalName(vertical).c_str(),
                   baseline.note.c_str());
    }
  }

  table.AddRow(vertex_row);
  table.AddRow(baseline_row);
  table.AddRow(topic_row);
  table.AddRow(full_row);
  table.Print();

  std::printf(
      "\nPaper (Table 3)        Movie  NBA   Univ  Book\n"
      "  Vertex++       yes    0.90   0.97  1.00  0.94\n"
      "  CERES-Baseline no     NA     0.78  0.72  0.27\n"
      "  CERES-Topic    no     0.99   0.97  0.96  0.72\n"
      "  CERES-Full     no     0.99   0.98  0.94  0.76\n");
  return 0;
}
