# Empty compiler generated dependencies file for ceres_bench_common.
# This may be replaced when dependencies are built.
