// Corpus: a naked std::mutex declared in the lock-order-checked scope
// (the test lints this content under a src/serve/ path). Exactly one
// naked-sync violation; the CheckedMutex member is the compliant form.
// Never compiled — linted by tests/lint/ceres_lint_test.cc.

#include <mutex>

#include "util/sync.h"

namespace ceres::serve {

class Cache {
 private:
  std::mutex mu_;  // BAD: invisible to the lock-order graph
  CheckedMutex checked_mu_{"Cache.checked_mu"};
};

}  // namespace ceres::serve
