#include "synth/corpora.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ceres::synth {
namespace {

constexpr double kTinyScale = 0.12;

TEST(SwdeCorpusTest, MovieVerticalShape) {
  Corpus corpus = MakeSwdeCorpus(SwdeVertical::kMovie, kTinyScale);
  EXPECT_EQ(corpus.sites.size(), 10u);
  EXPECT_GT(corpus.seed_kb.num_triples(), 100);
  for (const SyntheticSite& site : corpus.sites) {
    EXPECT_GE(site.pages.size(), 12u);
    for (const GeneratedPage& page : site.pages) {
      EXPECT_NE(page.topic, kInvalidEntity);
    }
  }
  // MPAA rating coverage is zero in the seed KB (Table 3 note).
  PredicateId rating =
      *corpus.seed_kb.ontology().PredicateByName(pred::kFilmMpaaRating);
  for (const Triple& triple : corpus.seed_kb.triples()) {
    EXPECT_NE(triple.predicate, rating);
  }
}

TEST(SwdeCorpusTest, BookVerticalOverlapSpread) {
  Corpus corpus = MakeSwdeCorpus(SwdeVertical::kBook, kTinyScale);
  ASSERT_EQ(corpus.sites.size(), 10u);
  // Site 0's topics seeded the KB; later sites overlap progressively less.
  auto overlap_with_kb = [&](const SyntheticSite& site) {
    int count = 0;
    for (const GeneratedPage& page : site.pages) {
      if (!corpus.seed_kb.MatchMentions(page.topic_name).empty()) ++count;
    }
    return count;
  };
  int first = overlap_with_kb(corpus.sites[0]);
  EXPECT_EQ(first, static_cast<int>(corpus.sites[0].pages.size()));
  int mid = overlap_with_kb(corpus.sites[4]);
  EXPECT_LT(mid, first / 2);
}

TEST(SwdeCorpusTest, NbaSitesShareRoster) {
  Corpus corpus = MakeSwdeCorpus(SwdeVertical::kNbaPlayer, kTinyScale);
  ASSERT_EQ(corpus.sites.size(), 10u);
  // Every site covers every player, so the KB (site 0 truth) covers all.
  for (const SyntheticSite& site : corpus.sites) {
    for (const GeneratedPage& page : site.pages) {
      EXPECT_FALSE(corpus.seed_kb.MatchMentions(page.topic_name).empty());
    }
  }
}

TEST(SwdeCorpusTest, VerticalNames) {
  EXPECT_EQ(SwdeVerticalName(SwdeVertical::kMovie), "Movie");
  EXPECT_EQ(SwdeVerticalName(SwdeVertical::kBook), "Book");
  EXPECT_EQ(SwdeVerticalName(SwdeVertical::kNbaPlayer), "NBA Player");
  EXPECT_EQ(SwdeVerticalName(SwdeVertical::kUniversity), "University");
}

TEST(ImdbCorpusTest, MixedTemplatesInOneSite) {
  Corpus corpus = MakeImdbCorpus(kTinyScale);
  ASSERT_EQ(corpus.sites.size(), 1u);
  const Ontology& ontology = corpus.world.kb.ontology();
  TypeId film = *ontology.TypeByName("film");
  TypeId person = *ontology.TypeByName("person");
  TypeId episode = *ontology.TypeByName("tv_episode");
  int films = 0;
  int persons = 0;
  int episodes = 0;
  for (const GeneratedPage& page : corpus.sites[0].pages) {
    TypeId type = corpus.world.kb.entity(page.topic).type;
    if (type == film) ++films;
    if (type == person) ++persons;
    if (type == episode) ++episodes;
  }
  EXPECT_GT(films, 0);
  EXPECT_GT(persons, 0);
  EXPECT_GT(episodes, 0);
}

TEST(LongTailCorpusTest, ThirtyThreeSitesWithDegenerates) {
  Corpus corpus = MakeLongTailCorpus(kTinyScale);
  ASSERT_EQ(corpus.sites.size(), 33u);
  // boxofficemojo has only non-detail pages.
  bool found_mojo = false;
  for (const SyntheticSite& site : corpus.sites) {
    if (site.name == "boxofficemojo.com") {
      found_mojo = true;
      EXPECT_FALSE(site.pages.empty());
      for (const GeneratedPage& page : site.pages) {
        EXPECT_EQ(page.topic, kInvalidEntity);
      }
    }
  }
  EXPECT_TRUE(found_mojo);
}

TEST(LongTailCorpusTest, ObscureSitesHaveLowKbOverlap) {
  Corpus corpus = MakeLongTailCorpus(kTinyScale);
  auto overlap_fraction = [&](const std::string& name) {
    for (const SyntheticSite& site : corpus.sites) {
      if (site.name != name) continue;
      int hits = 0;
      int total = 0;
      for (const GeneratedPage& page : site.pages) {
        if (page.topic == kInvalidEntity) continue;
        ++total;
        // Overlap = the KB knows at least 2 facts about this topic.
        for (EntityId id : corpus.seed_kb.MatchMentions(page.topic_name)) {
          if (corpus.seed_kb.TriplesWithSubject(id).size() >= 2) {
            ++hits;
            break;
          }
        }
      }
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
    ADD_FAILURE() << "site not found: " << name;
    return 0.0;
  };
  EXPECT_GT(overlap_fraction("themoviedb.org"),
            overlap_fraction("bcdb.com"));
}

TEST(EnvScaleTest, ParsesAndDefaults) {
  unsetenv("CERES_SCALE");
  EXPECT_DOUBLE_EQ(EnvScale(), 1.0);
  setenv("CERES_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(EnvScale(), 0.5);
  setenv("CERES_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(EnvScale(), 1.0);
  setenv("CERES_SCALE", "-2", 1);
  EXPECT_DOUBLE_EQ(EnvScale(), 1.0);
  unsetenv("CERES_SCALE");
}

}  // namespace
}  // namespace ceres::synth
