// Table 7 — Accuracy of Algorithm 1 (topic identification) on the
// IMDb-like corpus, split by page domain. A prediction is correct when the
// chosen seed-KB entity's name matches the page's true topic; recall is
// over pages whose topic exists in the seed KB.
//
// Paper reference: Person P 0.99 / R 0.76, Film/TV P 0.97 / R 0.88.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace ceres;         // NOLINT(build/namespaces)
  using namespace ceres::bench;  // NOLINT(build/namespaces)
  const double scale = synth::EnvScale();
  std::printf("Table 7: topic identification accuracy (scale=%.2f)\n\n",
              scale);

  ParsedCorpus corpus = ParseCorpus(synth::MakeImdbCorpus(scale));
  const ParsedSite& site = corpus.sites[0];
  const TypeId person_type =
      *corpus.corpus.seed_kb.ontology().TypeByName("person");
  Split split = HalfSplit(site.pages.size());
  PipelineResult result = RunSite(site, corpus.corpus.seed_kb,
                                  MakeConfig(System::kCeresFull, split));

  std::vector<PageIndex> person_pages;
  std::vector<PageIndex> film_pages;
  for (PageIndex page : split.train) {
    EntityId topic = site.truth.pages[static_cast<size_t>(page)].topic;
    if (topic == kInvalidEntity) continue;
    (corpus.corpus.world.kb.entity(topic).type == person_type
         ? person_pages
         : film_pages)
        .push_back(page);
  }

  eval::TableReport table({"Domain", "P", "R", "F1"});
  for (bool person_domain : {true, false}) {
    eval::Prf prf = eval::ScoreTopics(
        result.topic_of_page, site.truth, corpus.corpus.seed_kb,
        person_domain ? person_pages : film_pages);
    table.AddRow({person_domain ? "Person" : "Film/TV",
                  eval::FormatRatio(prf.precision()),
                  eval::FormatRatio(prf.recall()),
                  eval::FormatRatio(prf.f1())});
  }
  table.Print();
  std::printf(
      "\nPaper (Table 7): Person 0.99/0.76/0.86, Film/TV 0.97/0.88/0.92 "
      "(P/R/F1).\n");
  return 0;
}
