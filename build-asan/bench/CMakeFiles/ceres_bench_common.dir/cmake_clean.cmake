file(REMOVE_RECURSE
  "../lib/libceres_bench_common.a"
  "../lib/libceres_bench_common.pdb"
  "CMakeFiles/ceres_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/ceres_bench_common.dir/bench_common.cc.o.d"
  "CMakeFiles/ceres_bench_common.dir/longtail_common.cc.o"
  "CMakeFiles/ceres_bench_common.dir/longtail_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
