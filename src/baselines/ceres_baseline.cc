#include "baselines/ceres_baseline.h"

#include <algorithm>
#include <set>

#include "core/entity_matcher.h"
#include "util/random.h"
#include "util/string_util.h"

namespace ceres {

namespace {

// Concatenates two finalized sparse vectors (their feature names are kept
// disjoint via the "A|" / "B|" prefixes).
SparseVector ConcatFeatures(const SparseVector& a, const SparseVector& b) {
  SparseVector out;
  for (const auto& [index, value] : a.entries()) out.Add(index, value);
  for (const auto& [index, value] : b.entries()) out.Add(index, value);
  out.Finalize();
  return out;
}

}  // namespace

Result<PairBaselineResult> RunPairBaseline(
    const std::vector<DomDocument>& pages, const KnowledgeBase& kb,
    const std::vector<PageIndex>& annotation_pages,
    const std::vector<PageIndex>& extraction_pages,
    const PairBaselineConfig& config) {
  if (!kb.frozen()) {
    return Status::FailedPrecondition("knowledge base must be frozen");
  }
  std::vector<const DomDocument*> all_docs;
  all_docs.reserve(pages.size());
  for (const DomDocument& page : pages) all_docs.push_back(&page);
  FeatureExtractor featurizer(all_docs, FeatureConfig{});
  HashedFeatureMap feature_map;
  ClassMap classes(kb.ontology());
  Rng rng(config.seed);

  // --- Annotation: label co-mentioned entity pairs ------------------------
  std::vector<LabeledExample> examples;
  int64_t positives = 0;
  int64_t training_bytes = 0;
  // Approximate cost of one stored sparse entry (index + value).
  constexpr int64_t kBytesPerEntry = 16;
  auto charge_memory = [&](const SparseVector& features) {
    training_bytes += static_cast<int64_t>(features.size()) * kBytesPerEntry;
    return config.max_training_bytes == 0 ||
           training_bytes <= config.max_training_bytes;
  };
  for (PageIndex page : annotation_pages) {
    const DomDocument& doc = pages[static_cast<size_t>(page)];
    PageMentions mentions = MatchPageMentions(doc, kb);
    const size_t field_count = mentions.fields.size();

    // Per-field features, extracted once per side.
    std::vector<SparseVector> side_a(field_count);
    std::vector<SparseVector> side_b(field_count);
    for (size_t f = 0; f < field_count; ++f) {
      side_a[f] = featurizer.Extract(doc, mentions.fields[f], &feature_map,
                                     "A|");
      side_b[f] = featurizer.Extract(doc, mentions.fields[f], &feature_map,
                                     "B|");
    }

    std::vector<std::pair<size_t, size_t>> unrelated_pairs;
    for (size_t f1 = 0; f1 < field_count; ++f1) {
      for (size_t f2 = 0; f2 < field_count; ++f2) {
        if (f1 == f2) continue;
        std::set<PredicateId> found;
        for (EntityId e1 : mentions.candidates[f1]) {
          for (EntityId e2 : mentions.candidates[f2]) {
            for (PredicateId predicate : kb.PredicatesBetween(e1, e2)) {
              found.insert(predicate);
            }
          }
        }
        if (found.empty()) {
          unrelated_pairs.emplace_back(f1, f2);
          continue;
        }
        for (PredicateId predicate : found) {
          if (++positives > config.max_pair_annotations) {
            return Status::ResourceExhausted(
                StrCat("pair annotations exceed cap of ",
                       config.max_pair_annotations,
                       " — the quadratic DS assumption does not scale on "
                       "this site/KB"));
          }
          LabeledExample example;
          example.features = ConcatFeatures(side_a[f1], side_b[f2]);
          example.label = classes.ClassOf(predicate);
          if (!charge_memory(example.features)) {
            return Status::ResourceExhausted(
                StrCat("pair training examples exceed the memory budget of ",
                       config.max_training_bytes, " bytes"));
          }
          examples.push_back(std::move(example));
        }
      }
    }
    // Negatives: random unrelated pairs, r per positive on this page.
    size_t wanted = std::min(
        unrelated_pairs.size(),
        static_cast<size_t>(config.negatives_per_positive) * field_count);
    rng.Shuffle(&unrelated_pairs);
    for (size_t i = 0; i < wanted; ++i) {
      LabeledExample example;
      example.features = ConcatFeatures(side_a[unrelated_pairs[i].first],
                                        side_b[unrelated_pairs[i].second]);
      example.label = ClassMap::kOtherClass;
      if (!charge_memory(example.features)) {
        return Status::ResourceExhausted(
            StrCat("pair training examples exceed the memory budget of ",
                   config.max_training_bytes, " bytes"));
      }
      examples.push_back(std::move(example));
    }
  }

  PairBaselineResult result;
  result.num_annotations = positives;
  if (examples.empty() || positives == 0) {
    return Status::FailedPrecondition("baseline produced no annotations");
  }

  feature_map.Freeze();
  LogisticRegression model;
  Result<LbfgsResult> fit = model.Train(examples, feature_map.size(),
                                        classes.num_classes(), config.logreg);
  if (!fit.ok()) return fit.status();

  // --- Extraction: score candidate pairs per page -------------------------
  for (PageIndex page : extraction_pages) {
    const DomDocument& doc = pages[static_cast<size_t>(page)];
    PageMentions mentions = MatchPageMentions(doc, kb);
    size_t field_count = mentions.fields.size();
    if (static_cast<int>(field_count) > config.max_candidate_fields_per_page) {
      field_count =
          static_cast<size_t>(config.max_candidate_fields_per_page);
    }
    std::vector<SparseVector> side_a(field_count);
    std::vector<SparseVector> side_b(field_count);
    for (size_t f = 0; f < field_count; ++f) {
      side_a[f] = featurizer.Extract(doc, mentions.fields[f], &feature_map,
                                     "A|");
      side_b[f] = featurizer.Extract(doc, mentions.fields[f], &feature_map,
                                     "B|");
    }
    for (size_t f1 = 0; f1 < field_count; ++f1) {
      for (size_t f2 = 0; f2 < field_count; ++f2) {
        if (f1 == f2) continue;
        SparseVector pair = ConcatFeatures(side_a[f1], side_b[f2]);
        auto [cls, confidence] = model.Predict(pair);
        if (cls == ClassMap::kOtherClass || cls == ClassMap::kNameClass) {
          continue;
        }
        if (confidence < config.confidence_threshold) continue;
        result.extractions.push_back(
            Extraction{page, mentions.fields[f2], classes.PredicateOf(cls),
                       std::string(doc.node(mentions.fields[f1]).text),
                       std::string(doc.node(mentions.fields[f2]).text),
                       confidence});
      }
    }
  }
  return result;
}

}  // namespace ceres
