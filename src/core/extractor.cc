#include "core/extractor.h"

#include <algorithm>

#include "util/logging.h"

namespace ceres {

std::vector<Extraction> ExtractFromPages(
    const std::vector<const DomDocument*>& pages,
    const std::vector<PageIndex>& page_indices, TrainedModel* model,
    const FeatureExtractor& featurizer, const ExtractionConfig& config) {
  CERES_CHECK(pages.size() == page_indices.size());
  CERES_CHECK(model->features.frozen());
  std::vector<Extraction> out;

  for (size_t p = 0; p < pages.size(); ++p) {
    if (config.deadline.expired()) break;
    const DomDocument& doc = *pages[p];
    const PageIndex page = page_indices[p];
    std::vector<NodeId> fields = doc.TextFields();
    if (fields.empty()) continue;

    // Score all fields once.
    std::vector<std::vector<double>> probabilities(fields.size());
    for (size_t f = 0; f < fields.size(); ++f) {
      SparseVector features =
          featurizer.Extract(doc, fields[f], &model->features);
      probabilities[f] = model->model.PredictProbabilities(features);
    }

    // Topic-name node: the field with the highest NAME probability.
    size_t name_field = 0;
    double name_prob = -1;
    for (size_t f = 0; f < fields.size(); ++f) {
      double prob = probabilities[f][ClassMap::kNameClass];
      if (prob > name_prob) {
        name_prob = prob;
        name_field = f;
      }
    }
    if (name_prob < config.name_threshold) continue;
    const std::string& subject = doc.node(fields[name_field]).text;
    out.push_back(Extraction{page, fields[name_field], kNamePredicate,
                             subject, subject, name_prob});

    for (size_t f = 0; f < fields.size(); ++f) {
      if (f == name_field) continue;
      const std::vector<double>& probs = probabilities[f];
      auto it = std::max_element(probs.begin(), probs.end());
      int32_t cls = static_cast<int32_t>(it - probs.begin());
      if (cls == ClassMap::kOtherClass || cls == ClassMap::kNameClass) {
        continue;
      }
      if (*it < config.confidence_threshold) continue;
      out.push_back(Extraction{page, fields[f],
                               model->classes.PredicateOf(cls), subject,
                               doc.node(fields[f]).text, *it});
    }
  }
  return out;
}

}  // namespace ceres
