#include "util/string_pool.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace ceres::util {
namespace {

TEST(StringPoolTest, InternReturnsStableEqualContent) {
  StringPool& pool = StringPool::Global();
  std::string original = "string-pool-test-alpha";
  std::string_view a = pool.Intern(original);
  EXPECT_EQ(a, original);
  original[0] = 'X';  // The pooled view must not alias the input buffer.
  EXPECT_EQ(a, "string-pool-test-alpha");
}

TEST(StringPoolTest, SameContentSamePointer) {
  StringPool& pool = StringPool::Global();
  std::string first = "string-pool-test-beta";
  std::string second = "string-pool-test-";
  second += "beta";  // Same content, different buffer.
  std::string_view a = pool.Intern(first);
  std::string_view b = pool.Intern(second);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.size(), b.size());
}

TEST(StringPoolTest, EmptyStringHasNonNullData) {
  std::string_view v = StringPool::Global().Intern("");
  EXPECT_NE(v.data(), nullptr);
  EXPECT_EQ(v.size(), 0u);
}

TEST(StringPoolTest, ManyDistinctStringsSurviveGrowth) {
  StringPool& pool = StringPool::Global();
  // Enough entries to force several table growths and chunk spills.
  std::vector<std::string_view> views;
  for (int i = 0; i < 5000; ++i) {
    views.push_back(pool.Intern("string-pool-growth-" + std::to_string(i)));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(views[static_cast<size_t>(i)],
              "string-pool-growth-" + std::to_string(i));
    // Re-interning returns the same pointer even after growth.
    std::string_view again =
        pool.Intern("string-pool-growth-" + std::to_string(i));
    EXPECT_EQ(again.data(), views[static_cast<size_t>(i)].data());
  }
}

TEST(StringPoolTest, ConcurrentInterningConverges) {
  StringPool& pool = StringPool::Global();
  constexpr int kThreads = 4;
  constexpr int kStrings = 400;
  std::vector<std::vector<std::string_view>> results(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool, &results, t] {
      for (int i = 0; i < kStrings; ++i) {
        results[static_cast<size_t>(t)].push_back(
            pool.Intern("string-pool-mt-" + std::to_string(i)));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int i = 0; i < kStrings; ++i) {
    const char* data = results[0][static_cast<size_t>(i)].data();
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(results[static_cast<size_t>(t)][static_cast<size_t>(i)].data(),
                data);
    }
  }
}

}  // namespace
}  // namespace ceres::util
