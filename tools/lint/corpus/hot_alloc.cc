// Corpus: allocation churn inside a per-node loop (the test lints this
// content under a src/dom/ path). Exactly one hot-alloc violation — the
// string-keyed map constructed inside the loop body; the hoisted map, the
// static table, the reference binding, and the out-of-loop construction
// are all compliant shapes the rule must not confuse with per-iteration
// churn. Never compiled — linted by tests/lint/ceres_lint_test.cc.

#include <map>
#include <string>
#include <vector>

namespace ceres {

struct Node {
  std::string tag;
};

int CountTags(const std::vector<Node>& nodes,
              std::map<std::string, int>& reusable) {
  std::map<std::string, int> hoisted;  // constructed once, outside the loop
  int total = 0;
  for (const Node& node : nodes) {
    std::map<std::string, int> per_node;  // BAD: constructed per iteration
    static const std::map<std::string, int> kWeights = {{"div", 2}};
    std::map<std::string, int>& bound = reusable;  // reference, no build
    per_node[node.tag] = 1;
    hoisted[node.tag] += 1;
    auto it = kWeights.find(node.tag);
    if (it != kWeights.end()) total += it->second;
    total += static_cast<int>(bound.size() + per_node.size());
  }
  return total;
}

}  // namespace ceres
