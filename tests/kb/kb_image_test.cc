// Round-trip and corruption tests for the out-of-core KB image format:
// every malformed input must come back as a typed kDataLoss status, never
// a crash or a silently wrong KB.

#include "kb/kb_image.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "robustness/fault_injector.h"
#include "util/random.h"

namespace ceres {
namespace {

Ontology MakeOntology() {
  Ontology ontology;
  TypeId film = ontology.AddEntityType("film");
  TypeId person = ontology.AddEntityType("person");
  ontology.AddPredicate("directedBy", film, person, false);
  ontology.AddPredicate("writtenBy", film, person, true);
  return ontology;
}

KnowledgeBase MakeFrozenKb() {
  KnowledgeBase kb(MakeOntology());
  TypeId film = *kb.ontology().TypeByName("film");
  TypeId person = *kb.ontology().TypeByName("person");
  PredicateId directed = *kb.ontology().PredicateByName("directedBy");
  PredicateId wrote = *kb.ontology().PredicateByName("writtenBy");
  EntityId do_the_right_thing = kb.AddEntity(film, "Do the Right Thing");
  EntityId crooklyn = kb.AddEntity(film, "Crooklyn");
  EntityId lee = kb.AddEntity(person, "Spike Lee");
  kb.AddAlias(lee, "S. Lee");
  kb.AddTriple(do_the_right_thing, directed, lee);
  kb.AddTriple(do_the_right_thing, wrote, lee);
  kb.AddTriple(crooklyn, directed, lee);
  kb.Freeze();
  return kb;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/kb_image_" + name;
}

void WriteBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(KbImageTest, SaveThenOpenRoundTrips) {
  KnowledgeBase kb = MakeFrozenKb();
  const std::string path = TempPath("roundtrip.kbi");
  ASSERT_TRUE(kb.SaveImage(path).ok());

  KnowledgeBase::OpenOptions options;
  options.verify_checksum = true;
  Result<KnowledgeBase> mapped = KnowledgeBase::OpenImage(path, options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->mapped());
  EXPECT_TRUE(mapped->frozen());
  EXPECT_FALSE(kb.mapped());

  // The mapped bytes are the heap-frozen bytes.
  std::span<const char> a = kb.image_bytes();
  std::span<const char> b = mapped->image_bytes();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::string_view(a.data(), a.size()),
            std::string_view(b.data(), b.size()));

  EXPECT_EQ(mapped->num_entities(), kb.num_entities());
  EXPECT_EQ(mapped->num_triples(), kb.num_triples());
  EXPECT_EQ(mapped->ontology().num_types(), 2);
  EXPECT_EQ(mapped->ontology().num_predicates(), 2);
  EXPECT_EQ(mapped->entity(2).name, "Spike Lee");
  ASSERT_EQ(mapped->entity(2).aliases.size(), 1u);
  EXPECT_EQ(mapped->entity(2).aliases[0], "S. Lee");
  std::remove(path.c_str());
}

TEST(KbImageTest, OpenMissingFileIsNotFound) {
  Result<KnowledgeBase> kb =
      KnowledgeBase::OpenImage(TempPath("does_not_exist.kbi"));
  ASSERT_FALSE(kb.ok());
  EXPECT_EQ(kb.status().code(), StatusCode::kNotFound);
}

TEST(KbImageTest, ShortFileIsDataLoss) {
  const std::string path = TempPath("short.kbi");
  WriteBytes(path, "CERESKB1 but far too short");
  Result<KnowledgeBase> kb = KnowledgeBase::OpenImage(path);
  ASSERT_FALSE(kb.ok());
  EXPECT_EQ(kb.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(KbImageTest, BadMagicIsDataLoss) {
  KnowledgeBase kb = MakeFrozenKb();
  std::span<const char> image = kb.image_bytes();
  std::string bytes(image.data(), image.size());
  bytes[0] = 'X';
  const std::string path = TempPath("bad_magic.kbi");
  WriteBytes(path, bytes);
  Result<KnowledgeBase> reopened = KnowledgeBase::OpenImage(path);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(KbImageTest, HeaderTamperingIsDataLoss) {
  // Any header edit (here: the version field) breaks the header checksum.
  KnowledgeBase kb = MakeFrozenKb();
  std::span<const char> image = kb.image_bytes();
  std::string bytes(image.data(), image.size());
  bytes[8] = static_cast<char>(bytes[8] + 1);  // version lives after magic
  const std::string path = TempPath("bad_version.kbi");
  WriteBytes(path, bytes);
  Result<KnowledgeBase> reopened = KnowledgeBase::OpenImage(path);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(KbImageTest, PayloadGarbleIsCaughtByChecksumVerification) {
  // Flip one payload byte: the structural checks still pass (the header is
  // intact), so a plain open succeeds — but verify_checksum catches it.
  KnowledgeBase kb = MakeFrozenKb();
  std::span<const char> image = kb.image_bytes();
  std::string bytes(image.data(), image.size());
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x5a);
  const std::string path = TempPath("garbled_payload.kbi");
  WriteBytes(path, bytes);

  KnowledgeBase::OpenOptions verify;
  verify.verify_checksum = true;
  Result<KnowledgeBase> checked = KnowledgeBase::OpenImage(path, verify);
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(KbImageTest, InjectedFaultsNeverCrashAndNeverPassVerification) {
  // Drive the chaos harness's byte-level faults over the image and require
  // a typed error from the verifying open in every case: truncation breaks
  // the file-size check, garbling breaks a checksum.
  KnowledgeBase kb = MakeFrozenKb();
  std::span<const char> image = kb.image_bytes();
  const std::string_view original(image.data(), image.size());

  FaultInjectionConfig config;
  config.garble_byte_fraction = 0.05;
  KnowledgeBase::OpenOptions verify;
  verify.verify_checksum = true;
  for (FaultType fault : {FaultType::kTruncate, FaultType::kGarble}) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      Rng rng(seed);
      std::string corrupted = CorruptHtml(original, fault, config, &rng);
      if (corrupted == original) continue;  // fault landed on no byte
      const std::string path = TempPath("chaos.kbi");
      WriteBytes(path, corrupted);
      Result<KnowledgeBase> reopened = KnowledgeBase::OpenImage(path, verify);
      ASSERT_FALSE(reopened.ok())
          << FaultTypeName(fault) << " seed " << seed;
      EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss)
          << reopened.status().ToString();
      std::remove(path.c_str());
    }
  }
}

TEST(KbImageTest, FromBufferRejectsEmptyAndValidatesRefs) {
  Result<KbImage> empty = KbImage::FromBuffer({});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kDataLoss);

  KnowledgeBase kb = MakeFrozenKb();
  std::span<const char> image = kb.image_bytes();
  Result<KbImage> good = KbImage::FromBuffer(
      std::vector<char>(image.begin(), image.end()), /*verify_payload=*/true);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_TRUE(good->VerifyRefs().ok());
}

}  // namespace
}  // namespace ceres
