#ifndef CERES_TEXT_FUZZY_MATCHER_H_
#define CERES_TEXT_FUZZY_MATCHER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ceres {

/// Dictionary from surface strings to the ids registered under them, with
/// fuzzy lookup: two strings match when their normalizations (NormalizeText)
/// agree, and a text field with a trailing year token ("Selma (2014)") also
/// matches the year-free name. This is the string-matching process the paper
/// adopts from Gulhane et al. [18] for both topic identification and relation
/// annotation.
///
/// The same id may be registered under several names (aliases); the same
/// name may map to many ids (ambiguity, e.g. "Pilot" as a TV episode title).
class FuzzyMatcher {
 public:
  FuzzyMatcher() = default;

  /// Registers `id` under surface string `name`. Duplicate (name, id) pairs
  /// are collapsed.
  void Add(std::string_view name, int64_t id);

  /// All ids whose registered names fuzzily match `text`. Order is the
  /// registration order; no duplicates.
  std::vector<int64_t> Match(std::string_view text) const;

  /// True if any id is registered under a name matching `text`.
  bool Matches(std::string_view text) const;

  /// Number of distinct normalized keys in the dictionary.
  size_t KeyCount() const { return index_.size(); }

 private:
  const std::vector<int64_t>* Lookup(const std::string& normalized) const;

  std::unordered_map<std::string, std::vector<int64_t>> index_;
};

/// Strips one trailing 4-digit-year token from a normalized string:
/// "selma 2014" -> "selma". Returns the input unchanged when there is no
/// trailing year or nothing would remain.
std::string StripTrailingYear(std::string_view normalized);

}  // namespace ceres

#endif  // CERES_TEXT_FUZZY_MATCHER_H_
