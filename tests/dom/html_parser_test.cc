#include "dom/html_parser.h"

#include <gtest/gtest.h>

namespace ceres {
namespace {

// Finds the first node with the given tag, depth-first.
NodeId FindTag(const DomDocument& doc, const std::string& tag) {
  for (NodeId id = 0; id < doc.size(); ++id) {
    if (doc.node(id).tag == tag) return id;
  }
  return kInvalidNode;
}

TEST(HtmlParserTest, SimpleDocument) {
  Result<DomDocument> doc =
      ParseHtml("<html><body><div>Hello</div></body></html>");
  ASSERT_TRUE(doc.ok());
  NodeId div = FindTag(*doc, "div");
  ASSERT_NE(div, kInvalidNode);
  EXPECT_EQ(doc->node(div).text, "Hello");
  EXPECT_EQ(doc->node(doc->root()).tag, "html");
}

TEST(HtmlParserTest, AttributesParsed) {
  Result<DomDocument> doc = ParseHtml(
      "<body><div class=\"main big\" id=x data-k='v'>t</div></body>");
  ASSERT_TRUE(doc.ok());
  NodeId div = FindTag(*doc, "div");
  EXPECT_EQ(doc->Attribute(div, "class"), "main big");
  EXPECT_EQ(doc->Attribute(div, "id"), "x");
  EXPECT_EQ(doc->Attribute(div, "data-k"), "v");
  EXPECT_EQ(doc->Attribute(div, "missing"), "");
}

TEST(HtmlParserTest, SiblingIndicesCountSameTagOnly) {
  Result<DomDocument> doc =
      ParseHtml("<body><p>a</p><div>b</div><p>c</p></body>");
  ASSERT_TRUE(doc.ok());
  NodeId body = FindTag(*doc, "body");
  const std::vector<NodeId> children(doc->children(body).begin(),
                                     doc->children(body).end());
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(doc->node(children[0]).sibling_index, 1);  // p[1]
  EXPECT_EQ(doc->node(children[1]).sibling_index, 1);  // div[1]
  EXPECT_EQ(doc->node(children[2]).sibling_index, 2);  // p[2]
}

TEST(HtmlParserTest, UnclosedListItemsAutoClose) {
  Result<DomDocument> doc =
      ParseHtml("<body><ul><li>one<li>two<li>three</ul></body>");
  ASSERT_TRUE(doc.ok());
  NodeId ul = FindTag(*doc, "ul");
  EXPECT_EQ(doc->children(ul).size(), 3u);
}

TEST(HtmlParserTest, TableCellsAutoClose) {
  Result<DomDocument> doc = ParseHtml(
      "<body><table><tr><td>a<td>b<tr><td>c</table></body>");
  ASSERT_TRUE(doc.ok());
  NodeId table = FindTag(*doc, "table");
  ASSERT_EQ(doc->children(table).size(), 2u);  // Two rows.
  EXPECT_EQ(doc->children(doc->node(table).first_child).size(), 2u);
}

TEST(HtmlParserTest, VoidElementsTakeNoChildren) {
  Result<DomDocument> doc =
      ParseHtml("<body><br><img src=\"x.png\"><span>after</span></body>");
  ASSERT_TRUE(doc.ok());
  NodeId br = FindTag(*doc, "br");
  EXPECT_TRUE(doc->children(br).empty());
  NodeId body = FindTag(*doc, "body");
  EXPECT_EQ(doc->children(body).size(), 3u);
}

TEST(HtmlParserTest, StrayCloseTagIgnored) {
  Result<DomDocument> doc =
      ParseHtml("<body><div>x</div></span><p>y</p></body>");
  ASSERT_TRUE(doc.ok());
  NodeId p = FindTag(*doc, "p");
  ASSERT_NE(p, kInvalidNode);
  EXPECT_EQ(doc->node(doc->node(p).parent).tag, "body");
}

TEST(HtmlParserTest, CommentsAndDoctypeSkipped) {
  Result<DomDocument> doc = ParseHtml(
      "<!DOCTYPE html><!-- a comment --><body><!-- x -->text</body>");
  ASSERT_TRUE(doc.ok());
  NodeId body = FindTag(*doc, "body");
  EXPECT_EQ(doc->node(body).text, "text");
}

TEST(HtmlParserTest, ScriptContentDiscarded) {
  Result<DomDocument> doc = ParseHtml(
      "<body><script>var x = '<div>not a div</div>';</script><p>t</p>"
      "</body>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(FindTag(*doc, "div"), kInvalidNode);
  NodeId script = FindTag(*doc, "script");
  EXPECT_TRUE(doc->node(script).text.empty());
  EXPECT_NE(FindTag(*doc, "p"), kInvalidNode);
}

TEST(HtmlParserTest, EntitiesDecoded) {
  Result<DomDocument> doc =
      ParseHtml("<body><div>Tom &amp; Jerry &lt;3 &#65;&#x42;</div></body>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->node(FindTag(*doc, "div")).text, "Tom & Jerry <3 AB");
}

TEST(HtmlParserTest, WhitespaceCollapsedInText) {
  Result<DomDocument> doc =
      ParseHtml("<body><div>  a \n\t b  </div></body>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->node(FindTag(*doc, "div")).text, "a b");
}

TEST(HtmlParserTest, SelfClosingTag) {
  Result<DomDocument> doc = ParseHtml("<body><div/><span>s</span></body>");
  ASSERT_TRUE(doc.ok());
  NodeId span = FindTag(*doc, "span");
  EXPECT_EQ(doc->node(doc->node(span).parent).tag, "body");
}

TEST(HtmlParserTest, UnclosedElementsClosedAtEof) {
  Result<DomDocument> doc = ParseHtml("<body><div><span>deep");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->node(FindTag(*doc, "span")).text, "deep");
}

TEST(HtmlParserTest, ExplicitHtmlTagMergesIntoRoot) {
  Result<DomDocument> doc =
      ParseHtml("<html lang=\"en\"><body>x</body></html>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Attribute(doc->root(), "lang"), "en");
  // Only one html element.
  int html_count = 0;
  for (NodeId id = 0; id < doc->size(); ++id) {
    if (doc->node(id).tag == "html") ++html_count;
  }
  EXPECT_EQ(html_count, 1);
}

TEST(HtmlParserTest, MaxNodesEnforced) {
  std::string huge;
  for (int i = 0; i < 100; ++i) huge += "<div>";
  HtmlParseOptions options;
  options.max_nodes = 50;
  Result<DomDocument> doc = ParseHtml(huge, options);
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
}

TEST(HtmlParserTest, EmptyInputGivesBareRoot) {
  Result<DomDocument> doc = ParseHtml("");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->size(), 1);
}

TEST(DecodeEntitiesTest, UnknownEntityLeftAlone) {
  EXPECT_EQ(DecodeEntities("a &bogus; b"), "a &bogus; b");
  EXPECT_EQ(DecodeEntities("a & b"), "a & b");
  EXPECT_EQ(DecodeEntities("&nbsp;x"), " x");
}

}  // namespace
}  // namespace ceres
