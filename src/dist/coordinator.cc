#include "dist/coordinator.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "dist/checkpoint.h"
#include "dist/worker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace ceres::dist {

namespace {

/// Cached instrument pointers (see obs/metrics.h: cache once, record
/// lock-free). Recording is gated on obs::Enabled() at the call sites.
struct DistMetrics {
  obs::Counter* retries;
  obs::Counter* worker_restarts;
  obs::Counter* shards_quarantined;
  obs::Counter* shards_completed;
  obs::Counter* checkpoint_bytes;
  obs::Counter* checkpoint_loads;
  obs::Histogram* shard_latency_us;

  static const DistMetrics& Get() {
    static const DistMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Default();
      DistMetrics m;
      m.retries = registry.GetCounter("ceres_dist_shard_retries_total");
      m.worker_restarts =
          registry.GetCounter("ceres_dist_worker_restarts_total");
      m.shards_quarantined =
          registry.GetCounter("ceres_dist_shards_quarantined_total");
      m.shards_completed =
          registry.GetCounter("ceres_dist_shards_completed_total");
      m.checkpoint_bytes =
          registry.GetCounter("ceres_dist_checkpoint_bytes_total");
      m.checkpoint_loads =
          registry.GetCounter("ceres_dist_checkpoint_loads_total");
      m.shard_latency_us =
          registry.GetHistogram("ceres_dist_shard_latency_us");
      return m;
    }();
    return metrics;
  }
};

/// Ignores SIGPIPE for the scope of a run (a dead worker's pipe must
/// surface as an EPIPE Status, not kill the coordinator) and restores the
/// previous disposition after. Forked workers inherit the ignore, which
/// their frame writes rely on too.
class SigPipeGuard {
 public:
  SigPipeGuard() {
    struct sigaction ignore;
    std::memset(&ignore, 0, sizeof(ignore));
    ignore.sa_handler = SIG_IGN;
    saved_ok_ = ::sigaction(SIGPIPE, &ignore, &saved_) == 0;
  }
  ~SigPipeGuard() {
    if (saved_ok_) (void)::sigaction(SIGPIPE, &saved_, nullptr);
  }

 private:
  struct sigaction saved_ {};
  bool saved_ok_ = false;
};

enum class SlotState { kPending, kRunning, kDone, kQuarantined };

struct ShardSlot {
  int32_t id = 0;
  /// Indices into the corpus, ascending (= corpus order within the shard).
  std::vector<size_t> corpus_indices;
  SlotState state = SlotState::kPending;
  /// Attempts started (1-based once dispatched).
  int attempts = 0;
  /// Earliest re-dispatch time while backing off.
  obs::TimePoint eligible_at{};
  bool has_backoff = false;
  obs::TimePoint started{};
  Status last_error;
  ShardResult result;
  bool from_checkpoint = false;
};

struct WorkerProc {
  pid_t pid = -1;
  int to_fd = -1;
  int from_fd = -1;
  FrameBuffer inbound;
  /// Currently assigned shard, -1 when idle.
  int32_t shard = -1;
  obs::TimePoint last_seen{};
  bool alive = false;
};

class Coordinator {
 public:
  Coordinator(const std::vector<ShardSite>& corpus, const KnowledgeBase& kb,
              const Ontology& ontology, const DistConfig& config)
      : corpus_(corpus), kb_(kb), ontology_(ontology), config_(config) {}

  Result<DistResult> Run() {
    CERES_RETURN_IF_ERROR(Validate());
    BuildShards();
    ResumeFromCheckpoints();
    if (AllSettled()) return Merge();
    SigPipeGuard guard;
    Status loop = EventLoop();
    Shutdown();
    if (!loop.ok()) return loop;
    return Merge();
  }

 private:
  // -- setup ---------------------------------------------------------------

  Status Validate() {
    if (config_.num_workers < 1) {
      return Status::InvalidArgument("num_workers must be >= 1");
    }
    if (config_.max_attempts_per_shard < 1) {
      return Status::InvalidArgument("max_attempts_per_shard must be >= 1");
    }
    if (config_.num_shards < 0) {
      return Status::InvalidArgument("num_shards must be >= 0");
    }
    std::unordered_set<std::string_view> names;
    for (const ShardSite& site : corpus_) {
      if (!names.insert(site.site).second) {
        return Status::InvalidArgument(
            StrCat("duplicate site in corpus: ", site.site));
      }
    }
    if (!config_.checkpoint_dir.empty()) {
      if (::mkdir(config_.checkpoint_dir.c_str(), 0755) != 0 &&
          errno != EEXIST) {
        return Status::Internal(StrCat("cannot create checkpoint dir ",
                                       config_.checkpoint_dir, ": ",
                                       std::strerror(errno)));
      }
    }
    return Status::Ok();
  }

  void BuildShards() {
    const int32_t num_shards =
        config_.num_shards > 0 ? config_.num_shards
                               : static_cast<int32_t>(corpus_.size());
    slots_.resize(static_cast<size_t>(std::max(num_shards, 0)));
    for (size_t s = 0; s < slots_.size(); ++s) {
      slots_[s].id = static_cast<int32_t>(s);
    }
    for (size_t i = 0; i < corpus_.size(); ++i) {
      const int32_t shard = ShardOfSite(corpus_[i].site, num_shards);
      slots_[static_cast<size_t>(shard)].corpus_indices.push_back(i);
    }
    // A shard with no sites has nothing to run (or checkpoint).
    for (ShardSlot& slot : slots_) {
      if (slot.corpus_indices.empty()) slot.state = SlotState::kDone;
    }
  }

  void ResumeFromCheckpoints() {
    if (config_.checkpoint_dir.empty()) return;
    for (ShardSlot& slot : slots_) {
      if (slot.state != SlotState::kPending) continue;
      Result<ShardResult> loaded =
          LoadShardCheckpoint(config_.checkpoint_dir, slot.id);
      if (!loaded.ok()) {
        // Missing = first run of this shard; corrupt = treated as absent
        // but surfaced as an attempt-0 failure so resume tests can see
        // the validation fire.
        if (loaded.status().code() != StatusCode::kNotFound) {
          diagnostics_.failures.push_back(
              ShardFailure{slot.id, 0, loaded.status()});
        }
        continue;
      }
      if (!CheckpointMatchesShard(*loaded, slot)) {
        diagnostics_.failures.push_back(ShardFailure{
            slot.id, 0,
            Status::Internal(StrCat("checkpoint for shard ", slot.id,
                                    " does not match the corpus sharding; "
                                    "re-running"))});
        continue;
      }
      slot.result = std::move(loaded.value());
      slot.state = SlotState::kDone;
      slot.from_checkpoint = true;
      ++diagnostics_.shards_completed;
      ++diagnostics_.shards_from_checkpoint;
      if (obs::Enabled()) {
        DistMetrics::Get().shards_completed->Increment();
        DistMetrics::Get().checkpoint_loads->Increment();
      }
    }
  }

  bool CheckpointMatchesShard(const ShardResult& result,
                              const ShardSlot& slot) const {
    if (result.sites.size() != slot.corpus_indices.size()) return false;
    for (size_t i = 0; i < result.sites.size(); ++i) {
      const ShardSite& expected = corpus_[slot.corpus_indices[i]];
      if (result.sites[i].site != expected.site) return false;
      if (result.sites[i].pages !=
          static_cast<int64_t>(expected.pages.size())) {
        return false;
      }
    }
    return true;
  }

  // -- worker lifecycle ----------------------------------------------------

  Status Spawn() {
    int to_pipe[2] = {-1, -1};
    int from_pipe[2] = {-1, -1};
    if (::pipe(to_pipe) != 0) {
      return Status::ResourceExhausted(
          StrCat("pipe failed: ", std::strerror(errno)));
    }
    if (::pipe(from_pipe) != 0) {
      const int err = errno;
      (void)::close(to_pipe[0]);
      (void)::close(to_pipe[1]);
      return Status::ResourceExhausted(
          StrCat("pipe failed: ", std::strerror(err)));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = errno;
      (void)::close(to_pipe[0]);
      (void)::close(to_pipe[1]);
      (void)::close(from_pipe[0]);
      (void)::close(from_pipe[1]);
      return Status::ResourceExhausted(
          StrCat("fork failed: ", std::strerror(err)));
    }
    if (pid == 0) {
      // Child. Close the coordinator ends and every other worker's pipes —
      // an inherited write end would keep a sibling's pipe from ever
      // reporting EOF to the coordinator.
      (void)::close(to_pipe[1]);
      (void)::close(from_pipe[0]);
      for (const WorkerProc& other : workers_) {
        if (other.to_fd >= 0) (void)::close(other.to_fd);
        if (other.from_fd >= 0) (void)::close(other.from_fd);
      }
      if (!config_.worker_command.empty()) {
        (void)::dup2(to_pipe[0], STDIN_FILENO);
        (void)::dup2(from_pipe[1], STDOUT_FILENO);
        (void)::close(to_pipe[0]);
        (void)::close(from_pipe[1]);
        std::vector<char*> argv;
        argv.reserve(config_.worker_command.size() + 1);
        for (const std::string& arg : config_.worker_command) {
          argv.push_back(const_cast<char*>(arg.c_str()));
        }
        argv.push_back(nullptr);
        (void)::execvp(argv[0], argv.data());
        _exit(127);
      }
      Status status = RunWorkerLoop(to_pipe[0], from_pipe[1], kb_);
      _exit(status.ok() ? 0 : 1);
    }
    // Parent.
    (void)::close(to_pipe[0]);
    (void)::close(from_pipe[1]);
    const int flags = ::fcntl(from_pipe[0], F_GETFL, 0);
    (void)::fcntl(from_pipe[0], F_SETFL, flags | O_NONBLOCK);
    WorkerProc worker;
    worker.pid = pid;
    worker.to_fd = to_pipe[1];
    worker.from_fd = from_pipe[0];
    worker.alive = true;
    worker.last_seen = obs::MonotonicNow();
    workers_.push_back(std::move(worker));
    return Status::Ok();
  }

  /// Kills (if needed) and reaps one worker, failing its assigned shard.
  /// Only unexpected deaths come through here (EOF, corrupt stream,
  /// watchdog, dispatch failure — never clean shutdown), so this is the
  /// exact place to count lost-and-replaced workers: a surviving idle
  /// worker may absorb the retry without a respawn, which would undercount
  /// if restarts were tallied at Spawn time.
  void RetireWorker(WorkerProc* worker, const Status& reason) {
    if (!worker->alive) return;
    ++diagnostics_.worker_restarts;
    if (obs::Enabled()) DistMetrics::Get().worker_restarts->Increment();
    (void)::kill(worker->pid, SIGKILL);
    int wait_status = 0;
    (void)::waitpid(worker->pid, &wait_status, 0);
    (void)::close(worker->to_fd);
    (void)::close(worker->from_fd);
    worker->to_fd = -1;
    worker->from_fd = -1;
    worker->alive = false;
    if (worker->shard >= 0) {
      FailShard(worker->shard, reason);
      worker->shard = -1;
    }
  }

  int LiveWorkers() const {
    int live = 0;
    for (const WorkerProc& worker : workers_) {
      if (worker.alive) ++live;
    }
    return live;
  }

  int UnsettledShards() const {
    int unsettled = 0;
    for (const ShardSlot& slot : slots_) {
      if (slot.state == SlotState::kPending ||
          slot.state == SlotState::kRunning) {
        ++unsettled;
      }
    }
    return unsettled;
  }

  bool AllSettled() const { return UnsettledShards() == 0; }

  // -- shard bookkeeping ---------------------------------------------------

  void FailShard(int32_t shard, const Status& reason) {
    ShardSlot& slot = slots_[static_cast<size_t>(shard)];
    diagnostics_.failures.push_back(
        ShardFailure{shard, static_cast<int32_t>(slot.attempts), reason});
    slot.last_error = reason;
    if (slot.attempts >= config_.max_attempts_per_shard) {
      slot.state = SlotState::kQuarantined;
      if (obs::Enabled()) DistMetrics::Get().shards_quarantined->Increment();
      return;
    }
    slot.state = SlotState::kPending;
    auto backoff = config_.retry_backoff_base;
    for (int i = 1; i < slot.attempts && backoff < config_.retry_backoff_max;
         ++i) {
      backoff *= 2;
    }
    backoff = std::min(backoff, config_.retry_backoff_max);
    slot.eligible_at = obs::MonotonicNow() + backoff;
    slot.has_backoff = true;
  }

  void CompleteShard(int32_t shard, ShardResult result) {
    ShardSlot& slot = slots_[static_cast<size_t>(shard)];
    slot.result = std::move(result);
    slot.state = SlotState::kDone;
    ++diagnostics_.shards_completed;
    if (obs::Enabled()) {
      DistMetrics::Get().shards_completed->Increment();
      DistMetrics::Get().shard_latency_us->Record(
          obs::ElapsedMicros(slot.started, obs::MonotonicNow()).count());
    }
    if (config_.checkpoint_dir.empty()) return;
    int64_t bytes = 0;
    Status saved =
        SaveShardCheckpoint(config_.checkpoint_dir, slot.result, &bytes);
    if (!saved.ok()) {
      // A failed checkpoint write degrades resumability, not this run.
      diagnostics_.failures.push_back(ShardFailure{
          shard, 0, PrependContext(std::move(saved), "checkpoint write")});
      return;
    }
    diagnostics_.checkpoint_bytes += bytes;
    if (obs::Enabled()) {
      DistMetrics::Get().checkpoint_bytes->Increment(bytes);
    }
    if (config_.faults.FaultFor(shard, slot.attempts) ==
        ProcessFaultType::kCorruptCheckpoint) {
      (void)CorruptShardCheckpoint(config_.checkpoint_dir, shard);
    }
  }

  // -- dispatch ------------------------------------------------------------

  ShardSlot* NextEligibleShard(obs::TimePoint now) {
    for (ShardSlot& slot : slots_) {
      if (slot.state != SlotState::kPending) continue;
      if (slot.has_backoff && now < slot.eligible_at) continue;
      return &slot;
    }
    return nullptr;
  }

  void Dispatch(WorkerProc* worker, ShardSlot* slot) {
    const obs::TimePoint now = obs::MonotonicNow();
    ++slot->attempts;
    if (slot->attempts > 1) {
      ++diagnostics_.retries;
      if (obs::Enabled()) DistMetrics::Get().retries->Increment();
    }
    ShardTask task;
    task.shard = slot->id;
    task.attempt = slot->attempts;
    const ProcessFaultType fault =
        config_.faults.FaultFor(slot->id, slot->attempts);
    // The checkpoint fault is the coordinator's to act (CompleteShard);
    // everything else is carried to the worker.
    task.fault = fault == ProcessFaultType::kCorruptCheckpoint
                     ? ProcessFaultType::kNone
                     : fault;
    task.options = config_.pipeline;
    task.sites.reserve(slot->corpus_indices.size());
    for (size_t index : slot->corpus_indices) {
      task.sites.push_back(corpus_[index]);
    }
    slot->state = SlotState::kRunning;
    slot->started = now;
    slot->has_backoff = false;
    worker->shard = slot->id;
    worker->last_seen = now;
    // Blocking write is safe: the worker is idle, parked in ReadFrame, so
    // it drains the pipe as fast as we fill it.
    Status written = WriteFrame(worker->to_fd, FrameType::kAssignShard,
                                EncodeShardTask(task));
    if (!written.ok()) {
      RetireWorker(worker, PrependContext(std::move(written),
                                          "worker died at dispatch"));
    }
  }

  // -- the event loop ------------------------------------------------------

  Status EventLoop() {
    while (!AllSettled()) {
      if (config_.deadline.expired()) {
        diagnostics_.deadline_expired = true;
        return Status::Ok();
      }
      // Keep the pool at strength and hand work to every idle worker.
      const int target = std::min(config_.num_workers, UnsettledShards());
      while (LiveWorkers() < target) {
        CERES_RETURN_IF_ERROR(Spawn());
      }
      const obs::TimePoint now = obs::MonotonicNow();
      for (WorkerProc& worker : workers_) {
        if (!worker.alive || worker.shard >= 0) continue;
        ShardSlot* slot = NextEligibleShard(now);
        if (slot == nullptr) break;
        Dispatch(&worker, slot);
      }

      PollWorkers();
      Watchdog();
    }
    return Status::Ok();
  }

  void PollWorkers() {
    std::vector<pollfd> fds;
    std::vector<WorkerProc*> polled;
    for (WorkerProc& worker : workers_) {
      if (!worker.alive) continue;
      fds.push_back(pollfd{worker.from_fd, POLLIN, 0});
      polled.push_back(&worker);
    }
    if (fds.empty()) return;
    // Short slices keep the watchdog, backoff gates, and run deadline
    // responsive without any sleeping in the loop.
    const int timeout_ms = 20;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready <= 0) return;
    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      DrainWorker(polled[i]);
    }
  }

  void DrainWorker(WorkerProc* worker) {
    bool saw_eof = false;
    char buffer[65536];
    for (;;) {
      const ssize_t r = ::read(worker->from_fd, buffer, sizeof(buffer));
      if (r > 0) {
        worker->inbound.Append(buffer, static_cast<size_t>(r));
        continue;
      }
      if (r == 0) {
        saw_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      saw_eof = true;  // read error: treat like a dead pipe
      break;
    }
    // Deliver complete frames before acting on EOF — a worker may write
    // its result and exit in the same scheduling quantum.
    for (;;) {
      Frame frame;
      Status next = worker->inbound.Next(&frame);
      if (next.code() == StatusCode::kNotFound) break;
      if (!next.ok()) {
        RetireWorker(worker,
                     PrependContext(std::move(next), "worker stream"));
        return;
      }
      HandleFrame(worker, std::move(frame));
      if (!worker->alive) return;
    }
    if (saw_eof) {
      Status reason = worker->inbound.pending_bytes() > 0
                          ? Status::Internal(StrCat(
                                "worker exited mid-frame with ",
                                worker->inbound.pending_bytes(),
                                " bytes pending (truncated result)"))
                          : Status::Internal("worker exited unexpectedly");
      RetireWorker(worker, reason);
    }
  }

  void HandleFrame(WorkerProc* worker, Frame frame) {
    worker->last_seen = obs::MonotonicNow();
    switch (frame.type) {
      case FrameType::kHeartbeat:
      case FrameType::kProgress:
        // Liveness is the payload; the decoded contents are advisory.
        return;
      case FrameType::kWorkerError: {
        if (worker->shard >= 0) {
          const int32_t shard = worker->shard;
          worker->shard = -1;  // the worker stays alive and idle
          FailShard(shard, Status::Internal(frame.payload));
        }
        return;
      }
      case FrameType::kResult: {
        Result<ShardResult> result = DecodeShardResult(frame.payload);
        if (!result.ok()) {
          RetireWorker(worker, PrependContext(result.status(),
                                              "decoding shard result"));
          return;
        }
        if (result->shard != worker->shard) {
          RetireWorker(worker,
                       Status::Internal(StrCat(
                           "worker answered shard ", result->shard,
                           " while assigned ", worker->shard)));
          return;
        }
        const int32_t shard = worker->shard;
        worker->shard = -1;
        CompleteShard(shard, std::move(result.value()));
        return;
      }
      case FrameType::kAssignShard:
      case FrameType::kShutdown:
        RetireWorker(worker, Status::Internal(
                                 StrCat("unexpected ",
                                        FrameTypeName(frame.type),
                                        " frame from worker")));
        return;
    }
  }

  void Watchdog() {
    const obs::TimePoint now = obs::MonotonicNow();
    for (WorkerProc& worker : workers_) {
      if (!worker.alive || worker.shard < 0) continue;
      if (now - worker.last_seen < config_.worker_liveness_timeout) continue;
      RetireWorker(
          &worker,
          Status::DeadlineExceeded(StrCat(
              "watchdog: worker ", worker.pid, " silent for ",
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  now - worker.last_seen)
                  .count(),
              " ms on shard ", worker.shard)));
    }
  }

  void Shutdown() {
    for (WorkerProc& worker : workers_) {
      if (!worker.alive) continue;
      (void)WriteFrame(worker.to_fd, FrameType::kShutdown, "");
      (void)::close(worker.to_fd);
      worker.to_fd = -1;
    }
    // Grace period for clean exits; poll doubles as the wait.
    const obs::TimePoint grace_end =
        obs::MonotonicNow() + std::chrono::milliseconds(500);
    while (obs::MonotonicNow() < grace_end) {
      bool any_alive = false;
      for (WorkerProc& worker : workers_) {
        if (!worker.alive) continue;
        int wait_status = 0;
        const pid_t reaped =
            ::waitpid(worker.pid, &wait_status, WNOHANG);
        if (reaped == worker.pid) {
          (void)::close(worker.from_fd);
          worker.from_fd = -1;
          worker.alive = false;
          worker.shard = -1;
        } else {
          any_alive = true;
        }
      }
      if (!any_alive) break;
      pollfd idle{-1, 0, 0};
      (void)::poll(&idle, 1, 10);  // bounded nap without sleep_for
    }
    for (WorkerProc& worker : workers_) {
      if (!worker.alive) continue;
      (void)::kill(worker.pid, SIGKILL);
      int wait_status = 0;
      (void)::waitpid(worker.pid, &wait_status, 0);
      (void)::close(worker.from_fd);
      worker.from_fd = -1;
      worker.alive = false;
      worker.shard = -1;
    }
  }

  // -- merge ---------------------------------------------------------------

  DistResult Merge() {
    DistResult out;
    std::unordered_map<std::string_view, const SiteResult*> by_site;
    for (ShardSlot& slot : slots_) {
      switch (slot.state) {
        case SlotState::kDone:
          if (!slot.corpus_indices.empty()) {
            for (const SiteResult& site : slot.result.sites) {
              by_site.emplace(site.site, &site);
            }
            out.shards.push_back(slot.result);
          }
          break;
        case SlotState::kQuarantined: {
          QuarantinedShard q;
          q.shard = slot.id;
          q.attempts = static_cast<int32_t>(slot.attempts);
          for (size_t index : slot.corpus_indices) {
            q.sites.push_back(corpus_[index].site);
          }
          q.last_error = slot.last_error;
          diagnostics_.quarantined_shards.push_back(std::move(q));
          break;
        }
        case SlotState::kPending:
        case SlotState::kRunning:
          diagnostics_.unfinished_shards.push_back(slot.id);
          break;
      }
    }
    out.site_extractions.reserve(by_site.size());
    for (const ShardSite& site : corpus_) {
      auto it = by_site.find(site.site);
      if (it == by_site.end()) continue;
      fusion::SiteExtractions extracted;
      extracted.site = it->second->site;
      extracted.extractions = it->second->extractions;
      out.site_extractions.push_back(std::move(extracted));
    }
    fusion::FusionConfig fusion_config = config_.fusion;
    fusion_config.deadline =
        fusion_config.deadline.Earlier(config_.deadline);
    out.fused =
        fusion::FuseExtractions(out.site_extractions, ontology_, fusion_config);
    out.diagnostics = std::move(diagnostics_);
    return out;
  }

  const std::vector<ShardSite>& corpus_;
  const KnowledgeBase& kb_;
  const Ontology& ontology_;
  const DistConfig& config_;
  std::vector<ShardSlot> slots_;
  std::vector<WorkerProc> workers_;
  DistDiagnostics diagnostics_;
};

}  // namespace

int32_t ShardOfSite(std::string_view site, int32_t num_shards) {
  if (num_shards <= 0) return 0;
  return static_cast<int32_t>(Fnv1a64(site) %
                              static_cast<uint64_t>(num_shards));
}

std::string DistDiagnostics::Summary() const {
  std::string out = StrCat("shards: ", shards_completed, " completed (",
                           shards_from_checkpoint, " from checkpoint), ",
                           quarantined_shards.size(), " quarantined, ",
                           unfinished_shards.size(), " unfinished\n");
  out += StrCat("retries: ", retries, ", worker restarts: ", worker_restarts,
                ", checkpoint bytes: ", checkpoint_bytes,
                deadline_expired ? ", run deadline expired\n" : "\n");
  for (const ShardFailure& failure : failures) {
    out += StrCat("  failure: shard ", failure.shard, " attempt ",
                  failure.attempt, ": ", failure.reason.ToString(), "\n");
  }
  for (const QuarantinedShard& q : quarantined_shards) {
    out += StrCat("  quarantined: shard ", q.shard, " after ", q.attempts,
                  " attempts (", q.sites.size(),
                  " sites): ", q.last_error.ToString(), "\n");
  }
  return out;
}

Result<DistResult> RunDistributedExtraction(
    const std::vector<ShardSite>& corpus, const KnowledgeBase& kb,
    const Ontology& ontology, const DistConfig& config) {
  Coordinator coordinator(corpus, kb, ontology, config);
  return coordinator.Run();
}

Result<DistResult> RunSingleProcess(const std::vector<ShardSite>& corpus,
                                    const KnowledgeBase& kb,
                                    const Ontology& ontology,
                                    const DistConfig& config) {
  // Same sharding, same per-site entry point, same merge — no processes.
  const int32_t num_shards = config.num_shards > 0
                                 ? config.num_shards
                                 : static_cast<int32_t>(corpus.size());
  std::vector<std::vector<size_t>> shard_members(
      static_cast<size_t>(std::max(num_shards, 0)));
  for (size_t i = 0; i < corpus.size(); ++i) {
    shard_members[static_cast<size_t>(ShardOfSite(corpus[i].site, num_shards))]
        .push_back(i);
  }
  DistResult out;
  std::unordered_map<std::string_view, const SiteResult*> by_site;
  for (int32_t shard = 0; shard < num_shards; ++shard) {
    const std::vector<size_t>& members =
        shard_members[static_cast<size_t>(shard)];
    if (members.empty()) continue;
    ShardTask task;
    task.shard = shard;
    task.options = config.pipeline;
    for (size_t index : members) task.sites.push_back(corpus[index]);
    CERES_ASSIGN_OR_RETURN(ShardResult result, RunShard(task, kb));
    out.shards.push_back(std::move(result));
    ++out.diagnostics.shards_completed;
  }
  for (const ShardResult& shard : out.shards) {
    for (const SiteResult& site : shard.sites) {
      by_site.emplace(site.site, &site);
    }
  }
  for (const ShardSite& site : corpus) {
    auto it = by_site.find(site.site);
    if (it == by_site.end()) continue;
    fusion::SiteExtractions extracted;
    extracted.site = it->second->site;
    extracted.extractions = it->second->extractions;
    out.site_extractions.push_back(std::move(extracted));
  }
  fusion::FusionConfig fusion_config = config.fusion;
  fusion_config.deadline = fusion_config.deadline.Earlier(config.deadline);
  out.fused =
      fusion::FuseExtractions(out.site_extractions, ontology, fusion_config);
  return out;
}

}  // namespace ceres::dist
