// Bring-your-own-data walkthrough: shows exactly what a downstream user
// supplies to run CERES on their own website — raw HTML strings and a
// seed KB — with no synthetic-corpus machinery involved.

#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "kb/knowledge_base.h"
#include "util/string_util.h"

namespace {

// Stand-in for a crawler: a handful of recipe detail pages sharing one
// template (with a missing field and a varying ingredient count).
std::string RecipePage(const std::string& title, const std::string& chef,
                       const std::vector<std::string>& ingredients,
                       const std::string& time) {
  std::string html = ceres::StrCat(
      "<html><body><div class=page>",
      "<div class=nav><a>Home</a><a>Recipes</a><a>About</a></div>",
      "<h1 class=title>", title, "</h1>",
      "<div class=meta><span class=lbl>Chef:</span><span class=val>", chef,
      "</span></div>");
  if (!time.empty()) {
    html += ceres::StrCat(
        "<div class=meta><span class=lbl>Total time:</span>"
        "<span class=val>",
        time, "</span></div>");
  }
  html += "<div class=sec><h3>Ingredients</h3><ul>";
  for (const std::string& ingredient : ingredients) {
    html += ceres::StrCat("<li>", ingredient, "</li>");
  }
  html += "</ul></div></div></body></html>";
  return html;
}

}  // namespace

int main() {
  using namespace ceres;  // NOLINT(build/namespaces)

  // ---- 1. Declare the ontology and load the seed KB ----------------------
  // In production this comes from your existing knowledge base; only SOME
  // of the site's recipes need to be covered.
  Ontology ontology;
  TypeId recipe = ontology.AddEntityType("recipe");
  TypeId person = ontology.AddEntityType("person");
  TypeId ingredient = ontology.AddEntityType("ingredient");
  TypeId duration = ontology.AddEntityType("duration", /*is_literal=*/true);
  PredicateId by = ontology.AddPredicate("recipe.createdBy.person", recipe,
                                         person, false);
  PredicateId uses = ontology.AddPredicate("recipe.usesIngredient", recipe,
                                           ingredient, true);
  PredicateId takes = ontology.AddPredicate("recipe.totalTime.duration",
                                            recipe, duration, false);

  KnowledgeBase kb(std::move(ontology));
  struct Seed {
    const char* title;
    const char* chef;
    std::vector<const char*> ingredients;
    const char* time;
  };
  const std::vector<Seed> seeds{
      {"Tomato Galette", "Ada Moretti",
       {"Tomatoes", "Puff pastry", "Basil"}, "45 minutes"},
      {"Miso Ramen", "Kenji Abe",
       {"Miso paste", "Noodles", "Scallions", "Eggs"}, "30 minutes"},
      {"Shakshuka", "Ada Moretti", {"Tomatoes", "Eggs", "Cumin"},
       "25 minutes"},
      {"Pea Risotto", "Iris Blom", {"Arborio rice", "Peas", "Parmesan"},
       "40 minutes"},
  };
  std::vector<EntityId> recipe_ids;
  for (const Seed& seed : seeds) {
    EntityId r = kb.AddEntity(recipe, seed.title);
    recipe_ids.push_back(r);
    EntityId chef = kb.AddEntity(person, seed.chef);
    kb.AddTriple(r, by, chef);
    for (const char* name : seed.ingredients) {
      EntityId i = kb.AddEntity(ingredient, name);
      kb.AddTriple(r, uses, i);
    }
    EntityId t = kb.AddEntity(duration, seed.time);
    kb.AddTriple(r, takes, t);
  }
  kb.Freeze();

  // ---- 2. Parse the crawled pages ----------------------------------------
  // Four pages overlap the KB; two are about recipes the KB doesn't know.
  std::vector<std::string> raw_pages{
      RecipePage("Tomato Galette", "Ada Moretti",
                 {"Tomatoes", "Puff pastry", "Basil"}, "45 minutes"),
      RecipePage("Miso Ramen", "Kenji Abe",
                 {"Miso paste", "Noodles", "Scallions", "Eggs"},
                 "30 minutes"),
      RecipePage("Shakshuka", "Ada Moretti", {"Tomatoes", "Eggs", "Cumin"},
                 "25 minutes"),
      RecipePage("Pea Risotto", "Iris Blom",
                 {"Arborio rice", "Peas", "Parmesan"}, ""),
      RecipePage("Charred Leek Tart", "Noor Haddad",
                 {"Leeks", "Shortcrust", "Thyme"}, "50 minutes"),
      RecipePage("Saffron Buns", "Iris Blom",
                 {"Flour", "Saffron", "Butter"}, "90 minutes"),
  };
  std::vector<DomDocument> pages;
  for (const std::string& html : raw_pages) {
    Result<DomDocument> parsed = ParseHtml(html);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    pages.push_back(std::move(parsed).value());
  }

  // ---- 3. Run the pipeline -----------------------------------------------
  PipelineConfig config;
  config.cluster_pages = false;  // One known template.
  config.min_cluster_size = 1;
  config.topic.min_annotations_per_page = 2;
  config.topic.common_string_min_count = 1000;  // Tiny KB: filter off.
  config.training.min_annotated_pages = 2;
  Result<PipelineResult> result = RunPipeline(pages, kb, config);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // ---- 4. Use the triples -------------------------------------------------
  std::printf("%zu pages, %zu annotations, %zu extractions\n\n",
              pages.size(), result->annotations.size(),
              result->extractions.size());
  for (const Extraction& extraction : result->extractions) {
    if (extraction.predicate == kNamePredicate) continue;
    std::printf("(%s, %s, %s)  conf=%.2f%s\n", extraction.subject.c_str(),
                kb.ontology().predicate(extraction.predicate).name.c_str(),
                extraction.object.c_str(), extraction.confidence,
                kb.MatchMentions(extraction.subject).empty()
                    ? "   <-- new entity!"
                    : "");
  }
  return 0;
}
