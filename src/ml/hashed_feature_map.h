#ifndef CERES_ML_HASHED_FEATURE_MAP_H_
#define CERES_ML_HASHED_FEATURE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ceres {

/// Bidirectional dictionary between 64-bit feature ids and dense indices.
///
/// The hashed successor of FeatureMap: features are identified by the
/// Fnv1a64 hash of their legacy string name (see ml/feature_id.h), so the
/// hot path stores two flat arrays — dense index → id, plus an
/// open-addressing probe table of dense indices — instead of a
/// string-keyed unordered_map. Dense indices are assigned in first-occurrence
/// order, which keeps classifier weight layout identical to the string-named
/// path given the same emission order.
///
/// During training, GetOrAdd() grows the vocabulary; before applying a model
/// to unseen pages the map is frozen so unknown features map to -1 and are
/// dropped (the standard train/apply asymmetry of a linear extractor).
///
/// Copyable (classifier ablations snapshot the map) and cheap to move.
class HashedFeatureMap {
 public:
  HashedFeatureMap();

  /// Returns the dense index of `id`, inserting it when unseen and not
  /// frozen. Returns -1 for unseen ids once frozen.
  int32_t GetOrAdd(uint64_t id);

  /// Dense index of `id`, or -1 if absent. Never inserts.
  int32_t Get(uint64_t id) const;

  /// Feature id of dense `index`.
  uint64_t IdAt(int32_t index) const;

  /// Dense index → id, in first-occurrence order.
  const std::vector<uint64_t>& ids() const { return ids_; }

  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }
  int32_t size() const { return static_cast<int32_t>(ids_.size()); }

  /// Heap footprint of the dictionary (ids array + probe table), for model
  /// registry byte accounting.
  size_t MemoryBytes() const {
    return ids_.capacity() * sizeof(uint64_t) +
           table_.capacity() * sizeof(int32_t);
  }

 private:
  // Probe slot for `id`, either holding it already or free (-1). The probe
  // sequence is linear from id & mask; ids are FNV outputs, whose low bits
  // are well mixed.
  size_t SlotFor(uint64_t id) const;
  void Grow();

  std::vector<uint64_t> ids_;     // dense index -> feature id
  std::vector<int32_t> table_;    // open addressing; -1 == empty
  bool frozen_ = false;
};

}  // namespace ceres

#endif  // CERES_ML_HASHED_FEATURE_MAP_H_
