// Table 2 — Common entity types and predicates in the seed KB used to
// distantly supervise the Movie-vertical experiments.
//
// Paper reference (Table 2): Person 7.67M / 15, Film 0.43M / 19,
// TV Series 0.12M / 9, TV Episode 1.09M / 18, from an 85M-triple IMDb
// download. Our KB is a projection of the synthetic movie world; the row
// structure matches, with counts at laptop scale.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace ceres;  // NOLINT(build/namespaces)
  const double scale = synth::EnvScale();
  synth::Corpus corpus = synth::MakeImdbCorpus(scale);
  const KnowledgeBase& kb = corpus.seed_kb;

  std::printf("Table 2: seed KB for the Movie vertical (scale=%.2f)\n",
              scale);
  std::printf("Total: %lld entities, %lld triples\n\n",
              static_cast<long long>(kb.num_entities()),
              static_cast<long long>(kb.num_triples()));

  eval::TableReport table({"Entity Type", "#Instances", "#Predicates"});
  for (const char* type_name : {"person", "film", "tv_series",
                                "tv_episode"}) {
    Result<TypeId> type = kb.ontology().TypeByName(type_name);
    if (!type.ok()) continue;
    table.AddRow({type_name, std::to_string(kb.CountEntitiesOfType(*type)),
                  std::to_string(kb.CountPredicatesForSubjectType(*type))});
  }
  table.Print();
  std::printf(
      "\nPaper (Table 2): Person 7.67M/15, Film 0.43M/19, TV Series "
      "0.12M/9, TV Episode 1.09M/18.\n");
  return 0;
}
