#ifndef CERES_FUSION_KNOWLEDGE_FUSION_H_
#define CERES_FUSION_KNOWLEDGE_FUSION_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "kb/knowledge_base.h"
#include "kb/ontology.h"
#include "util/deadline.h"

namespace ceres::fusion {

/// Extractions harvested from one website.
struct SiteExtractions {
  std::string site;
  std::vector<Extraction> extractions;
};

/// A triple after cross-site fusion.
struct FusedTriple {
  /// Normalized subject/object surface forms.
  std::string subject;
  PredicateId predicate = kInvalidPredicate;
  std::string object;
  /// Fused belief in [0, 1).
  double score = 0.0;
  /// Sites asserting the triple.
  std::vector<std::string> sites;
  /// True when a functional predicate had competing objects and this one
  /// won; losers are dropped (or kept with `conflicting` when
  /// keep_conflicts is set).
  bool conflicting = false;
};

/// Configuration of the fusion pass.
struct FusionConfig {
  /// Per-extraction confidences below this are ignored entirely.
  double min_extraction_confidence = 0.5;
  /// Iterations of the alternating site-reliability / triple-belief
  /// estimate (2–5 suffice; 0 disables reliability weighting).
  int reliability_iterations = 3;
  /// Initial reliability assumed for every site.
  double initial_site_reliability = 0.8;
  /// Reliability is clamped into [floor, ceiling] so no site is treated as
  /// perfect or as pure noise.
  double reliability_floor = 0.05;
  double reliability_ceiling = 0.95;
  /// Keep losing objects of functional-predicate conflicts (flagged
  /// `conflicting`) instead of dropping them.
  bool keep_conflicts = false;
  /// Cooperative time budget / cancellation for the merge step, so a
  /// coordinator-level deadline also covers fusion (the last pipeline
  /// stage). Checked at site granularity while collecting support and per
  /// reliability iteration; on expiry the pass degrades gracefully — it
  /// stops ingesting further sites / refining reliability, finishes
  /// scoring and conflict resolution over what it has, and sets
  /// `FusionResult::deadline_expired`.
  Deadline deadline;
};

/// Per-site reliability estimate produced alongside the fused triples.
struct SiteReliability {
  std::string site;
  double reliability = 0.0;
  int64_t triples = 0;
};

/// Result of FuseExtractions.
struct FusionResult {
  std::vector<FusedTriple> triples;
  std::vector<SiteReliability> sites;
  /// True when `FusionConfig::deadline` expired mid-pass: the triples cover
  /// only the sites ingested before expiry and/or reliability ran fewer
  /// iterations than configured.
  bool deadline_expired = false;
};

/// Fuses per-site extractions into a deduplicated, confidence-weighted
/// triple set — the paper's §5.5.1 future-work pointer to Knowledge
/// Vault-style knowledge fusion [10, 11], implemented as:
///
///  1. normalize (subject, predicate, object) across sites;
///  2. estimate each site's reliability by alternating between
///     triple-belief and site-accuracy updates (a simple truth-finding
///     fixpoint: a site is as reliable as its triples are believed, and a
///     triple is believed in proportion to its supporters' reliability);
///  3. score each distinct triple by a reliability-weighted noisy-or of
///     its supporting extractions;
///  4. resolve functional-predicate conflicts by keeping the
///     highest-scoring object per (subject, predicate).
///
/// Output is sorted by descending score (ties: lexicographic), so callers
/// can threshold for any precision target.
FusionResult FuseExtractions(const std::vector<SiteExtractions>& sites,
                             const Ontology& ontology,
                             const FusionConfig& config = {});

/// Materializes fused triples with score >= `min_score` into a fresh,
/// frozen KnowledgeBase over `ontology`. Entities are typed by the
/// predicate's declared subject/object types and deduplicated by
/// (type, surface form).
///
/// This closes the bootstrapping loop of the paper's footnote 2: run an
/// annotation-based wrapper on a few prominent sites, turn its output into
/// a seed KB, and distantly supervise every other site in the vertical.
KnowledgeBase BuildKbFromFusedTriples(const FusionResult& fused,
                                      const Ontology& ontology,
                                      double min_score = 0.5);

}  // namespace ceres::fusion

#endif  // CERES_FUSION_KNOWLEDGE_FUSION_H_
