#include "kb/kb_io.h"

#include <charconv>
#include <fstream>
#include <memory>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/string_util.h"

namespace ceres {

namespace {

bool HasTab(const std::string& text) {
  return text.find('\t') != std::string::npos;
}

Status MalformedLine(int line_number, const std::string& line,
                     const std::string& why) {
  return Status::InvalidArgument(
      StrCat("line ", line_number, ": ", why, " — \"", line, "\""));
}

}  // namespace

Status SaveKb(const KnowledgeBase& kb, std::ostream* out) {
  if (!kb.frozen()) {
    return Status::FailedPrecondition("KB must be frozen before saving");
  }
  const Ontology& ontology = kb.ontology();
  *out << "#types\n";
  for (const EntityTypeDecl& type : ontology.entity_types()) {
    if (HasTab(type.name)) {
      return Status::InvalidArgument(
          StrCat("type name contains a tab: ", type.name));
    }
    *out << type.name << '\t' << (type.is_literal ? "literal" : "entity")
         << '\n';
  }
  *out << "#predicates\n";
  for (const PredicateDecl& predicate : ontology.predicates()) {
    if (HasTab(predicate.name)) {
      return Status::InvalidArgument(
          StrCat("predicate name contains a tab: ", predicate.name));
    }
    *out << predicate.name << '\t'
         << ontology.entity_type(predicate.subject_type).name << '\t'
         << ontology.entity_type(predicate.object_type).name << '\t'
         << (predicate.multi_valued ? "multi" : "single") << '\n';
  }
  *out << "#entities\n";
  for (EntityId id = 0; id < kb.num_entities(); ++id) {
    const Entity& entity = kb.entity(id);
    if (HasTab(entity.name)) {
      return Status::InvalidArgument(
          StrCat("entity name contains a tab: ", entity.name));
    }
    *out << id << '\t' << ontology.entity_type(entity.type).name << '\t'
         << entity.name;
    for (const std::string& alias : entity.aliases) {
      if (HasTab(alias)) {
        return Status::InvalidArgument(
            StrCat("alias contains a tab: ", alias));
      }
      *out << '\t' << alias;
    }
    *out << '\n';
  }
  *out << "#triples\n";
  for (const Triple& triple : kb.triples()) {
    *out << triple.subject << '\t'
         << ontology.predicate(triple.predicate).name << '\t'
         << triple.object << '\n';
  }
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

Status SaveKbToFile(const KnowledgeBase& kb, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound(StrCat("cannot open for writing: ", path));
  }
  return SaveKb(kb, &out);
}

Result<KnowledgeBase> LoadKb(std::istream* in) {
  enum class Section { kNone, kTypes, kPredicates, kEntities, kTriples };
  Section section = Section::kNone;
  Ontology ontology;
  // Ontology fills first; the KB is created lazily when #entities begins.
  std::unique_ptr<KnowledgeBase> kb;
  std::unordered_map<int64_t, EntityId> id_map;

  auto parse_id = [](const std::string& field, int64_t* value) {
    auto [ptr, ec] = std::from_chars(field.data(),
                                     field.data() + field.size(), *value);
    return ec == std::errc() && ptr == field.data() + field.size();
  };

  std::string line;
  int line_number = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == "#types") {
        section = Section::kTypes;
      } else if (line == "#predicates") {
        section = Section::kPredicates;
      } else if (line == "#entities") {
        section = Section::kEntities;
        kb = std::make_unique<KnowledgeBase>(ontology);
      } else if (line == "#triples") {
        if (kb == nullptr) kb = std::make_unique<KnowledgeBase>(ontology);
        section = Section::kTriples;
      }
      continue;  // Unknown '#' lines are comments.
    }
    std::vector<std::string> fields = Split(line, '\t');
    switch (section) {
      case Section::kNone:
        return MalformedLine(line_number, line, "data before any section");
      case Section::kTypes: {
        if (fields.size() != 2) {
          return MalformedLine(line_number, line, "expected 2 fields");
        }
        if (fields[1] != "literal" && fields[1] != "entity") {
          return MalformedLine(line_number, line,
                               "kind must be literal|entity");
        }
        if (ontology.TypeByName(fields[0]).ok()) {
          return MalformedLine(line_number, line, "duplicate type");
        }
        ontology.AddEntityType(fields[0], fields[1] == "literal");
        break;
      }
      case Section::kPredicates: {
        if (fields.size() != 4) {
          return MalformedLine(line_number, line, "expected 4 fields");
        }
        Result<TypeId> subject = ontology.TypeByName(fields[1]);
        Result<TypeId> object = ontology.TypeByName(fields[2]);
        if (!subject.ok() || !object.ok()) {
          return MalformedLine(line_number, line, "unknown type");
        }
        if (fields[3] != "multi" && fields[3] != "single") {
          return MalformedLine(line_number, line,
                               "cardinality must be multi|single");
        }
        if (ontology.PredicateByName(fields[0]).ok()) {
          return MalformedLine(line_number, line, "duplicate predicate");
        }
        ontology.AddPredicate(fields[0], *subject, *object,
                              fields[3] == "multi");
        break;
      }
      case Section::kEntities: {
        if (fields.size() < 3) {
          return MalformedLine(line_number, line, "expected >= 3 fields");
        }
        int64_t external_id = 0;
        if (!parse_id(fields[0], &external_id)) {
          return MalformedLine(line_number, line, "bad entity id");
        }
        if (id_map.count(external_id) > 0) {
          return MalformedLine(line_number, line, "duplicate entity id");
        }
        Result<TypeId> type = kb->ontology().TypeByName(fields[1]);
        if (!type.ok()) {
          return MalformedLine(line_number, line, "unknown type");
        }
        EntityId internal = kb->AddEntity(*type, fields[2]);
        for (size_t i = 3; i < fields.size(); ++i) {
          kb->AddAlias(internal, fields[i]);
        }
        id_map[external_id] = internal;
        break;
      }
      case Section::kTriples: {
        if (fields.size() != 3) {
          return MalformedLine(line_number, line, "expected 3 fields");
        }
        int64_t subject_id = 0;
        int64_t object_id = 0;
        if (!parse_id(fields[0], &subject_id) ||
            !parse_id(fields[2], &object_id)) {
          return MalformedLine(line_number, line, "bad entity id");
        }
        auto subject_it = id_map.find(subject_id);
        auto object_it = id_map.find(object_id);
        if (subject_it == id_map.end() || object_it == id_map.end()) {
          return MalformedLine(line_number, line, "undeclared entity id");
        }
        Result<PredicateId> predicate =
            kb->ontology().PredicateByName(fields[1]);
        if (!predicate.ok()) {
          return MalformedLine(line_number, line, "unknown predicate");
        }
        kb->AddTriple(subject_it->second, *predicate, object_it->second);
        break;
      }
    }
  }
  if (kb == nullptr) kb = std::make_unique<KnowledgeBase>(ontology);
  kb->Freeze();
  return std::move(*kb);
}

Result<KnowledgeBase> LoadKbFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(StrCat("cannot open: ", path));
  }
  return LoadKb(&in);
}

}  // namespace ceres
