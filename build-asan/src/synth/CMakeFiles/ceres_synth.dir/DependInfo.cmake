
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/corpora.cc" "src/synth/CMakeFiles/ceres_synth.dir/corpora.cc.o" "gcc" "src/synth/CMakeFiles/ceres_synth.dir/corpora.cc.o.d"
  "/root/repo/src/synth/kb_builder.cc" "src/synth/CMakeFiles/ceres_synth.dir/kb_builder.cc.o" "gcc" "src/synth/CMakeFiles/ceres_synth.dir/kb_builder.cc.o.d"
  "/root/repo/src/synth/names.cc" "src/synth/CMakeFiles/ceres_synth.dir/names.cc.o" "gcc" "src/synth/CMakeFiles/ceres_synth.dir/names.cc.o.d"
  "/root/repo/src/synth/site_generator.cc" "src/synth/CMakeFiles/ceres_synth.dir/site_generator.cc.o" "gcc" "src/synth/CMakeFiles/ceres_synth.dir/site_generator.cc.o.d"
  "/root/repo/src/synth/world.cc" "src/synth/CMakeFiles/ceres_synth.dir/world.cc.o" "gcc" "src/synth/CMakeFiles/ceres_synth.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/ceres_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dom/CMakeFiles/ceres_dom.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/kb/CMakeFiles/ceres_kb.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cluster/CMakeFiles/ceres_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ml/CMakeFiles/ceres_ml.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/text/CMakeFiles/ceres_text.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/ceres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
