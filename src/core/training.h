#ifndef CERES_CORE_TRAINING_H_
#define CERES_CORE_TRAINING_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "core/features.h"
#include "core/types.h"
#include "ml/logistic_regression.h"
#include "util/deadline.h"
#include "util/status.h"

namespace ceres {

/// Configuration of training-set construction (§4.1) and model fitting
/// (§4.2).
struct TrainingConfig {
  /// Negative ("OTHER") examples sampled per positive example (paper: 3).
  int negatives_per_positive = 3;
  /// When true (paper behaviour), nodes that differ from a page's positive
  /// examples only at list indices are never sampled as negatives — they
  /// are probably unlabelled members of the same value list. Disable for
  /// the ablation bench.
  bool exclude_list_negatives = true;
  /// Cap on annotated pages used for learning; 0 = use all. Drives the
  /// Figure 5 sweep.
  size_t max_annotated_pages = 0;
  /// Minimum annotated pages required to train at all; below this the
  /// trainer refuses (a single annotated page cannot support a per-site
  /// extractor, cf. the zero-extraction sites of Table 8).
  size_t min_annotated_pages = 2;
  /// Seed for negative sampling (and the annotated-page subsample).
  uint64_t seed = 42;
  LogRegConfig logreg;
  /// Cooperative time budget, checked at page granularity while building
  /// training examples and again before fitting; expiry fails the training
  /// with kDeadlineExceeded / kCancelled.
  Deadline deadline;
};

/// A trained per-template extractor model: the classifier plus the frozen
/// feature dictionary, the class layout, and the site-level featurizer
/// state (feature flags + frequent-string lexicon) it was fitted with —
/// everything needed to re-apply the model to freshly crawled pages.
struct TrainedModel {
  LogisticRegression model;
  HashedFeatureMap features;
  ClassMap classes;
  FeatureConfig feature_config;
  std::unordered_set<std::string> frequent_strings;
};

/// Rebuilds the featurizer a persisted model was trained with.
FeatureExtractor MakeFeaturizer(const TrainedModel& model);

/// Builds labelled examples from `annotations` and fits the multinomial
/// logistic-regression extractor.
///
/// Positive examples are the annotated nodes (class = predicate, or NAME
/// for topic nodes); negatives are r random unlabelled text fields per
/// positive, excluding likely members of annotated value lists. Fails with
/// kFailedPrecondition when there are no annotations.
Result<TrainedModel> TrainExtractor(
    const std::vector<const DomDocument*>& pages,
    const std::vector<Annotation>& annotations,
    const FeatureExtractor& featurizer, const Ontology& ontology,
    const TrainingConfig& config = {});

}  // namespace ceres

#endif  // CERES_CORE_TRAINING_H_
