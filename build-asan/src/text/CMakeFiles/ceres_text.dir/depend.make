# Empty dependencies file for ceres_text.
# This may be replaced when dependencies are built.
