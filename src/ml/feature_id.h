#ifndef CERES_ML_FEATURE_ID_H_
#define CERES_ML_FEATURE_ID_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ceres {

/// Incremental 64-bit feature-id builder.
///
/// A feature id is defined as the pinned Fnv1a64 hash of the feature's
/// legacy string name — the exact byte sequence the string-named featurizer
/// used to materialize (e.g. "S|l=0|s=-2|tag=span", "T|l1s2c|director").
/// This builder feeds those bytes into the hash incrementally, so the hot
/// path never allocates the name; when a name sink is attached (debug /
/// trace / golden tests) the same Add calls also append the bytes to the
/// sink, which makes hash-path and name-path agreement true by construction.
///
/// Because the definition is hash-of-name, old string-named model files
/// convert losslessly: hashing each stored name yields the id the current
/// featurizer computes.
///
/// Copy freely: copying captures the prefix state (structural features
/// reuse a per-(level,offset) stem across the tag and each tracked
/// attribute).
class FeatureIdBuilder {
 public:
  FeatureIdBuilder() = default;
  /// When `name_sink` is non-null every appended byte is mirrored into it
  /// (the sink is NOT cleared; pair with Reset/your own clearing).
  explicit FeatureIdBuilder(std::string* name_sink) : name_(name_sink) {}

  FeatureIdBuilder& Add(std::string_view s) {
    for (char c : s) AddByte(c);
    return *this;
  }

  FeatureIdBuilder& Add(char c) {
    AddByte(c);
    return *this;
  }

  /// Appends the decimal rendering of `v` ('-' prefix when negative),
  /// byte-identical to what operator<< / std::to_string produce.
  FeatureIdBuilder& AddInt(int64_t v) {
    char buf[24];
    char* p = buf + sizeof(buf);
    const bool negative = v < 0;
    // Negate digit-by-digit to stay defined at INT64_MIN.
    uint64_t u = negative ? 0 - static_cast<uint64_t>(v)
                          : static_cast<uint64_t>(v);
    do {
      *--p = static_cast<char>('0' + (u % 10));
      u /= 10;
    } while (u != 0);
    if (negative) *--p = '-';
    return Add(std::string_view(p, static_cast<size_t>(buf + sizeof(buf) - p)));
  }

  /// A copy of this builder's hash state writing further bytes to `sink`
  /// (or nowhere when null). Used to fork a shared stem: the caller must
  /// seed `sink` with the stem's bytes itself when it wants the full name.
  FeatureIdBuilder WithSink(std::string* sink) const {
    FeatureIdBuilder forked = *this;
    forked.name_ = sink;
    return forked;
  }

  /// The feature id accumulated so far: Fnv1a64 of all appended bytes.
  uint64_t id() const { return hash_; }

 private:
  void AddByte(char c) {
    hash_ ^= static_cast<uint8_t>(c);
    hash_ *= 0x100000001b3ull;
    if (name_ != nullptr) name_->push_back(c);
  }

  uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  std::string* name_ = nullptr;
};

/// Lazily-built id → legacy-name side table. The featurizer fills it only
/// when a trace is attached (golden tests, debug dumps); production
/// featurization passes nullptr and never materializes names.
class FeatureNameTrace {
 public:
  /// Records the name for `id` on first sight.
  void Record(uint64_t id, const std::string& name) {
    names_.emplace(id, name);
  }

  /// The recorded name, or "" when the id was never traced.
  const std::string& NameOf(uint64_t id) const {
    static const std::string* kEmpty = new std::string();
    auto it = names_.find(id);
    return it == names_.end() ? *kEmpty : it->second;
  }

  size_t size() const { return names_.size(); }
  const std::unordered_map<uint64_t, std::string>& names() const {
    return names_;
  }

 private:
  std::unordered_map<uint64_t, std::string> names_;
};

}  // namespace ceres

#endif  // CERES_ML_FEATURE_ID_H_
