#ifndef CERES_DOM_DOM_TREE_H_
#define CERES_DOM_DOM_TREE_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/arena.h"
#include "util/logging.h"

namespace ceres {

/// Index of a node within its owning DomDocument arena. Root is always 0.
using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

/// One HTML attribute. `name` is lower-cased and interned in the process
/// StringPool (equal names share storage, so pooled names compare by
/// pointer); `value` is a span into the owning document's text arena.
struct DomAttribute {
  std::string_view name;
  std::string_view value;
};

/// An element node of a parsed page.
///
/// Text is modelled as the concatenated direct character data of the
/// element (`text`), following the paper's observation that entity names
/// correspond to the full text of a DOM node: a "text field" is an element
/// whose `text` is non-empty.
///
/// A node owns no string storage: `tag` is interned in the process
/// StringPool and `text` lives in the document's arena, so the node itself
/// is a fixed-size record. Attributes live in the document's flat attribute
/// array (`DomDocument::attributes(id)`), addressed by [attr_begin,
/// attr_begin + attr_count).
struct DomNode {
  /// Lower-cased tag name, e.g. "div". Interned: pooled tags with equal
  /// content share a data() pointer.
  std::string_view tag;
  /// Direct character data of this element (children's text not included),
  /// whitespace-trimmed, stored in the document arena.
  std::string_view text;

  NodeId parent = kInvalidNode;
  /// Intrusive child list: no per-node heap storage. Iterate with
  /// DomDocument::children(id) or follow the links directly.
  NodeId first_child = kInvalidNode;
  NodeId last_child = kInvalidNode;
  NodeId prev_sibling = kInvalidNode;
  NodeId next_sibling = kInvalidNode;
  int child_count = 0;
  /// 1-based position among same-tag siblings; the XPath step index.
  int sibling_index = 1;
  /// 0-based position among all siblings.
  int child_position = 0;
  /// Attribute range in the owning document's flat attribute array.
  uint32_t attr_begin = 0;
  uint32_t attr_count = 0;

  bool HasText() const { return !text.empty(); }
};

/// A parsed page: a flat array of DomNodes rooted at node 0, plus one text
/// arena owning all character data and a flat attribute array.
///
/// Nodes are stored in document (preorder) order, so iterating ids 0..size-1
/// visits the tree top-down. Documents are movable but not copyable; moving
/// a document moves arena chunk ownership, so node/attribute views stay
/// valid across moves.
class DomDocument {
 public:
  DomDocument();
  DomDocument(DomDocument&&) = default;
  DomDocument& operator=(DomDocument&&) = default;
  DomDocument(const DomDocument&) = delete;
  DomDocument& operator=(const DomDocument&) = delete;

  /// Identifier of the page (URL or synthetic id); informational only.
  const std::string& url() const { return url_; }
  void set_url(std::string url) { url_ = std::move(url); }

  NodeId root() const { return 0; }
  int size() const { return static_cast<int>(nodes_.size()); }

  const DomNode& node(NodeId id) const {
    CERES_CHECK(id >= 0 && id < size());
    return nodes_[id];
  }

  /// Forward range over the child ids of a node, in document order.
  /// Children are an intrusive linked list threaded through the flat node
  /// array (DomNode::first_child / next_sibling), so iteration touches no
  /// heap storage.
  class ChildRange {
   public:
    class iterator {
     public:
      using value_type = NodeId;
      using difference_type = std::ptrdiff_t;
      using iterator_category = std::forward_iterator_tag;
      using pointer = const NodeId*;
      using reference = NodeId;

      iterator() = default;
      iterator(const DomDocument* doc, NodeId cur) : doc_(doc), cur_(cur) {}
      NodeId operator*() const { return cur_; }
      iterator& operator++() {
        cur_ = doc_->node(cur_).next_sibling;
        return *this;
      }
      iterator operator++(int) {
        iterator out = *this;
        ++*this;
        return out;
      }
      bool operator==(const iterator& other) const {
        return cur_ == other.cur_;
      }
      bool operator!=(const iterator& other) const {
        return cur_ != other.cur_;
      }

     private:
      const DomDocument* doc_ = nullptr;
      NodeId cur_ = kInvalidNode;
    };

    ChildRange(const DomDocument* doc, NodeId parent)
        : doc_(doc), parent_(parent) {}
    iterator begin() const {
      return iterator(doc_, doc_->node(parent_).first_child);
    }
    iterator end() const { return iterator(doc_, kInvalidNode); }
    size_t size() const {
      return static_cast<size_t>(doc_->node(parent_).child_count);
    }
    bool empty() const { return size() == 0; }

   private:
    const DomDocument* doc_;
    NodeId parent_;
  };

  ChildRange children(NodeId id) const { return ChildRange(this, id); }

  /// Appends a child element under `parent` (kInvalidNode only for the
  /// root, which exists already) and returns its id. Maintains sibling
  /// indices. The tag is interned; it need not outlive the call.
  NodeId AddChild(NodeId parent, std::string_view tag);

  /// Appends an attribute to `id`. `name` must already be lower-case; it is
  /// interned. `value` is copied into the document arena. A node's
  /// attributes must be added consecutively — before any other node's —
  /// because they occupy one contiguous range of the flat array (checked).
  void AddAttribute(NodeId id, std::string_view name, std::string_view value);

  /// Pre-sizes the node and attribute arrays for a document parsed from
  /// `source_bytes` bytes of HTML. Optional; the parser calls it so
  /// steady-state parsing does one up-front allocation per array instead
  /// of doubling from empty.
  void ReserveFor(size_t source_bytes);

  /// Replaces the direct text of `id` with a copy of `text` in the arena.
  void SetText(NodeId id, std::string_view text);

  /// Appends one already-collapsed segment of character data to `id`,
  /// joined to existing text with a single space (the parser accumulates
  /// text interleaved with child elements: `<p>a<b/>b</p>`).
  void AppendTextSegment(NodeId id, std::string_view segment);

  /// Attributes of `id` in document order.
  std::span<const DomAttribute> attributes(NodeId id) const {
    const DomNode& n = node(id);
    return {attrs_.data() + n.attr_begin, n.attr_count};
  }

  /// Value of the attribute of `id` with the given lower-case name, or ""
  /// if absent. Names are pooled, so when `name` is itself a pooled view
  /// (see util::StringPool) each comparison is a pointer compare; a plain
  /// literal falls back to a byte compare. Never allocates.
  std::string_view Attribute(NodeId id, std::string_view name) const {
    for (const DomAttribute& attr : attributes(id)) {
      if (attr.name.data() == name.data()
              ? attr.name.size() == name.size()
              : attr.name == name) {
        return attr.value;
      }
    }
    return {};
  }

  /// Ids of all elements with non-empty direct text, in document order.
  std::vector<NodeId> TextFields() const;

  /// True if `ancestor` is `descendant` or one of its ancestors.
  bool IsAncestorOrSelf(NodeId ancestor, NodeId descendant) const;

  /// Depth of the node (root has depth 0).
  int Depth(NodeId id) const;

  /// Bytes of character data held by the document arena (text + attribute
  /// values). Registry byte accounting reads this.
  size_t arena_bytes() const { return arena_.bytes_reserved(); }

  /// Total attributes across all nodes.
  size_t attribute_count() const { return attrs_.size(); }

 private:
  std::string url_;
  std::vector<DomNode> nodes_;
  std::vector<DomAttribute> attrs_;
  util::TextArena arena_;
};

}  // namespace ceres

#endif  // CERES_DOM_DOM_TREE_H_
