#include "core/extractor.h"

#include <algorithm>

#include "core/doc_cache.h"
#include "util/logging.h"

namespace ceres {

namespace {

// Extraction pass over one page, appending to `out`. Runs concurrently for
// distinct pages: the model is only read (the HashedFeatureMap is frozen, so
// featurization interns nothing), and each worker owns its output slot.
void ExtractFromPage(const DomDocument& doc, PageIndex page,
                     TrainedModel* model, const FeatureExtractor& featurizer,
                     const ExtractionConfig& config,
                     std::vector<Extraction>* out) {
  std::vector<NodeId> fields = doc.TextFields();
  if (fields.empty()) return;

  // Score all fields once.
  NormalizedTextCache text_cache(doc);
  std::vector<std::vector<double>> probabilities(fields.size());
  for (size_t f = 0; f < fields.size(); ++f) {
    SparseVector features = featurizer.Extract(doc, fields[f],
                                               &model->features,
                                               /*name_prefix=*/{}, &text_cache);
    probabilities[f] = model->model.PredictProbabilities(features);
  }

  // Topic-name node: the field with the highest NAME probability.
  size_t name_field = 0;
  double name_prob = -1;
  for (size_t f = 0; f < fields.size(); ++f) {
    double prob = probabilities[f][ClassMap::kNameClass];
    if (prob > name_prob) {
      name_prob = prob;
      name_field = f;
    }
  }
  if (name_prob < config.name_threshold) return;
  const std::string subject(doc.node(fields[name_field]).text);
  out->push_back(Extraction{page, fields[name_field], kNamePredicate,
                            subject, subject, name_prob});

  for (size_t f = 0; f < fields.size(); ++f) {
    if (f == name_field) continue;
    const std::vector<double>& probs = probabilities[f];
    auto it = std::max_element(probs.begin(), probs.end());
    int32_t cls = static_cast<int32_t>(it - probs.begin());
    if (cls == ClassMap::kOtherClass || cls == ClassMap::kNameClass) {
      continue;
    }
    if (*it < config.confidence_threshold) continue;
    out->push_back(Extraction{page, fields[f],
                              model->classes.PredicateOf(cls), subject,
                              std::string(doc.node(fields[f]).text), *it});
  }
}

}  // namespace

std::vector<Extraction> ExtractFromPages(
    const std::vector<const DomDocument*>& pages,
    const std::vector<PageIndex>& page_indices, TrainedModel* model,
    const FeatureExtractor& featurizer, const ExtractionConfig& config) {
  CERES_CHECK(pages.size() == page_indices.size());
  CERES_CHECK(model->features.frozen());

  // Per-page output slots, merged in page order below: the result is
  // byte-identical to a serial pass regardless of thread count. A page
  // reached after the deadline expires yields nothing, matching the serial
  // cutoff (expiry is monotonic).
  std::vector<std::vector<Extraction>> per_page(pages.size());
  ParallelFor(pages.size(), config.parallel, [&](size_t p) {
    if (config.deadline.expired()) return;
    ExtractFromPage(*pages[p], page_indices[p], model, featurizer, config,
                    &per_page[p]);
  });

  std::vector<Extraction> out;
  for (std::vector<Extraction>& slot : per_page) {
    out.insert(out.end(), std::make_move_iterator(slot.begin()),
               std::make_move_iterator(slot.end()));
  }
  return out;
}

}  // namespace ceres
