// Corpus: a pipeline-stage config struct without a Deadline member (the
// test lints this content under a src/core/ path). Exactly one
// config-deadline violation — RankingConfig; NormalizeConfig carries its
// deadline and is compliant.
// Never compiled — linted by tests/lint/ceres_lint_test.cc.

#include "util/deadline.h"

namespace ceres {

struct RankingConfig {  // BAD: stage cannot be interrupted
  double threshold = 0.5;
  int max_candidates = 10;
};

struct NormalizeConfig {
  bool fold_case = true;
  Deadline deadline;
};

}  // namespace ceres
