#include "kb/knowledge_base.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/metrics.h"
#include "text/normalize.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ceres {

EntityId KnowledgeBase::AddEntity(TypeId type, std::string_view name) {
  CERES_CHECK(!frozen_);
  CERES_CHECK(type >= 0 && type < ontology_.num_types());
  EntityId id = static_cast<EntityId>(build_entities_.size());
  build_entities_.push_back(BuildEntity{type, std::string(name), {}});
  return id;
}

void KnowledgeBase::AddAlias(EntityId id, std::string_view alias) {
  CERES_CHECK(!frozen_);
  CERES_CHECK(id >= 0 && id < num_entities());
  build_entities_[static_cast<size_t>(id)].aliases.emplace_back(alias);
}

void KnowledgeBase::AddTriple(EntityId subject, PredicateId predicate,
                              EntityId object) {
  CERES_CHECK(!frozen_);
  CERES_CHECK(subject >= 0 && subject < num_entities());
  CERES_CHECK(object >= 0 && object < num_entities());
  CERES_CHECK(predicate >= 0 && predicate < ontology_.num_predicates());
  build_triples_.push_back(Triple{subject, predicate, object});
}

void KnowledgeBase::Freeze() {
  CERES_CHECK(!frozen_);
  const size_t num_entities = build_entities_.size();

  // Deduplicate triples.
  std::sort(build_triples_.begin(), build_triples_.end(),
            [](const Triple& a, const Triple& b) {
              if (a.subject != b.subject) return a.subject < b.subject;
              if (a.predicate != b.predicate) return a.predicate < b.predicate;
              return a.object < b.object;
            });
  build_triples_.erase(
      std::unique(build_triples_.begin(), build_triples_.end()),
      build_triples_.end());

  // The normalized name index, replicating FuzzyMatcher::Add semantics
  // exactly (empty keys skipped, per-key ids deduplicated in registration
  // order) so the mapped binary-search path and the heap hash path return
  // identical match lists. A std::map because the image's key section
  // must be sorted by key bytes.
  std::map<std::string, std::vector<EntityId>> name_map;
  auto add_name = [&name_map](std::string_view surface, EntityId id) {
    std::string key = NormalizeText(surface);
    if (key.empty()) return;
    std::vector<EntityId>& ids = name_map[std::move(key)];
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
      ids.push_back(id);
    }
  };
  for (size_t i = 0; i < num_entities; ++i) {
    const BuildEntity& entity = build_entities_[i];
    const EntityId id = static_cast<EntityId>(i);
    add_name(entity.name, id);
    for (const std::string& alias : entity.aliases) add_name(alias, id);
  }

  // CSR subject index over the (now sorted) triple array: a counting pass
  // then a prefix sum, so TriplesWithSubject is an O(1) span handout. The
  // object CSR reuses the sort: each subject's slice is contiguous, its
  // objects only need a per-subject sort + unique.
  std::vector<uint64_t> subject_offsets(num_entities + 1, 0);
  std::map<std::string, int64_t> object_string_counts;
  std::string key;
  for (const Triple& triple : build_triples_) {
    ++subject_offsets[static_cast<size_t>(triple.subject) + 1];
    NormalizeTextInto(
        build_entities_[static_cast<size_t>(triple.object)].name, &key);
    if (!key.empty()) ++object_string_counts[key];
  }
  for (size_t s = 1; s < subject_offsets.size(); ++s) {
    subject_offsets[s] += subject_offsets[s - 1];
  }
  std::vector<uint64_t> object_offsets(num_entities + 1, 0);
  std::vector<EntityId> objects;
  objects.reserve(build_triples_.size());
  std::vector<EntityId> scratch;
  for (size_t s = 0; s < num_entities; ++s) {
    scratch.clear();
    for (size_t t = subject_offsets[s]; t < subject_offsets[s + 1]; ++t) {
      scratch.push_back(build_triples_[t].object);
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()),
                  scratch.end());
    objects.insert(objects.end(), scratch.begin(), scratch.end());
    object_offsets[s + 1] = objects.size();
  }

  // Serialize everything into the flat image; from here on the image is
  // the single source of truth and the build storage is dropped.
  KbImageBuilder builder;
  for (const EntityTypeDecl& type : ontology_.entity_types()) {
    KbTypeRecord record;
    record.name = builder.AddString(type.name);
    record.is_literal = type.is_literal ? 1 : 0;
    builder.Append(kKbSectionTypes, record);
  }
  for (const PredicateDecl& predicate : ontology_.predicates()) {
    KbPredicateRecord record;
    record.name = builder.AddString(predicate.name);
    record.subject_type = predicate.subject_type;
    record.object_type = predicate.object_type;
    record.multi_valued = predicate.multi_valued ? 1 : 0;
    builder.Append(kKbSectionPredicates, record);
  }
  uint64_t alias_cursor = 0;
  for (size_t i = 0; i < num_entities; ++i) {
    const BuildEntity& entity = build_entities_[i];
    KbEntityRecord record;
    record.name = builder.AddString(entity.name);
    record.alias_begin = alias_cursor;
    for (const std::string& alias : entity.aliases) {
      builder.Append(kKbSectionAliasRefs, builder.AddString(alias));
      ++alias_cursor;
    }
    record.alias_end = alias_cursor;
    record.type = entity.type;
    builder.Append(kKbSectionEntities, record);
  }
  for (const Triple& triple : build_triples_) {
    builder.Append(kKbSectionTriples, triple);
  }
  for (uint64_t offset : subject_offsets) {
    builder.Append(kKbSectionSubjectOffsets, offset);
  }
  for (uint64_t offset : object_offsets) {
    builder.Append(kKbSectionObjectOffsets, offset);
  }
  for (EntityId object : objects) {
    builder.Append(kKbSectionObjects, object);
  }
  uint64_t ids_cursor = 0;
  for (const auto& [name_key, ids] : name_map) {
    KbNameKey record;
    record.key = builder.AddString(name_key);
    record.ids_begin = ids_cursor;
    record.ids_end = ids_cursor + ids.size();
    builder.Append(kKbSectionNameKeys, record);
    for (EntityId id : ids) builder.Append(kKbSectionNameIds, id);
    ids_cursor = record.ids_end;
  }
  for (const auto& [count_key, count] : object_string_counts) {
    KbObjectStringCount record;
    record.key = builder.AddString(count_key);
    record.count = count;
    builder.Append(kKbSectionObjectStringCounts, record);
  }

  Result<KbImage> image = KbImage::FromBuffer(builder.Serialize());
  CERES_CHECK_MSG(image.ok(), "freshly serialized KB image must validate");
  image_ = std::move(image).value();
  AttachImage();

  // The hash accelerator for the mention-matching hot path, over the
  // image's interned strings (no second copy of the name data beyond the
  // matcher's own keys).
  for (size_t i = 0; i < entities_.size(); ++i) {
    const KbEntityRecord& record = entities_[i];
    const EntityId id = static_cast<EntityId>(i);
    name_index_.Add(image_.View(record.name), id);
    for (uint64_t a = record.alias_begin; a < record.alias_end; ++a) {
      name_index_.Add(image_.View(alias_refs_[a]), id);
    }
  }
  has_name_index_ = true;

  build_entities_.clear();
  std::vector<Triple>().swap(build_triples_);
  frozen_ = true;
}

void KnowledgeBase::AttachImage() {
  entities_ = image_.Section<KbEntityRecord>(kKbSectionEntities);
  alias_refs_ = image_.Section<KbStringRef>(kKbSectionAliasRefs);
  triples_ = image_.Section<Triple>(kKbSectionTriples);
  subject_offsets_ = image_.Section<uint64_t>(kKbSectionSubjectOffsets);
  object_offsets_ = image_.Section<uint64_t>(kKbSectionObjectOffsets);
  objects_ = image_.Section<EntityId>(kKbSectionObjects);
  name_keys_ = image_.Section<KbNameKey>(kKbSectionNameKeys);
  name_ids_ = image_.Section<EntityId>(kKbSectionNameIds);
  object_string_counts_ =
      image_.Section<KbObjectStringCount>(kKbSectionObjectStringCounts);
  strings_ =
      image_.data() + image_.header().sections[kKbSectionStrings].offset;
}

Status KnowledgeBase::ValidateImageStructure(const KbImage& image) {
  const KbImageHeader& header = image.header();
  auto record_count = [&header](KbImageSectionId id,
                                size_t record_bytes) -> int64_t {
    if (header.sections[id].bytes % record_bytes != 0) return -1;
    return static_cast<int64_t>(header.sections[id].bytes / record_bytes);
  };
  const int64_t types = record_count(kKbSectionTypes, sizeof(KbTypeRecord));
  const int64_t predicates =
      record_count(kKbSectionPredicates, sizeof(KbPredicateRecord));
  const int64_t entities =
      record_count(kKbSectionEntities, sizeof(KbEntityRecord));
  const int64_t alias_refs =
      record_count(kKbSectionAliasRefs, sizeof(KbStringRef));
  const int64_t triples = record_count(kKbSectionTriples, sizeof(Triple));
  const int64_t subject_offsets =
      record_count(kKbSectionSubjectOffsets, sizeof(uint64_t));
  const int64_t object_offsets =
      record_count(kKbSectionObjectOffsets, sizeof(uint64_t));
  const int64_t objects = record_count(kKbSectionObjects, sizeof(EntityId));
  const int64_t name_keys =
      record_count(kKbSectionNameKeys, sizeof(KbNameKey));
  const int64_t name_ids = record_count(kKbSectionNameIds, sizeof(EntityId));
  const int64_t counts =
      record_count(kKbSectionObjectStringCounts, sizeof(KbObjectStringCount));
  if (types < 0 || predicates < 0 || entities < 0 || alias_refs < 0 ||
      triples < 0 || subject_offsets < 0 || object_offsets < 0 ||
      objects < 0 || name_keys < 0 || name_ids < 0 || counts < 0) {
    return Status::DataLoss(
        "section byte count is not a record-size multiple");
  }
  if (subject_offsets != entities + 1 || object_offsets != entities + 1) {
    return Status::DataLoss(
        StrCat("offset table sizes (", subject_offsets, ", ",
               object_offsets, ") do not match ", entities, " entities"));
  }
  const auto subject_span =
      image.Section<uint64_t>(kKbSectionSubjectOffsets);
  const auto object_span = image.Section<uint64_t>(kKbSectionObjectOffsets);
  if (subject_span.back() != static_cast<uint64_t>(triples)) {
    return Status::DataLoss(
        StrCat("subject offsets end at ", subject_span.back(), " but ",
               triples, " triples are stored"));
  }
  if (object_span.back() != static_cast<uint64_t>(objects)) {
    return Status::DataLoss(
        StrCat("object offsets end at ", object_span.back(), " but ",
               objects, " objects are stored"));
  }
  return Status::Ok();
}

Result<KnowledgeBase> KnowledgeBase::OpenImage(const std::string& path,
                                               OpenOptions options) {
  CERES_ASSIGN_OR_RETURN(KbImage image,
                         KbImage::Map(path, options.verify_checksum));
  CERES_RETURN_IF_ERROR(PrependContext(ValidateImageStructure(image),
                                       StrCat("kb image ", path)));
  if (options.verify_checksum) {
    CERES_RETURN_IF_ERROR(
        PrependContext(image.VerifyRefs(), StrCat("kb image ", path)));
  }
  // Materialize the (small) ontology from the image records; record order
  // is id order on both sides, so ids round-trip unchanged.
  Ontology ontology;
  for (const KbTypeRecord& type : image.Section<KbTypeRecord>(kKbSectionTypes)) {
    ontology.AddEntityType(image.View(type.name), type.is_literal != 0);
  }
  for (const KbPredicateRecord& predicate :
       image.Section<KbPredicateRecord>(kKbSectionPredicates)) {
    ontology.AddPredicate(image.View(predicate.name),
                          predicate.subject_type, predicate.object_type,
                          predicate.multi_valued != 0);
  }
  KnowledgeBase kb(std::move(ontology));
  kb.image_ = std::move(image);
  kb.AttachImage();
  kb.frozen_ = true;
  kb.mapped_ = true;
  return kb;
}

Status KnowledgeBase::SaveImage(const std::string& path) const {
  CERES_CHECK(frozen_);
  return WriteKbImageFile(image_bytes(), path);
}

Entity KnowledgeBase::entity(EntityId id) const {
  CERES_CHECK(id >= 0 && id < num_entities());
  if (!frozen_) {
    const BuildEntity& build = build_entities_[static_cast<size_t>(id)];
    return Entity{id, build.type, build.name, KbAliasRange(&build.aliases)};
  }
  const KbEntityRecord& record = entities_[static_cast<size_t>(id)];
  return Entity{
      id, record.type, image_.View(record.name),
      KbAliasRange(alias_refs_.data() + record.alias_begin,
                   static_cast<size_t>(record.alias_end - record.alias_begin),
                   strings_)};
}

int64_t KnowledgeBase::CountEntitiesOfType(TypeId type) const {
  int64_t count = 0;
  if (frozen_) {
    for (const KbEntityRecord& record : entities_) {
      if (record.type == type) ++count;
    }
  } else {
    for (const BuildEntity& entity : build_entities_) {
      if (entity.type == type) ++count;
    }
  }
  return count;
}

int64_t KnowledgeBase::CountPredicatesForSubjectType(TypeId type) const {
  std::unordered_set<PredicateId> seen;
  for (const Triple& triple : triples()) {
    const TypeId subject_type =
        frozen_ ? entities_[static_cast<size_t>(triple.subject)].type
                : build_entities_[static_cast<size_t>(triple.subject)].type;
    if (subject_type == type) seen.insert(triple.predicate);
  }
  return static_cast<int64_t>(seen.size());
}

std::span<const EntityId> KnowledgeBase::LookupNameKey(
    std::string_view normalized) const {
  auto it = std::lower_bound(
      name_keys_.begin(), name_keys_.end(), normalized,
      [this](const KbNameKey& key, std::string_view probe) {
        return image_.View(key.key) < probe;
      });
  if (it == name_keys_.end() || image_.View(it->key) != normalized) {
    return {};
  }
  return name_ids_.subspan(it->ids_begin, it->ids_end - it->ids_begin);
}

std::span<const EntityId> KnowledgeBase::MatchMentionsView(
    std::string_view text) const {
  CERES_CHECK(frozen_);
  std::span<const EntityId> hit;
  if (has_name_index_) {
    hit = name_index_.MatchView(text);
  } else {
    // Mapped KB: binary search the image's sorted key section with the
    // same normalize -> lookup -> year-strip-retry ladder as FuzzyMatcher
    // (identical match lists; O(log keys) instead of O(1), the price of
    // an O(1) open).
    thread_local std::string scratch;
    NormalizeTextInto(text, &scratch);
    if (!scratch.empty()) {
      hit = LookupNameKey(scratch);
      if (hit.empty()) {
        std::string_view stripped = StripTrailingYearView(scratch);
        if (stripped.size() != scratch.size() && !stripped.empty()) {
          hit = LookupNameKey(stripped);
        }
      }
      if (obs::Enabled()) {
        static obs::Counter* const lookups =
            obs::MetricsRegistry::Default().GetCounter(
                "ceres_fuzzy_lookups_total");
        static obs::Counter* const hits =
            obs::MetricsRegistry::Default().GetCounter(
                "ceres_fuzzy_hits_total");
        lookups->Increment();
        if (!hit.empty()) hits->Increment();
      }
    }
  }
  // Same one-branch guard as FuzzyMatcher::MatchView: KB mention lookups
  // are the entity-matching hot path, so the disabled cost is one relaxed
  // load.
  if (obs::Enabled()) {
    static obs::Counter* const lookups =
        obs::MetricsRegistry::Default().GetCounter(
            "ceres_kb_mention_lookups_total");
    static obs::Counter* const hits =
        obs::MetricsRegistry::Default().GetCounter(
            "ceres_kb_mention_hits_total");
    lookups->Increment();
    if (!hit.empty()) hits->Increment();
  }
  return hit;
}

std::vector<EntityId> KnowledgeBase::MatchMentions(
    std::string_view text) const {
  std::span<const EntityId> hit = MatchMentionsView(text);
  return std::vector<EntityId>(hit.begin(), hit.end());
}

std::span<const Triple> KnowledgeBase::TriplesWithSubject(
    EntityId subject) const {
  CERES_CHECK(frozen_);
  if (subject < 0 || subject >= num_entities()) return {};
  const size_t begin = subject_offsets_[static_cast<size_t>(subject)];
  const size_t end = subject_offsets_[static_cast<size_t>(subject) + 1];
  return triples_.subspan(begin, end - begin);
}

std::span<const EntityId> KnowledgeBase::ObjectsOfSubject(
    EntityId subject) const {
  CERES_CHECK(frozen_);
  if (subject < 0 || subject >= num_entities()) return {};
  const size_t begin = object_offsets_[static_cast<size_t>(subject)];
  const size_t end = object_offsets_[static_cast<size_t>(subject) + 1];
  return objects_.subspan(begin, end - begin);
}

std::vector<PredicateId> KnowledgeBase::PredicatesBetween(
    EntityId subject, EntityId object) const {
  std::vector<PredicateId> out;
  for (const Triple& triple : TriplesWithSubject(subject)) {
    if (triple.object == object) out.push_back(triple.predicate);
  }
  return out;
}

bool KnowledgeBase::HasTriple(EntityId subject, PredicateId predicate,
                              EntityId object) const {
  // The subject slice is sorted by (predicate, object), so membership is a
  // binary search rather than a scan over the subject's triples.
  std::span<const Triple> slice = TriplesWithSubject(subject);
  const Triple probe{subject, predicate, object};
  return std::binary_search(slice.begin(), slice.end(), probe,
                            [](const Triple& a, const Triple& b) {
                              if (a.predicate != b.predicate) {
                                return a.predicate < b.predicate;
                              }
                              return a.object < b.object;
                            });
}

std::unordered_set<std::string> KnowledgeBase::CommonObjectStrings(
    double fraction, int64_t min_count) const {
  CERES_CHECK(frozen_);
  std::unordered_set<std::string> out;
  if (triples_.empty()) return out;
  const double threshold =
      std::max(fraction * static_cast<double>(triples_.size()),
               static_cast<double>(min_count));
  for (const KbObjectStringCount& record : object_string_counts_) {
    if (static_cast<double>(record.count) >= threshold) {
      out.insert(std::string(image_.View(record.key)));
    }
  }
  return out;
}

}  // namespace ceres
