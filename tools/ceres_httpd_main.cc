// ceres_httpd — the network serving front-end over a sharded extraction
// tier.
//
// Builds an SWDE-style movie corpus, trains a per-site extractor offline
// (the regular CERES pipeline), publishes each model into the sharded
// service's per-shard stores, then serves extraction over HTTP/1.1:
//
//   POST /extract?site=S   body: page HTML  ->  extraction JSON
//   GET  /healthz /metrics /stats
//   POST /admin/invalidate?site=S   POST /admin/drain
//
// Requests are partitioned across --shards independent ModelRegistry +
// ExtractionService pairs by stable site hash, and fronted by a simhash
// near-duplicate page cache: a re-crawled page whose fingerprint is
// within the Hamming threshold of a cached page skips parse and
// inference entirely.
//
// Prints "LISTENING <port>" on stdout once ready (machine-readable for
// drivers). Exits on SIGINT/SIGTERM or POST /admin/drain, in both cases
// through the graceful drain path: stop accepting, finish and flush
// every in-flight request, then stop. Final stats print on exit.
//
// Usage:
//   ceres_httpd [--port 0] [--shards 2] [--threads 4] [--sites 3]
//               [--scale 0.25] [--seed 100] [--store DIR]
//               [--rate N] [--burst N] [--cache-mb N] [--hamming N]
//               [--no-cache] [--force-poll] [--verbose]

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "obs/metrics.h"
#include "serve/http_frontend.h"
#include "serve/sharded_service.h"
#include "synth/corpora.h"
#include "util/logging.h"

namespace {

using namespace ceres;  // NOLINT(build/namespaces)

struct Options {
  uint16_t port = 0;
  int shards = 2;
  int threads = 4;
  size_t sites = 3;
  double scale = 0.25;
  uint64_t seed = 100;
  std::string store;
  double rate = 0.0;  // tokens/second per client; 0 = unlimited
  double burst = 16.0;
  size_t cache_mb = 32;
  int hamming = 3;
  bool no_cache = false;
  bool force_poll = false;
  bool verbose = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: ceres_httpd [--port N] [--shards N] [--threads N]\n"
               "  [--sites N] [--scale X] [--seed N] [--store DIR]\n"
               "  [--rate N] [--burst N] [--cache-mb N] [--hamming N]\n"
               "  [--no-cache] [--force-poll] [--verbose]\n");
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--port" && next(&value)) {
      options->port =
          static_cast<uint16_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (arg == "--shards" && next(&value)) {
      options->shards =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (arg == "--threads" && next(&value)) {
      options->threads =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (arg == "--sites" && next(&value)) {
      options->sites =
          static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (arg == "--scale" && next(&value)) {
      options->scale = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--seed" && next(&value)) {
      options->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--store" && next(&value)) {
      options->store = value;
    } else if (arg == "--rate" && next(&value)) {
      options->rate = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--burst" && next(&value)) {
      options->burst = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--cache-mb" && next(&value)) {
      options->cache_mb =
          static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (arg == "--hamming" && next(&value)) {
      options->hamming =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (arg == "--no-cache") {
      options->no_cache = true;
    } else if (arg == "--force-poll") {
      options->force_poll = true;
    } else if (arg == "--verbose") {
      options->verbose = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return options->shards >= 1 && options->threads >= 1 &&
         options->sites >= 1;
}

volatile std::sig_atomic_t g_signal = 0;
void OnSignal(int) { g_signal = 1; }

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  if (options.verbose) SetLogLevel(LogLevel::kInfo);
  obs::SetEnabled(true);
  if (options.store.empty()) {
    options.store = (std::filesystem::temp_directory_path() /
                     "ceres_httpd_store").string();
    std::filesystem::remove_all(options.store);
  }

  // --- Offline: corpus, per-site training, publish into shards. ----------
  synth::Corpus corpus = synth::MakeSwdeCorpus(
      synth::SwdeVertical::kMovie, options.scale, options.seed);
  const size_t num_sites = std::min(options.sites, corpus.sites.size());

  serve::ShardedServiceConfig config;
  config.num_shards = options.shards;
  config.service.worker_threads = options.threads;
  config.registry.root_dir = options.store;
  config.cache.enabled = !options.no_cache;
  config.cache.max_bytes = options.cache_mb << 20;
  config.cache.hamming_threshold = options.hamming;
  serve::ShardedExtractionService service(corpus.seed_kb.ontology(),
                                          config);

  size_t published = 0;
  for (size_t s = 0; s < num_sites; ++s) {
    const synth::SyntheticSite& site = corpus.sites[s];
    std::vector<DomDocument> pages;
    for (const synth::GeneratedPage& page : site.pages) {
      Result<DomDocument> doc = ParseHtml(page.html);
      if (!doc.ok()) {
        std::fprintf(stderr, "generator produced unparseable page: %s\n",
                     doc.status().ToString().c_str());
        return 1;
      }
      pages.push_back(std::move(doc).value());
    }
    PipelineConfig pipeline_config;
    for (size_t i = 0; i < pages.size(); i += 2) {
      pipeline_config.annotation_pages.push_back(
          static_cast<PageIndex>(i));
    }
    pipeline_config.extraction_pages = pipeline_config.annotation_pages;
    Result<PipelineResult> trained =
        RunPipeline(pages, corpus.seed_kb, pipeline_config);
    if (!trained.ok() || trained->models.empty()) {
      std::fprintf(stderr, "site %s: training produced no model\n",
                   site.name.c_str());
      continue;
    }
    Result<int64_t> version =
        service.Publish(site.name, trained->models.front().model);
    if (!version.ok()) {
      std::fprintf(stderr, "site %s: publish failed: %s\n",
                   site.name.c_str(), version.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "site %-24s model v%lld published (shard %zu)\n",
                 site.name.c_str(), static_cast<long long>(*version),
                 service.ShardOf(site.name));
    ++published;
  }
  if (published == 0) {
    std::fprintf(stderr, "no site trained a model; nothing to serve\n");
    return 1;
  }

  Status started = service.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "service start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  serve::FrontendConfig frontend_config;
  frontend_config.http.port = options.port;
  frontend_config.http.force_poll = options.force_poll;
  frontend_config.http.rate_limit.tokens_per_second = options.rate;
  frontend_config.http.rate_limit.burst = options.burst;
  serve::ExtractionFrontend frontend(&service, frontend_config);
  started = frontend.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "frontend start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::printf("LISTENING %u\n", frontend.port());
  std::fflush(stdout);

  // Park until a drain is requested over HTTP or by signal. The wait has
  // a short deadline per iteration so signals are observed promptly.
  while (g_signal == 0 && !frontend.drain_requested()) {
    frontend.WaitForDrainRequest(
        Deadline::After(std::chrono::milliseconds(200)));
  }

  std::fprintf(stderr, "draining...\n");
  Status drained =
      frontend.Drain(Deadline::After(std::chrono::seconds(10)));
  if (!drained.ok()) {
    std::fprintf(stderr, "drain: %s\n", drained.ToString().c_str());
  }
  const net::HttpServerStats http = frontend.server_stats();
  frontend.Stop();
  service.Stop();

  const serve::ShardedServiceStats stats = service.stats();
  int64_t completed = 0;
  int64_t shed = 0;
  for (const serve::ServiceStats& per_shard : stats.per_shard) {
    completed += per_shard.completed;
    shed += per_shard.total_shed();
  }
  std::fprintf(stderr,
               "http: requests %lld responses %lld rate_limited %lld "
               "parse_errors %lld drained %lld\n",
               static_cast<long long>(http.requests),
               static_cast<long long>(http.responses),
               static_cast<long long>(http.rate_limited),
               static_cast<long long>(http.parse_errors),
               static_cast<long long>(http.drained));
  std::fprintf(stderr,
               "service: completed %lld shed %lld  cache: hits %lld "
               "misses %lld entries %zu\n",
               static_cast<long long>(completed),
               static_cast<long long>(shed),
               static_cast<long long>(stats.cache.hits),
               static_cast<long long>(stats.cache.misses),
               stats.cache.entries);
  return drained.ok() ? 0 : 1;
}
