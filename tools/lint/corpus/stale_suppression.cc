// Corpus: an allow-comment that pays for nothing (linted under any
// path). Exactly one stale-suppression violation — the allow on a line
// where no ignored-status diagnostic fires; the void function's bare call
// is not a Status call, so the suppression is dead weight. Never
// compiled — linted by tests/lint/ceres_lint_test.cc.

namespace ceres {

void Fine();

void Caller() {
  Fine();  // ceres-lint: allow(ignored-status)
}

}  // namespace ceres
