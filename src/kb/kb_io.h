#ifndef CERES_KB_KB_IO_H_
#define CERES_KB_KB_IO_H_

#include <iosfwd>
#include <string>

#include "kb/knowledge_base.h"
#include "util/status.h"

namespace ceres {

/// Text serialization of a KnowledgeBase, for loading real seed KBs into
/// the extractor and for exporting synthetic ones.
///
/// The format is a single TSV-style text document with three sections:
///
///   #types
///   <name> \t <literal|entity>
///   #predicates
///   <name> \t <subject type> \t <object type> \t <multi|single>
///   #entities
///   <id> \t <type name> \t <name> [\t alias]...
///   #triples
///   <subject id> \t <predicate name> \t <object id>
///
/// Ids are the caller's; they are remapped to dense internal ids on load.
/// Lines starting with '#' other than section headers, and blank lines,
/// are ignored. Tabs inside names are not supported (rejected on save).

/// Writes `kb` to `out`. The KB must be frozen.
Status SaveKb(const KnowledgeBase& kb, std::ostream* out);

/// Convenience: SaveKb to a file path.
Status SaveKbToFile(const KnowledgeBase& kb, const std::string& path);

/// Parses a serialized KB. Returns a frozen KnowledgeBase or a
/// kInvalidArgument status naming the offending line.
Result<KnowledgeBase> LoadKb(std::istream* in);

/// Convenience: LoadKb from a file path (kNotFound if unreadable).
Result<KnowledgeBase> LoadKbFromFile(const std::string& path);

}  // namespace ceres

#endif  // CERES_KB_KB_IO_H_
