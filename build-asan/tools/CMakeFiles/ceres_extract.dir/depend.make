# Empty dependencies file for ceres_extract.
# This may be replaced when dependencies are built.
