#include "core/features.h"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "dom/dom_utils.h"
#include "text/normalize.h"
#include "util/string_pool.h"

namespace ceres {

namespace {

// Tracked attribute names, pre-interned so DomDocument::Attribute resolves
// them by pointer comparison against the parser-interned names.
const std::array<std::string_view, 5>& TrackedAttributes() {
  static const auto* kAttrs = [] {
    util::StringPool& pool = util::StringPool::Global();
    return new std::array<std::string_view, 5>{
        pool.Intern("class"), pool.Intern("id"), pool.Intern("itemprop"),
        pool.Intern("itemtype"), pool.Intern("property")};
  }();
  return *kAttrs;
}

void EmitFeature(const FeatureIdBuilder& feature, const std::string& name,
                 FeatureNameTrace* trace, HashedFeatureMap* map,
                 SparseVector* out) {
  const int32_t index = map->GetOrAdd(feature.id());
  if (index >= 0) out->Add(index, 1.0);
  if (trace != nullptr) trace->Record(feature.id(), name);
}

// Emits the (attribute, value, level, sibling) tuples of one examined node.
// The legacy names were "<prefix>S|l=<level>|s=<offset>|tag=<tag>" and
// "<prefix>S|l=<level>|s=<offset>|<attr>=<value>"; the shared stem is hashed
// once per examined node and forked per emission.
void EmitNodeTuples(const DomDocument& doc, NodeId id, int level,
                    int sibling_offset, std::string_view prefix,
                    HashedFeatureMap* map, SparseVector* out,
                    FeatureNameTrace* trace) {
  const bool tracing = trace != nullptr;
  std::string stem_name;
  std::string name;
  FeatureIdBuilder stem(tracing ? &stem_name : nullptr);
  stem.Add(prefix)
      .Add("S|l=")
      .AddInt(level)
      .Add("|s=")
      .AddInt(sibling_offset)
      .Add('|');
  const DomNode& node = doc.node(id);
  {
    if (tracing) name.assign(stem_name);
    FeatureIdBuilder feature = stem.WithSink(tracing ? &name : nullptr);
    feature.Add("tag=").Add(node.tag);
    EmitFeature(feature, name, trace, map, out);
  }
  for (std::string_view attr : TrackedAttributes()) {
    std::string_view value = doc.Attribute(id, attr);
    if (value.empty()) continue;
    if (tracing) name.assign(stem_name);
    FeatureIdBuilder feature = stem.WithSink(tracing ? &name : nullptr);
    feature.Add(attr).Add('=').Add(value);
    EmitFeature(feature, name, trace, map, out);
  }
}

}  // namespace

FeatureExtractor::FeatureExtractor(
    const std::vector<const DomDocument*>& pages, FeatureConfig config)
    : config_(config) {
  if (!config_.text_features || pages.empty()) return;
  // Mine strings that repeat across pages; these are the static labels
  // ("Director:", "Genres") that anchor text features. Pages are scanned
  // concurrently into per-page slots, then merged in page order; counting
  // is commutative, so the lexicon is identical at any thread count. A
  // page scanned after the deadline expires contributes nothing (same
  // monotonic cutoff the serial loop had).
  std::vector<std::unordered_set<std::string>> per_page(pages.size());
  ParallelFor(pages.size(), config_.parallel, [&](size_t i) {
    if (config_.deadline.expired()) return;
    std::unordered_set<std::string>& on_page = per_page[i];
    std::string norm;
    for (NodeId id : pages[i]->TextFields()) {
      NormalizeTextInto(pages[i]->node(id).text, &norm);
      if (!norm.empty() && norm.size() <= 60) on_page.insert(norm);
    }
  });
  std::unordered_map<std::string, size_t> page_counts;
  for (const std::unordered_set<std::string>& on_page : per_page) {
    for (const std::string& s : on_page) ++page_counts[s];
  }
  // Floor of two pages: a string seen on a single page is a value, not a
  // template label, no matter how small the site is.
  const double min_pages = std::max(
      pages.size() > 1 ? 2.0 : 1.0,
      config_.frequent_string_page_fraction * static_cast<double>(pages.size()));
  std::vector<std::pair<std::string, size_t>> qualified;
  for (auto& [text, count] : page_counts) {
    if (static_cast<double>(count) >= min_pages) {
      qualified.emplace_back(text, count);
    }
  }
  std::sort(qualified.begin(), qualified.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (qualified.size() > config_.max_frequent_strings) {
    qualified.resize(config_.max_frequent_strings);
  }
  for (auto& [text, count] : qualified) {
    frequent_strings_.insert(std::move(text));
  }
}

FeatureExtractor::FeatureExtractor(
    std::unordered_set<std::string> frequent_strings, FeatureConfig config)
    : config_(config), frequent_strings_(std::move(frequent_strings)) {}

void FeatureExtractor::AddStructural(const DomDocument& doc, NodeId node,
                                     std::string_view prefix,
                                     HashedFeatureMap* map, SparseVector* out,
                                     FeatureNameTrace* trace) const {
  // The node itself (level 0, sibling 0), its ancestors (level k, sibling
  // 0), and each examined node's siblings within the window.
  int level = 0;
  NodeId cur = node;
  while (cur != kInvalidNode) {
    EmitNodeTuples(doc, cur, level, 0, prefix, map, out, trace);
    ForEachSiblingInWindow(
        doc, cur, config_.sibling_window, [&](NodeId sibling) {
          int offset = doc.node(sibling).child_position -
                       doc.node(cur).child_position;
          EmitNodeTuples(doc, sibling, level, offset, prefix, map, out, trace);
        });
    cur = doc.node(cur).parent;
    ++level;
  }
}

void FeatureExtractor::AddText(const DomDocument& doc, NodeId node,
                               std::string_view prefix, HashedFeatureMap* map,
                               SparseVector* out,
                               NormalizedTextCache* text_cache,
                               FeatureNameTrace* trace) const {
  const bool tracing = trace != nullptr;
  // Scratch used only on the cache-less path; with a cache the normalized
  // strings are computed once per document, not once per featurized field.
  std::string scratch;
  std::string name;
  auto normalized = [&](NodeId id) -> const std::string& {
    if (text_cache != nullptr) return text_cache->Normalized(id);
    NormalizeTextInto(doc.node(id).text, &scratch);
    return scratch;
  };
  // Legacy names were "<prefix>T|<relation>|<norm>"; `compose_relation`
  // feeds the relation bytes ("self", "l2", "l1s-3", "l1s-3c").
  auto emit_text = [&](const std::string& norm, auto compose_relation) {
    name.clear();
    FeatureIdBuilder feature(tracing ? &name : nullptr);
    feature.Add(prefix).Add("T|");
    compose_relation(feature);
    feature.Add('|').Add(norm);
    EmitFeature(feature, name, trace, map, out);
  };
  auto consider = [&](NodeId nearby, auto compose_relation) {
    if (nearby == kInvalidNode || nearby == node) return;
    if (!doc.node(nearby).HasText()) return;
    const std::string& norm = normalized(nearby);
    if (frequent_strings_.count(norm) == 0) return;
    emit_text(norm, compose_relation);
  };

  // The node's own text, when it is itself a frequent site string, is a
  // strong OTHER signal (boilerplate labels).
  if (doc.node(node).HasText()) {
    const std::string& norm = normalized(node);
    if (frequent_strings_.count(norm) > 0) {
      emit_text(norm, [](FeatureIdBuilder& b) { b.Add("self"); });
    }
  }

  // Nearby nodes: for the node and its first few ancestors, the siblings
  // within the window (and the ancestor itself).
  NodeId cur = node;
  for (int level = 0;
       level <= config_.text_feature_levels && cur != kInvalidNode;
       ++level) {
    if (level > 0) {
      consider(cur, [&](FeatureIdBuilder& b) { b.Add('l').AddInt(level); });
    }
    ForEachSiblingInWindow(
        doc, cur, config_.sibling_window, [&](NodeId sibling) {
          int offset =
              doc.node(sibling).child_position - doc.node(cur).child_position;
          consider(sibling, [&](FeatureIdBuilder& b) {
            b.Add('l').AddInt(level).Add('s').AddInt(offset);
          });
          // Labels often live one level down inside a sibling wrapper
          // (e.g. <div><h4>Director:</h4>...</div>), so peek at its
          // children.
          for (NodeId child : doc.children(sibling)) {
            consider(child, [&](FeatureIdBuilder& b) {
              b.Add('l').AddInt(level).Add('s').AddInt(offset).Add('c');
            });
          }
        });
    cur = doc.node(cur).parent;
  }
}

SparseVector FeatureExtractor::Extract(const DomDocument& doc, NodeId node,
                                       HashedFeatureMap* map,
                                       std::string_view name_prefix,
                                       NormalizedTextCache* text_cache,
                                       FeatureNameTrace* trace) const {
  SparseVector out;
  out.Reserve(64);
  if (config_.structural_features) {
    AddStructural(doc, node, name_prefix, map, &out, trace);
  }
  if (config_.text_features) {
    AddText(doc, node, name_prefix, map, &out, text_cache, trace);
  }
  out.Finalize();
  return out;
}

}  // namespace ceres
