file(REMOVE_RECURSE
  "CMakeFiles/clustering_ablation.dir/clustering_ablation.cc.o"
  "CMakeFiles/clustering_ablation.dir/clustering_ablation.cc.o.d"
  "clustering_ablation"
  "clustering_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
