#include "ml/feature_id.h"

#include <gtest/gtest.h>

#include <string>

#include "util/string_util.h"

namespace ceres {
namespace {

TEST(FeatureIdBuilderTest, MatchesFnv1a64OfTheComposedName) {
  FeatureIdBuilder b;
  b.Add("S|l=").AddInt(2).Add("|s=").AddInt(-3).Add('|').Add("tag=span");
  EXPECT_EQ(b.id(), Fnv1a64("S|l=2|s=-3|tag=span"));
}

TEST(FeatureIdBuilderTest, AddIntFormatsLikeDecimalStreams) {
  for (int64_t v : {0ll, 1ll, -1ll, 42ll, -42ll, 1234567890123ll,
                    -1234567890123ll}) {
    FeatureIdBuilder b;
    b.AddInt(v);
    EXPECT_EQ(b.id(), Fnv1a64(std::to_string(v))) << v;
  }
}

TEST(FeatureIdBuilderTest, NameSinkMirrorsEveryByte) {
  std::string name;
  FeatureIdBuilder b(&name);
  b.Add("T|").Add('l').AddInt(2).Add('s').AddInt(-1).Add('c').Add('|').Add(
      "director");
  EXPECT_EQ(name, "T|l2s-1c|director");
  EXPECT_EQ(b.id(), Fnv1a64(name));
}

TEST(FeatureIdBuilderTest, WithSinkForksHashState) {
  std::string stem_name;
  FeatureIdBuilder stem(&stem_name);
  stem.Add("S|l=0|s=0|");

  std::string name_a = stem_name;
  FeatureIdBuilder a = stem.WithSink(&name_a);
  a.Add("tag=div");
  EXPECT_EQ(name_a, "S|l=0|s=0|tag=div");
  EXPECT_EQ(a.id(), Fnv1a64(name_a));

  // The fork did not disturb the stem: a second fork produces the sibling
  // feature from the same prefix.
  std::string name_b = stem_name;
  FeatureIdBuilder b = stem.WithSink(&name_b);
  b.Add("class=x");
  EXPECT_EQ(name_b, "S|l=0|s=0|class=x");
  EXPECT_EQ(b.id(), Fnv1a64(name_b));
  EXPECT_EQ(stem_name, "S|l=0|s=0|");
}

TEST(FeatureNameTraceTest, RecordsFirstNameAndLooksUp) {
  FeatureNameTrace trace;
  trace.Record(7, "first");
  trace.Record(7, "second");  // First occurrence wins.
  EXPECT_EQ(trace.NameOf(7), "first");
  EXPECT_EQ(trace.NameOf(8), "");
  EXPECT_EQ(trace.size(), 1u);
}

}  // namespace
}  // namespace ceres
