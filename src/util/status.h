#ifndef CERES_UTIL_STATUS_H_
#define CERES_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace ceres {

/// Error categories used across the library. Library code does not throw
/// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  /// Stored data is unreadable or failed integrity checks (truncated or
  /// corrupt on-disk image, checksum mismatch). Unlike kInvalidArgument
  /// this indicates the artifact itself is damaged, not the request.
  kDataLoss,
};

/// A lightweight status object carrying an error code and message.
///
/// Mirrors the absl::Status idiom: functions that can fail return Status (or
/// Result<T> when they also produce a value); `ok()` must be checked before
/// using any produced value.
///
/// The type is [[nodiscard]]: silently dropping a returned Status is a
/// compile-time warning (an error under CERES_WERROR) and a ceres_lint
/// diagnostic. Discard deliberately with `(void)Expr();`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  [[nodiscard]] static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INVALID_ARGUMENT: empty page set".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder, the no-exceptions analogue of absl::StatusOr.
///
/// Either holds a value of type T (status().ok() is true) or an error Status.
/// Accessing value() when not ok() aborts the process.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value; the common success path.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  /// Implicit construction from an error status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNotOk() const;

  Status status_;
  std::optional<T> value_;
};

/// Returns `status` unchanged when OK; otherwise prepends "context: " to its
/// message, preserving the code. Use to add caller context while an error
/// propagates ("loading seed.kb: line 7: bad entity id").
[[nodiscard]] Status PrependContext(Status status, std::string_view context);

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);

inline Status AnnotateError(Status status) { return status; }
inline Status AnnotateError(Status status, std::string_view context) {
  return PrependContext(std::move(status), context);
}
}  // namespace internal

template <typename T>
void Result<T>::AbortIfNotOk() const {
  if (!status_.ok()) internal::DieOnBadResultAccess(status_);
}

}  // namespace ceres

/// Propagates an error Status from an expression that returns Status.
#define CERES_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::ceres::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (false)

#define CERES_STATUS_CONCAT_INNER_(x, y) x##y
#define CERES_STATUS_CONCAT_(x, y) CERES_STATUS_CONCAT_INNER_(x, y)

/// Evaluates `rexpr` (an expression yielding Result<T>); on error returns
/// its Status from the enclosing function, otherwise assigns the value to
/// `lhs` (which may be a declaration). An optional third argument prepends
/// context to a propagated error:
///
///   CERES_ASSIGN_OR_RETURN(KnowledgeBase kb, LoadKb(&in));
///   CERES_ASSIGN_OR_RETURN(kb, LoadKb(&in), StrCat("loading ", path));
#define CERES_ASSIGN_OR_RETURN(lhs, rexpr, ...)                           \
  CERES_ASSIGN_OR_RETURN_IMPL_(                                           \
      CERES_STATUS_CONCAT_(_ceres_result_, __LINE__), lhs,                \
      rexpr __VA_OPT__(, ) __VA_ARGS__)

#define CERES_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr, ...)             \
  auto result = (rexpr);                                                  \
  if (!result.ok()) {                                                     \
    return ::ceres::internal::AnnotateError(                              \
        std::move(result).status() __VA_OPT__(, ) __VA_ARGS__);           \
  }                                                                       \
  lhs = std::move(result).value()

#endif  // CERES_UTIL_STATUS_H_
