#include "kb/ontology.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace ceres {

TypeId Ontology::AddEntityType(std::string_view name, bool is_literal) {
  std::string key(name);
  CERES_CHECK_MSG(type_by_name_.count(key) == 0,
                  "duplicate entity type " << key);
  TypeId id = static_cast<TypeId>(types_.size());
  types_.push_back(EntityTypeDecl{id, key, is_literal});
  type_by_name_[key] = id;
  return id;
}

PredicateId Ontology::AddPredicate(std::string_view name, TypeId subject_type,
                                   TypeId object_type, bool multi_valued) {
  std::string key(name);
  CERES_CHECK_MSG(predicate_by_name_.count(key) == 0,
                  "duplicate predicate " << key);
  CERES_CHECK(subject_type >= 0 && subject_type < num_types());
  CERES_CHECK(object_type >= 0 && object_type < num_types());
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back(
      PredicateDecl{id, key, subject_type, object_type, multi_valued});
  predicate_by_name_[key] = id;
  return id;
}

Result<TypeId> Ontology::TypeByName(std::string_view name) const {
  auto it = type_by_name_.find(std::string(name));
  if (it == type_by_name_.end()) {
    return Status::NotFound(StrCat("entity type not declared: ", name));
  }
  return it->second;
}

Result<PredicateId> Ontology::PredicateByName(std::string_view name) const {
  auto it = predicate_by_name_.find(std::string(name));
  if (it == predicate_by_name_.end()) {
    return Status::NotFound(StrCat("predicate not declared: ", name));
  }
  return it->second;
}

const EntityTypeDecl& Ontology::entity_type(TypeId id) const {
  CERES_CHECK(id >= 0 && id < num_types());
  return types_[id];
}

const PredicateDecl& Ontology::predicate(PredicateId id) const {
  CERES_CHECK(id >= 0 && id < num_predicates());
  return predicates_[id];
}

}  // namespace ceres
