#ifndef CERES_CORE_TYPES_H_
#define CERES_CORE_TYPES_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dom/dom_tree.h"
#include "kb/knowledge_base.h"

namespace ceres {

/// Index of a page within the site (the vector of documents handed to the
/// pipeline).
using PageIndex = int;

/// All KB entity mentions found on one page by the entity matcher
/// (§3.1.1 step 1).
struct PageMentions {
  /// Every entity with at least one matching text field — the pageSet of
  /// Equation (1).
  std::unordered_set<EntityId> page_set;
  /// Nodes mentioning each entity, in document order.
  std::unordered_map<EntityId, std::vector<NodeId>> mentions_of;
  /// Candidate entities per text field, parallel to `fields`.
  std::vector<NodeId> fields;
  std::vector<std::vector<EntityId>> candidates;
};

/// A positive training annotation: this node of this page expresses
/// `predicate` between the page topic and `object`. The topic node itself
/// is annotated with the reserved NAME label (predicate == kNamePredicate).
struct Annotation {
  PageIndex page = 0;
  NodeId node = kInvalidNode;
  PredicateId predicate = kInvalidPredicate;
  EntityId object = kInvalidEntity;
};

/// Sentinel predicate id for the page-topic "name" relation (§4).
inline constexpr PredicateId kNamePredicate = -2;

/// One extracted fact: subject and object are strings found on the page
/// (§2.1 Definition 2.1) plus the model confidence.
struct Extraction {
  PageIndex page = 0;
  NodeId node = kInvalidNode;
  PredicateId predicate = kInvalidPredicate;
  std::string subject;
  std::string object;
  double confidence = 0.0;
};

/// Maps ontology predicates onto dense classifier classes. Class 0 is
/// OTHER, class 1 is NAME, predicates follow.
class ClassMap {
 public:
  static constexpr int32_t kOtherClass = 0;
  static constexpr int32_t kNameClass = 1;

  ClassMap() = default;

  /// Builds the map for the full ontology of `kb`.
  explicit ClassMap(const Ontology& ontology) {
    for (const PredicateDecl& pred : ontology.predicates()) {
      class_of_[pred.id] = static_cast<int32_t>(2 + predicates_.size());
      predicates_.push_back(pred.id);
    }
  }

  int32_t num_classes() const {
    return static_cast<int32_t>(2 + predicates_.size());
  }

  /// Class of a predicate (kNamePredicate maps to the NAME class).
  int32_t ClassOf(PredicateId predicate) const {
    if (predicate == kNamePredicate) return kNameClass;
    auto it = class_of_.find(predicate);
    return it == class_of_.end() ? kOtherClass : it->second;
  }

  /// Predicate of a class; kInvalidPredicate for OTHER, kNamePredicate for
  /// NAME.
  PredicateId PredicateOf(int32_t cls) const {
    if (cls == kOtherClass) return kInvalidPredicate;
    if (cls == kNameClass) return kNamePredicate;
    return predicates_[static_cast<size_t>(cls - 2)];
  }

 private:
  std::unordered_map<PredicateId, int32_t> class_of_;
  std::vector<PredicateId> predicates_;
};

}  // namespace ceres

#endif  // CERES_CORE_TYPES_H_
