// Table 8 — Per-site breakdown on the 33-site long-tail corpus at the 0.5
// confidence threshold: pages, annotated pages, annotations, extractions,
// the extraction/annotation leverage ratios, and ground-truth precision.
//
// Paper shape highlights reproduced by the synthetic corpus: mainstream
// sites (themoviedb, rottentomatoes) at >= 0.9 precision; non-English
// sites performing on par; sites with semantic-ambiguity quirks
// (spicyonion, christianfilmdatabase, laborfilms) well below average;
// chart-only boxofficemojo and near-zero-overlap bcdb/bmxmdb correctly
// producing nothing.

#include <cstdio>
#include <set>

#include "bench/longtail_common.h"

int main() {
  using namespace ceres;         // NOLINT(build/namespaces)
  using namespace ceres::bench;  // NOLINT(build/namespaces)
  const double scale = synth::EnvScale();
  std::printf(
      "Table 8: long-tail per-site results at 0.5 confidence "
      "(scale=%.2f)\n\n",
      scale);

  ParsedCorpus corpus = ParseCorpus(synth::MakeLongTailCorpus(scale));
  std::vector<LongTailSiteRun> runs = RunLongTail(corpus);

  eval::TableReport table({"Website", "Focus", "#Pages", "#AnnPages",
                           "#Annotations", "#Extractions", "Extr/AnnPages",
                           "Extr/Ann", "Precision"});
  int64_t total_pages = 0;
  int64_t total_ann_pages = 0;
  int64_t total_annotations = 0;
  ThresholdPoint total;
  int64_t total_extracted_pages = 0;

  for (const LongTailSiteRun& run : runs) {
    ThresholdPoint point = CountAtThreshold(run, 0.5);
    std::set<PageIndex> extracted_pages;
    for (const Extraction& extraction : run.result.extractions) {
      if (extraction.confidence >= 0.5 &&
          extraction.predicate != kNamePredicate) {
        extracted_pages.insert(extraction.page);
      }
    }
    const bool any = point.extractions > 0;
    const double page_ratio =
        run.annotated_pages == 0
            ? 0.0
            : static_cast<double>(extracted_pages.size()) /
                  static_cast<double>(run.annotated_pages);
    const double ann_ratio =
        run.annotations == 0
            ? 0.0
            : static_cast<double>(point.extractions) /
                  static_cast<double>(run.annotations);
    table.AddRow({run.site->name, run.site->focus,
                  std::to_string(run.num_pages),
                  std::to_string(run.annotated_pages),
                  std::to_string(run.annotations),
                  std::to_string(point.extractions),
                  eval::FormatRatio(page_ratio),
                  eval::FormatRatio(ann_ratio),
                  eval::RatioOrNa(any, point.precision())});
    total_pages += run.num_pages;
    total_ann_pages += run.annotated_pages;
    total_annotations += run.annotations;
    total.extractions += point.extractions;
    total.correct += point.correct;
    total_extracted_pages += static_cast<int64_t>(extracted_pages.size());
  }
  table.AddRow(
      {"Total", "-", std::to_string(total_pages),
       std::to_string(total_ann_pages), std::to_string(total_annotations),
       std::to_string(total.extractions),
       eval::FormatRatio(total_ann_pages == 0
                             ? 0.0
                             : static_cast<double>(total_extracted_pages) /
                                   static_cast<double>(total_ann_pages)),
       eval::FormatRatio(total_annotations == 0
                             ? 0.0
                             : static_cast<double>(total.extractions) /
                                   static_cast<double>(total_annotations)),
       eval::FormatRatio(total.precision())});
  table.Print();
  std::printf(
      "\nPaper (Table 8): 433,832 pages; 70,050 annotated pages; 414,074 "
      "annotations; 1,688,913 extractions (ratio 4.08 per annotation); "
      "average precision 0.83. Degenerate sites (bcdb, bmxmdb, "
      "boxofficemojo) correctly produce 0 extractions.\n");
  return 0;
}
