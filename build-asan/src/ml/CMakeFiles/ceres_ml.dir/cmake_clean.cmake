file(REMOVE_RECURSE
  "CMakeFiles/ceres_ml.dir/agglomerative.cc.o"
  "CMakeFiles/ceres_ml.dir/agglomerative.cc.o.d"
  "CMakeFiles/ceres_ml.dir/feature_map.cc.o"
  "CMakeFiles/ceres_ml.dir/feature_map.cc.o.d"
  "CMakeFiles/ceres_ml.dir/lbfgs.cc.o"
  "CMakeFiles/ceres_ml.dir/lbfgs.cc.o.d"
  "CMakeFiles/ceres_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/ceres_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/ceres_ml.dir/random_forest.cc.o"
  "CMakeFiles/ceres_ml.dir/random_forest.cc.o.d"
  "libceres_ml.a"
  "libceres_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
