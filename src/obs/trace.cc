#include "obs/trace.h"

#include <algorithm>

namespace ceres::obs {

TimePoint MonotonicNow() { return std::chrono::steady_clock::now(); }

std::chrono::microseconds ElapsedMicros(TimePoint start, TimePoint end) {
  if (end <= start) return std::chrono::microseconds{0};
  return std::chrono::duration_cast<std::chrono::microseconds>(end - start);
}

TraceTree::TraceTree() {
  MutexLock lock(mu_);
  Node root;
  root.name = "root";
  nodes_.push_back(std::move(root));
}

int32_t TraceTree::ChildNode(int32_t parent, std::string_view name) {
  MutexLock lock(mu_);
  for (int32_t child : nodes_[static_cast<size_t>(parent)].children) {
    if (nodes_[static_cast<size_t>(child)].name == name) return child;
  }
  const int32_t id = static_cast<int32_t>(nodes_.size());
  Node node;
  node.name = std::string(name);
  nodes_.push_back(std::move(node));
  nodes_[static_cast<size_t>(parent)].children.push_back(id);
  return id;
}

void TraceTree::Record(int32_t node, int64_t micros) {
  MutexLock lock(mu_);
  Node& n = nodes_[static_cast<size_t>(node)];
  ++n.count;
  n.total_us += micros;
  n.min_us = std::min(n.min_us, micros);
  n.max_us = std::max(n.max_us, micros);
}

int64_t TraceTree::TotalMicros(
    const std::vector<std::string_view>& path) const {
  MutexLock lock(mu_);
  const int32_t node = FindPath(path);
  return node < 0 ? 0 : nodes_[static_cast<size_t>(node)].total_us;
}

int64_t TraceTree::SpanCount(
    const std::vector<std::string_view>& path) const {
  MutexLock lock(mu_);
  const int32_t node = FindPath(path);
  return node < 0 ? 0 : nodes_[static_cast<size_t>(node)].count;
}

int32_t TraceTree::FindPath(const std::vector<std::string_view>& path) const {
  int32_t current = 0;
  for (std::string_view segment : path) {
    int32_t next = -1;
    for (int32_t child : nodes_[static_cast<size_t>(current)].children) {
      if (nodes_[static_cast<size_t>(child)].name == segment) {
        next = child;
        break;
      }
    }
    if (next < 0) return -1;
    current = next;
  }
  return current;
}

void TraceTree::AppendNodeJson(int32_t node, std::string* out) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  *out += "{\"name\":\"" + n.name + "\"";
  *out += ",\"count\":" + std::to_string(n.count);
  *out += ",\"total_us\":" + std::to_string(n.total_us);
  *out += ",\"min_us\":" + std::to_string(n.count == 0 ? 0 : n.min_us);
  *out += ",\"max_us\":" + std::to_string(n.max_us);
  if (!n.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) *out += ',';
      AppendNodeJson(n.children[i], out);
    }
    *out += ']';
  }
  *out += '}';
}

std::string TraceTree::ToJson() const {
  MutexLock lock(mu_);
  std::string out;
  AppendNodeJson(0, &out);
  return out;
}

TraceSpan::TraceSpan(TraceTree* tree, std::string_view name) : tree_(tree) {
  if (tree_ == nullptr) return;
  node_ = tree_->ChildNode(0, name);
  start_ = MonotonicNow();
}

TraceSpan::TraceSpan(const TraceSpan& parent, std::string_view name)
    : tree_(parent.tree_) {
  if (tree_ == nullptr) return;
  node_ = tree_->ChildNode(parent.node_, name);
  start_ = MonotonicNow();
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::End() {
  if (tree_ == nullptr) return;
  tree_->Record(node_, ElapsedMicros(start_, MonotonicNow()).count());
  tree_ = nullptr;
}

}  // namespace ceres::obs
