#include "text/levenshtein.h"

#include <gtest/gtest.h>

#include <string>

#include "util/random.h"

namespace ceres {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance(std::string("kitten"),
                                std::string("sitting")),
            3u);
  EXPECT_EQ(LevenshteinDistance(std::string("flaw"), std::string("lawn")),
            2u);
  EXPECT_EQ(LevenshteinDistance(std::string(""), std::string("abc")), 3u);
  EXPECT_EQ(LevenshteinDistance(std::string("abc"), std::string("")), 3u);
  EXPECT_EQ(LevenshteinDistance(std::string("same"), std::string("same")),
            0u);
}

TEST(LevenshteinTest, WorksOnVectors) {
  std::vector<int> a{1, 2, 3, 4};
  std::vector<int> b{1, 3, 4, 5};
  EXPECT_EQ(LevenshteinDistance(a, b), 2u);
}

TEST(BoundedLevenshteinTest, AgreesWithExactWithinBound) {
  Rng rng(77);
  const std::string alphabet = "abcd";
  for (int trial = 0; trial < 300; ++trial) {
    std::string a;
    std::string b;
    int la = static_cast<int>(rng.Uniform(0, 12));
    int lb = static_cast<int>(rng.Uniform(0, 12));
    for (int i = 0; i < la; ++i) a += alphabet[rng.Index(4)];
    for (int i = 0; i < lb; ++i) b += alphabet[rng.Index(4)];
    size_t exact = LevenshteinDistance(a, b);
    for (size_t bound : {0u, 1u, 2u, 3u, 8u}) {
      size_t bounded = BoundedLevenshtein(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(bounded, exact) << a << " vs " << b << " bound " << bound;
      } else {
        EXPECT_GT(bounded, bound) << a << " vs " << b << " bound " << bound;
      }
    }
  }
}

TEST(BoundedLevenshteinTest, QuickRejectOnLengthGap) {
  EXPECT_EQ(BoundedLevenshtein("ab", "abcdefgh", 2), 3u);
}

// Metric properties (symmetry + triangle inequality) on random inputs.
TEST(LevenshteinPropertyTest, SymmetryAndTriangle) {
  Rng rng(99);
  const std::string alphabet = "xyz";
  for (int trial = 0; trial < 100; ++trial) {
    std::string s[3];
    for (auto& str : s) {
      int len = static_cast<int>(rng.Uniform(0, 8));
      for (int i = 0; i < len; ++i) str += alphabet[rng.Index(3)];
    }
    size_t ab = LevenshteinDistance(s[0], s[1]);
    size_t ba = LevenshteinDistance(s[1], s[0]);
    size_t bc = LevenshteinDistance(s[1], s[2]);
    size_t ac = LevenshteinDistance(s[0], s[2]);
    EXPECT_EQ(ab, ba);
    EXPECT_LE(ac, ab + bc);
  }
}

}  // namespace
}  // namespace ceres
