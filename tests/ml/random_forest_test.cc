#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace ceres {
namespace {

LabeledExample Example(std::vector<int32_t> on_features, int32_t label) {
  LabeledExample example;
  for (int32_t feature : on_features) example.features.Add(feature, 1.0);
  example.features.Finalize();
  example.label = label;
  return example;
}

TEST(RandomForestTest, LearnsSeparableData) {
  std::vector<LabeledExample> examples;
  for (int i = 0; i < 30; ++i) {
    examples.push_back(Example({0, 5}, 0));
    examples.push_back(Example({1, 5}, 1));
    examples.push_back(Example({2, 5}, 2));
  }
  RandomForest forest;
  ASSERT_TRUE(forest.Train(examples, 6, 3).ok());
  for (int32_t cls = 0; cls < 3; ++cls) {
    SparseVector v;
    v.Add(cls, 1.0);
    v.Add(5, 1.0);
    v.Finalize();
    auto [predicted, confidence] = forest.Predict(v);
    EXPECT_EQ(predicted, cls);
    EXPECT_GT(confidence, 0.8);
  }
}

TEST(RandomForestTest, ProbabilitiesValid) {
  std::vector<LabeledExample> examples;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    int cls = i % 4;
    std::vector<int32_t> features{cls};
    if (rng.Bernoulli(0.5)) features.push_back(4 + static_cast<int32_t>(
                                                       rng.Index(3)));
    examples.push_back(Example(features, cls));
  }
  RandomForest forest;
  ASSERT_TRUE(forest.Train(examples, 8, 4).ok());
  for (int trial = 0; trial < 30; ++trial) {
    SparseVector v;
    if (rng.Bernoulli(0.7)) v.Add(static_cast<int32_t>(rng.Index(8)), 1.0);
    v.Finalize();
    std::vector<double> probs = forest.PredictProbabilities(v);
    double sum = 0;
    for (double p : probs) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RandomForestTest, DeterministicForSeed) {
  std::vector<LabeledExample> examples;
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    examples.push_back(Example({static_cast<int32_t>(rng.Index(4)),
                                4 + static_cast<int32_t>(rng.Index(4))},
                               i % 2));
  }
  RandomForest a;
  RandomForest b;
  ASSERT_TRUE(a.Train(examples, 8, 2).ok());
  ASSERT_TRUE(b.Train(examples, 8, 2).ok());
  EXPECT_EQ(a.TotalNodes(), b.TotalNodes());
  SparseVector v;
  v.Add(1, 1.0);
  v.Finalize();
  EXPECT_EQ(a.PredictProbabilities(v), b.PredictProbabilities(v));
}

TEST(RandomForestTest, DepthLimitBoundsTreeSize) {
  std::vector<LabeledExample> examples;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    examples.push_back(Example({static_cast<int32_t>(rng.Index(20))},
                               static_cast<int32_t>(rng.Index(2))));
  }
  RandomForestConfig shallow;
  shallow.num_trees = 4;
  shallow.max_depth = 2;
  RandomForestConfig deep;
  deep.num_trees = 4;
  deep.max_depth = 10;
  RandomForest small;
  RandomForest large;
  ASSERT_TRUE(small.Train(examples, 20, 2, shallow).ok());
  ASSERT_TRUE(large.Train(examples, 20, 2, deep).ok());
  EXPECT_LE(small.TotalNodes(), large.TotalNodes());
  // Depth-2 trees have at most 7 nodes each.
  EXPECT_LE(small.TotalNodes(), 4 * 7);
}

TEST(RandomForestTest, RejectsBadInput) {
  RandomForest forest;
  EXPECT_EQ(forest.Train({}, 2, 2).code(), StatusCode::kInvalidArgument);
  std::vector<LabeledExample> bad{Example({0}, 7)};
  EXPECT_EQ(forest.Train(bad, 2, 2).code(), StatusCode::kInvalidArgument);
  std::vector<LabeledExample> ok{Example({0}, 0), Example({1}, 1)};
  RandomForestConfig config;
  config.num_trees = 0;
  EXPECT_EQ(forest.Train(ok, 2, 2, config).code(),
            StatusCode::kInvalidArgument);
}

TEST(RandomForestTest, MajorityPriorOnUnseenFeatures) {
  std::vector<LabeledExample> examples;
  for (int i = 0; i < 30; ++i) examples.push_back(Example({0}, 0));
  for (int i = 0; i < 10; ++i) examples.push_back(Example({1}, 1));
  RandomForest forest;
  ASSERT_TRUE(forest.Train(examples, 2, 2).ok());
  SparseVector empty;
  empty.Finalize();
  EXPECT_EQ(forest.Predict(empty).first, 0);
}

}  // namespace
}  // namespace ceres
