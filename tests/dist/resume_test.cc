// Checkpoint-resume chaos tests (labels: dist, chaos): a coordinator
// SIGKILLed mid-run must be resumable from its per-shard checkpoints to a
// byte-identical result, and a corrupt checkpoint must be detected on
// restart and re-run rather than merged.

#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/checkpoint.h"
#include "dist/coordinator.h"
#include "dist/dist_corpus.h"
#include "robustness/fault_injector.h"

namespace ceres::dist {
namespace {

using dist_testing::DistTestCorpus;
using dist_testing::MakeDistTestCorpus;

class ResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new DistTestCorpus(MakeDistTestCorpus());
    Result<DistResult> reference =
        RunSingleProcess(corpus_->sites, *corpus_->seed_kb,
                         corpus_->seed_kb->ontology(), DistConfig());
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    reference_ = new DistResult(std::move(reference.value()));
  }

  static void TearDownTestSuite() {
    delete reference_;
    reference_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }

  void SetUp() override {
    char tmpl[] = "/tmp/ceres_resume_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    for (int32_t shard : ListShardCheckpoints(dir_)) {
      (void)::unlink(ShardCheckpointPath(dir_, shard).c_str());
    }
    (void)::rmdir(dir_.c_str());
  }

  DistConfig CheckpointedConfig() const {
    DistConfig config;
    config.num_workers = 1;
    config.num_shards = 0;  // one shard per site
    config.checkpoint_dir = dir_;
    // No hang faults here; a long liveness keeps a loaded CI box from
    // spuriously killing healthy workers mid-shard.
    config.worker_liveness_timeout = std::chrono::seconds(60);
    return config;
  }

  Result<DistResult> RunDist(const DistConfig& config) const {
    return RunDistributedExtraction(corpus_->sites, *corpus_->seed_kb,
                                    corpus_->seed_kb->ontology(), config);
  }

  static void ExpectMatchesReference(const DistResult& got) {
    ASSERT_EQ(got.site_extractions.size(),
              reference_->site_extractions.size());
    for (size_t s = 0; s < got.site_extractions.size(); ++s) {
      const fusion::SiteExtractions& a = got.site_extractions[s];
      const fusion::SiteExtractions& b = reference_->site_extractions[s];
      ASSERT_EQ(a.site, b.site);
      ASSERT_EQ(a.extractions.size(), b.extractions.size()) << a.site;
      for (size_t i = 0; i < a.extractions.size(); ++i) {
        EXPECT_EQ(a.extractions[i].page, b.extractions[i].page);
        EXPECT_EQ(a.extractions[i].node, b.extractions[i].node);
        EXPECT_EQ(a.extractions[i].predicate, b.extractions[i].predicate);
        EXPECT_EQ(a.extractions[i].subject, b.extractions[i].subject);
        EXPECT_EQ(a.extractions[i].object, b.extractions[i].object);
        EXPECT_EQ(a.extractions[i].confidence, b.extractions[i].confidence)
            << a.site << " extraction " << i;
      }
    }
  }

  static DistTestCorpus* corpus_;
  static DistResult* reference_;
  std::string dir_;
};

DistTestCorpus* ResumeTest::corpus_ = nullptr;
DistResult* ResumeTest::reference_ = nullptr;

TEST_F(ResumeTest, KilledCoordinatorResumesByteIdentical) {
  // Run the coordinator in a child process so we can SIGKILL it mid-run —
  // the same shape as a batch job preempted by the OS. One worker makes
  // shard completion sequential, so checkpoints appear one at a time.
  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    DistConfig config = CheckpointedConfig();
    (void)RunDist(config);
    // Skip gtest/atexit teardown: this process only exists to be killed,
    // and if it wins the race, its checkpoints are all we need.
    ::_exit(0);
  }

  // Wait for the first checkpoint to land, then kill the coordinator. The
  // child may finish all shards before we fire — the resume assertions
  // below hold either way, just with more checkpoints to load.
  const int kMaxPollMs = 30000;
  int waited_ms = 0;
  while (ListShardCheckpoints(dir_).empty() && waited_ms < kMaxPollMs) {
    ::usleep(20 * 1000);
    waited_ms += 20;
    int status = 0;
    if (::waitpid(child, &status, WNOHANG) == child) {
      break;  // child already exited; checkpoints are complete
    }
  }
  ASSERT_FALSE(ListShardCheckpoints(dir_).empty())
      << "no checkpoint appeared within " << kMaxPollMs << "ms";
  (void)::kill(child, SIGKILL);
  int status = 0;
  (void)::waitpid(child, &status, 0);

  const size_t survived = ListShardCheckpoints(dir_).size();
  ASSERT_GE(survived, 1u);

  // Restart: completed shards load from checkpoint, the rest re-run.
  Result<DistResult> resumed = RunDist(CheckpointedConfig());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_GE(resumed->diagnostics.shards_from_checkpoint,
            static_cast<int64_t>(survived));
  EXPECT_EQ(resumed->diagnostics.shards_completed,
            static_cast<int64_t>(corpus_->sites.size()));
  EXPECT_TRUE(resumed->diagnostics.quarantined_shards.empty());
  ExpectMatchesReference(*resumed);
}

TEST_F(ResumeTest, CorruptCheckpointIsDetectedAndRerun) {
  const int32_t victim =
      ShardOfSite(corpus_->sites[0].site,
                  static_cast<int32_t>(corpus_->sites.size()));

  // First run completes normally but its checkpoint for `victim` is
  // corrupted in place after the atomic rename (storage-failure model).
  DistConfig first = CheckpointedConfig();
  first.faults.faults.push_back(
      ProcessFault{victim, ProcessFaultType::kCorruptCheckpoint, 1});
  Result<DistResult> initial = RunDist(first);
  ASSERT_TRUE(initial.ok()) << initial.status().ToString();
  // The corruption is disk-only: the in-memory result is unaffected.
  ExpectMatchesReference(*initial);
  EXPECT_EQ(LoadShardCheckpoint(dir_, victim).status().code(),
            StatusCode::kInternal);

  // Restart over the same directory: the corrupt file must surface as an
  // attempt-0 failure for `victim` and the shard must re-run, while the
  // intact checkpoints still load.
  Result<DistResult> resumed = RunDist(CheckpointedConfig());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  bool corrupt_reported = false;
  for (const ShardFailure& failure : resumed->diagnostics.failures) {
    if (failure.shard == victim && failure.attempt == 0 &&
        failure.reason.code() == StatusCode::kInternal) {
      corrupt_reported = true;
    }
  }
  EXPECT_TRUE(corrupt_reported)
      << "no attempt-0 kInternal failure for shard " << victim;
  EXPECT_EQ(resumed->diagnostics.shards_from_checkpoint,
            static_cast<int64_t>(corpus_->sites.size()) - 1);
  EXPECT_EQ(resumed->diagnostics.shards_completed,
            static_cast<int64_t>(corpus_->sites.size()));
  ExpectMatchesReference(*resumed);
  // The re-run rewrote a valid checkpoint over the corrupt one.
  EXPECT_TRUE(LoadShardCheckpoint(dir_, victim).ok());
}

TEST_F(ResumeTest, StaleCheckpointForDifferentCorpusIsIgnored) {
  // A checkpoint whose sites do not match the shard's current corpus
  // assignment (e.g. the corpus changed between runs) must be re-run, not
  // merged.
  const int32_t victim =
      ShardOfSite(corpus_->sites[0].site,
                  static_cast<int32_t>(corpus_->sites.size()));
  ShardResult stale;
  stale.shard = victim;
  SiteResult site;
  site.site = "stale.example";
  site.pages = 1;
  stale.sites.push_back(site);
  ASSERT_TRUE(SaveShardCheckpoint(dir_, stale, nullptr).ok());

  Result<DistResult> got = RunDist(CheckpointedConfig());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  bool mismatch_reported = false;
  for (const ShardFailure& failure : got->diagnostics.failures) {
    if (failure.shard == victim && failure.attempt == 0) {
      mismatch_reported = true;
    }
  }
  EXPECT_TRUE(mismatch_reported);
  ExpectMatchesReference(*got);
}

}  // namespace
}  // namespace ceres::dist
