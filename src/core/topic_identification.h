#ifndef CERES_CORE_TOPIC_IDENTIFICATION_H_
#define CERES_CORE_TOPIC_IDENTIFICATION_H_

#include <vector>

#include "core/types.h"
#include "dom/dom_tree.h"
#include "dom/xpath.h"
#include "kb/knowledge_base.h"
#include "util/deadline.h"

namespace ceres {

/// Parameters of Algorithm 1 (Page Topic Identification). Defaults are the
/// paper's example values; per §3.1.2 they are deliberately small — the goal
/// is to filter obvious noise and let the learner absorb the rest.
struct TopicConfig {
  /// Strings appearing in at least this fraction of KB triples are never
  /// topic candidates (§3.1.1, "e.g., 0.01%").
  double common_string_fraction = 0.0001;
  /// Absolute floor for the common-string threshold; the paper's fraction
  /// presumes an 85M-triple KB, so small KBs need a floor to avoid
  /// filtering everything.
  int64_t common_string_min_count = 200;
  /// Uniqueness filter: discard candidates chosen as topic of at least this
  /// many pages (§3.1.2 step 1, "e.g., >= 5 pages").
  int max_pages_per_topic = 5;
  /// Informativeness filter: pages with fewer potential relation
  /// annotations than this get no topic (§3.1.2 step 3, "e.g., >= 3").
  int min_annotations_per_page = 3;
  /// Disable individual steps for ablation studies.
  bool apply_uniqueness_filter = true;
  bool apply_dominant_xpath = true;
  bool apply_informativeness_filter = true;
  /// Cooperative time budget, checked at page granularity. On expiry the
  /// algorithm stops early and sets TopicResult::deadline_expired; pages
  /// not reached keep kInvalidEntity.
  Deadline deadline;
};

/// Output of Algorithm 1 for one site.
struct TopicResult {
  /// Per page: chosen topic entity, or kInvalidEntity when the page was
  /// discarded.
  std::vector<EntityId> topic;
  /// Per page: node holding the topic name (the dominant-XPath field), or
  /// kInvalidNode.
  std::vector<NodeId> topic_node;
  /// Per page: the local Jaccard score of the chosen topic.
  std::vector<double> score;
  /// Dominant topic XPaths across the site, most frequent first (for
  /// diagnostics and tests).
  std::vector<XPath> ranked_paths;
  /// True when TopicConfig::deadline expired before all pages were
  /// processed; the result is partial and callers should treat the cluster
  /// as timed out.
  bool deadline_expired = false;
};

/// Runs Algorithm 1 over the pages of one template cluster.
///
/// `mentions[i]` must be MatchPageMentions(pages[i], kb). Literal-typed
/// entities, common strings (per TopicConfig), and low-information strings
/// are never topic candidates.
TopicResult IdentifyTopics(const std::vector<const DomDocument*>& pages,
                           const std::vector<PageMentions>& mentions,
                           const KnowledgeBase& kb,
                           const TopicConfig& config = {});

}  // namespace ceres

#endif  // CERES_CORE_TOPIC_IDENTIFICATION_H_
