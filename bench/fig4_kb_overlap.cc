// Figure 4 — Extraction F1 on each Book-vertical site vs the number of its
// pages whose topic overlaps the seed KB (built from site 0's ground
// truth). The paper's shape: sites with <= 5 overlapping pages get F1 ~0
// (no annotations to learn from), while a few tens of overlapping pages
// already yield high F1; site 0 itself is omitted, as in the paper.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace ceres;         // NOLINT(build/namespaces)
  using namespace ceres::bench;  // NOLINT(build/namespaces)
  const double scale = synth::EnvScale();
  std::printf("Figure 4: Book-vertical F1 vs KB overlap (scale=%.2f)\n\n",
              scale);

  ParsedCorpus corpus =
      ParseCorpus(synth::MakeSwdeCorpus(synth::SwdeVertical::kBook, scale));
  std::vector<PredicateId> predicates =
      EvalPredicates(corpus.corpus, /*include_name=*/true);

  struct Point {
    std::string site;
    int overlap = 0;
    double f1 = 0;
    int64_t extractions = 0;
  };
  std::vector<Point> points;
  for (size_t s = 1; s < corpus.sites.size(); ++s) {  // Skip the KB site.
    const ParsedSite& site = corpus.sites[s];
    Point point;
    point.site = site.name;
    for (const eval::PageTruth& truth : site.truth.pages) {
      if (!corpus.corpus.seed_kb.MatchMentions(truth.topic_name).empty()) {
        ++point.overlap;
      }
    }
    Split split = HalfSplit(site.pages.size());
    PipelineResult result = RunSite(site, corpus.corpus.seed_kb,
                                    MakeConfig(System::kCeresFull, split));
    eval::ScoreOptions options;
    options.pages = split.eval;
    options.predicates = predicates;
    options.confidence_threshold = 0.5;
    eval::Prf prf =
        eval::ScoreExtractions(result.extractions, site.truth, options);
    point.f1 = prf.f1();
    point.extractions = prf.tp + prf.fp;
    points.push_back(point);
    std::fprintf(stderr, "[fig4] %s done\n", site.name.c_str());
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) {
              return a.overlap < b.overlap;
            });

  eval::TableReport table({"Site", "#Pages overlapping KB", "#Extractions",
                           "F1", "Series"});
  for (const Point& point : points) {
    int bars = static_cast<int>(point.f1 * 30 + 0.5);
    table.AddRow({point.site, std::to_string(point.overlap),
                  std::to_string(point.extractions),
                  eval::FormatRatio(point.f1), std::string(bars, '#')});
  }
  table.Print();
  std::printf(
      "\nPaper (Figure 4): sites with <= 5 overlapping ISBNs score F1 0; "
      "F1 rises steeply once a few tens of pages can be annotated.\n");
  return 0;
}
