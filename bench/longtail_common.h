#ifndef CERES_BENCH_LONGTAIL_COMMON_H_
#define CERES_BENCH_LONGTAIL_COMMON_H_

#include <vector>

#include "bench/bench_common.h"

namespace ceres::bench {

/// Results of running CERES-Full over one long-tail site with annotation
/// and extraction over all pages (the paper's CommonCrawl protocol — there
/// is no train/eval split in §5.5; extractions are judged by sampling).
struct LongTailSiteRun {
  const ParsedSite* site = nullptr;
  PipelineResult result;
  int64_t num_pages = 0;
  int64_t annotated_pages = 0;
  int64_t annotations = 0;
};

/// Runs the full corpus; extraction confidence floor 0 so callers can
/// sweep thresholds.
std::vector<LongTailSiteRun> RunLongTail(const ParsedCorpus& corpus);

/// Extraction counts and ground-truth precision at a confidence threshold.
struct ThresholdPoint {
  double threshold = 0;
  int64_t extractions = 0;
  int64_t correct = 0;
  double precision() const {
    return extractions == 0
               ? 0.0
               : static_cast<double>(correct) /
                     static_cast<double>(extractions);
  }
};

/// Counts correct/total relation extractions (NAME excluded) for one site
/// at a threshold.
ThresholdPoint CountAtThreshold(const LongTailSiteRun& run,
                                double threshold);

}  // namespace ceres::bench

#endif  // CERES_BENCH_LONGTAIL_COMMON_H_
