file(REMOVE_RECURSE
  "CMakeFiles/table9_top_predicates.dir/table9_top_predicates.cc.o"
  "CMakeFiles/table9_top_predicates.dir/table9_top_predicates.cc.o.d"
  "table9_top_predicates"
  "table9_top_predicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_top_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
