#include "ml/lbfgs.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ceres {
namespace {

TEST(LbfgsTest, MinimizesQuadratic) {
  // f(x) = (x0 - 3)^2 + 2 (x1 + 1)^2.
  LbfgsObjective objective = [](const std::vector<double>& x,
                                std::vector<double>* grad) {
    (*grad)[0] = 2 * (x[0] - 3);
    (*grad)[1] = 4 * (x[1] + 1);
    return (x[0] - 3) * (x[0] - 3) + 2 * (x[1] + 1) * (x[1] + 1);
  };
  std::vector<double> x{0.0, 0.0};
  LbfgsResult result = MinimizeLbfgs(objective, &x);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 3.0, 1e-4);
  EXPECT_NEAR(x[1], -1.0, 1e-4);
  EXPECT_NEAR(result.final_objective, 0.0, 1e-7);
}

TEST(LbfgsTest, MinimizesRosenbrock) {
  LbfgsObjective objective = [](const std::vector<double>& x,
                                std::vector<double>* grad) {
    double a = 1 - x[0];
    double b = x[1] - x[0] * x[0];
    (*grad)[0] = -2 * a - 400 * x[0] * b;
    (*grad)[1] = 200 * b;
    return a * a + 100 * b * b;
  };
  std::vector<double> x{-1.2, 1.0};
  LbfgsConfig config;
  config.max_iterations = 500;
  LbfgsResult result = MinimizeLbfgs(objective, &x, config);
  EXPECT_NEAR(x[0], 1.0, 1e-3);
  EXPECT_NEAR(x[1], 1.0, 1e-3);
  EXPECT_LT(result.final_objective, 1e-6);
}

TEST(LbfgsTest, HighDimensionalConvexProblem) {
  const int dim = 50;
  LbfgsObjective objective = [&](const std::vector<double>& x,
                                 std::vector<double>* grad) {
    double sum = 0;
    for (int i = 0; i < dim; ++i) {
      double target = 0.1 * i;
      double scale = 1.0 + (i % 5);
      (*grad)[static_cast<size_t>(i)] = 2 * scale * (x[static_cast<size_t>(i)] - target);
      sum += scale * (x[static_cast<size_t>(i)] - target) *
             (x[static_cast<size_t>(i)] - target);
    }
    return sum;
  };
  std::vector<double> x(dim, 5.0);
  LbfgsResult result = MinimizeLbfgs(objective, &x);
  EXPECT_TRUE(result.converged);
  for (int i = 0; i < dim; ++i) {
    EXPECT_NEAR(x[static_cast<size_t>(i)], 0.1 * i, 1e-3);
  }
}

TEST(LbfgsTest, StartingAtMinimumConvergesImmediately) {
  LbfgsObjective objective = [](const std::vector<double>& x,
                                std::vector<double>* grad) {
    (*grad)[0] = 2 * x[0];
    return x[0] * x[0];
  };
  std::vector<double> x{0.0};
  LbfgsResult result = MinimizeLbfgs(objective, &x);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 1);
}

TEST(LbfgsTest, RespectsIterationCap) {
  LbfgsObjective objective = [](const std::vector<double>& x,
                                std::vector<double>* grad) {
    (*grad)[0] = 2 * (x[0] - 100);
    return (x[0] - 100) * (x[0] - 100);
  };
  std::vector<double> x{0.0};
  LbfgsConfig config;
  config.max_iterations = 2;
  LbfgsResult result = MinimizeLbfgs(objective, &x, config);
  EXPECT_LE(result.iterations, 2);
}

TEST(LbfgsTest, NonSmoothAbsoluteValueStillDescends) {
  // |x| with subgradient; L-BFGS won't converge exactly but must descend.
  LbfgsObjective objective = [](const std::vector<double>& x,
                                std::vector<double>* grad) {
    (*grad)[0] = x[0] >= 0 ? 1.0 : -1.0;
    return std::fabs(x[0]);
  };
  std::vector<double> x{10.0};
  LbfgsResult result = MinimizeLbfgs(objective, &x);
  EXPECT_LT(result.final_objective, 10.0);
}

}  // namespace
}  // namespace ceres
