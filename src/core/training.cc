#include "core/training.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "dom/xpath.h"
#include "util/random.h"
#include "util/string_util.h"

namespace ceres {

namespace {

// True when `candidate` differs from some positive-example path of its page
// only at index positions where that predicate's positives already vary —
// i.e. it is probably an unlabelled member of the same value list (§4.1).
bool IsLikelyListMember(
    const XPath& candidate,
    const std::map<PredicateId, std::vector<XPath>>& positives_by_predicate) {
  for (const auto& [predicate, paths] : positives_by_predicate) {
    if (paths.size() < 2) continue;
    // Varying index positions among this predicate's positives.
    std::set<size_t> varying;
    bool same_shape_all = true;
    for (size_t i = 1; i < paths.size(); ++i) {
      bool same_shape = false;
      std::vector<size_t> diffs =
          IndexOnlyDifferences(paths[0], paths[i], &same_shape);
      if (!same_shape) {
        same_shape_all = false;
        break;
      }
      varying.insert(diffs.begin(), diffs.end());
    }
    if (!same_shape_all || varying.empty()) continue;
    for (const XPath& positive : paths) {
      bool same_shape = false;
      std::vector<size_t> diffs =
          IndexOnlyDifferences(candidate, positive, &same_shape);
      if (!same_shape) continue;
      bool all_in_varying = true;
      for (size_t pos : diffs) {
        if (varying.count(pos) == 0) {
          all_in_varying = false;
          break;
        }
      }
      if (all_in_varying) return true;
    }
  }
  return false;
}

}  // namespace

Result<TrainedModel> TrainExtractor(
    const std::vector<const DomDocument*>& pages,
    const std::vector<Annotation>& annotations,
    const FeatureExtractor& featurizer, const Ontology& ontology,
    const TrainingConfig& config) {
  if (annotations.empty()) {
    return Status::FailedPrecondition("no annotations to train from");
  }

  // Group annotations per page.
  std::map<PageIndex, std::vector<const Annotation*>> by_page;
  for (const Annotation& annotation : annotations) {
    by_page[annotation.page].push_back(&annotation);
  }

  Rng rng(config.seed);
  // Optional cap on the number of annotated pages used (Figure 5).
  std::vector<PageIndex> annotated_pages;
  annotated_pages.reserve(by_page.size());
  for (const auto& [page, list] : by_page) annotated_pages.push_back(page);
  if (config.max_annotated_pages > 0 &&
      annotated_pages.size() > config.max_annotated_pages) {
    rng.Shuffle(&annotated_pages);
    annotated_pages.resize(config.max_annotated_pages);
    std::sort(annotated_pages.begin(), annotated_pages.end());
  }
  if (annotated_pages.size() < config.min_annotated_pages) {
    return Status::FailedPrecondition(
        StrCat("only ", annotated_pages.size(),
               " annotated pages; need at least ",
               config.min_annotated_pages));
  }

  TrainedModel trained;
  trained.classes = ClassMap(ontology);
  std::vector<LabeledExample> examples;

  for (PageIndex page : annotated_pages) {
    CERES_RETURN_IF_ERROR(config.deadline.Check("building training examples"));
    const DomDocument& doc = *pages[static_cast<size_t>(page)];
    const std::vector<const Annotation*>& page_annotations = by_page[page];
    // Featurization itself must stay serial (HashedFeatureMap interning order
    // defines the feature ids), but the normalized-label lookups it makes
    // are memoized per page.
    NormalizedTextCache text_cache(doc);

    std::set<NodeId> positive_nodes;
    std::map<PredicateId, std::vector<XPath>> positives_by_predicate;
    for (const Annotation* annotation : page_annotations) {
      positive_nodes.insert(annotation->node);
      positives_by_predicate[annotation->predicate].push_back(
          XPath::FromNode(doc, annotation->node));
    }

    // Positive examples.
    for (const Annotation* annotation : page_annotations) {
      LabeledExample example;
      example.features =
          featurizer.Extract(doc, annotation->node, &trained.features,
                             /*name_prefix=*/{}, &text_cache);
      example.label = trained.classes.ClassOf(annotation->predicate);
      examples.push_back(std::move(example));
    }

    // Negative candidates: unlabelled text fields, minus likely list
    // members.
    std::vector<NodeId> candidates;
    for (NodeId node : doc.TextFields()) {
      if (positive_nodes.count(node) > 0) continue;
      if (config.exclude_list_negatives &&
          IsLikelyListMember(XPath::FromNode(doc, node),
                             positives_by_predicate)) {
        continue;
      }
      candidates.push_back(node);
    }
    rng.Shuffle(&candidates);
    size_t wanted = static_cast<size_t>(config.negatives_per_positive) *
                    page_annotations.size();
    if (candidates.size() > wanted) candidates.resize(wanted);
    for (NodeId node : candidates) {
      LabeledExample example;
      example.features = featurizer.Extract(doc, node, &trained.features,
                                            /*name_prefix=*/{}, &text_cache);
      example.label = ClassMap::kOtherClass;
      examples.push_back(std::move(example));
    }
  }

  CERES_RETURN_IF_ERROR(config.deadline.Check("fitting extractor model"));
  trained.feature_config = featurizer.config();
  trained.frequent_strings = featurizer.frequent_strings();
  trained.features.Freeze();
  Result<LbfgsResult> fit =
      trained.model.Train(examples, trained.features.size(),
                          trained.classes.num_classes(), config.logreg);
  if (!fit.ok()) return fit.status();
  return trained;
}

FeatureExtractor MakeFeaturizer(const TrainedModel& model) {
  return FeatureExtractor(model.frequent_strings, model.feature_config);
}

}  // namespace ceres
