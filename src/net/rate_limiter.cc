#include "net/rate_limiter.h"

#include <algorithm>

namespace ceres::net {

bool RateLimiter::Admit(const std::string& key, int64_t now_us) {
  if (config_.tokens_per_second <= 0.0) return true;
  const double burst = std::max(config_.burst, 1.0);
  MutexLock lock(mu_);
  auto [it, inserted] = buckets_.try_emplace(key);
  Bucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = burst;
    bucket.last_us = now_us;
  } else {
    const double elapsed_s =
        static_cast<double>(std::max<int64_t>(0, now_us - bucket.last_us)) /
        1e6;
    bucket.tokens = std::min(
        burst, bucket.tokens + elapsed_s * config_.tokens_per_second);
    bucket.last_us = std::max(bucket.last_us, now_us);
  }
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  if (buckets_.size() > kSweepAt) {
    // Bound the table: a bucket whose refill has already topped it back up
    // carries no admission state (it reconstructs exactly on next sight),
    // so it is safe to drop.
    for (auto sweep = buckets_.begin(); sweep != buckets_.end();) {
      const Bucket& b = sweep->second;
      const double refilled =
          b.tokens +
          static_cast<double>(std::max<int64_t>(0, now_us - b.last_us)) /
              1e6 * config_.tokens_per_second;
      if (sweep->first != key && refilled >= burst - 1e-9) {
        sweep = buckets_.erase(sweep);
      } else {
        ++sweep;
      }
    }
  }
  return true;
}

size_t RateLimiter::tracked_keys() const {
  MutexLock lock(mu_);
  return buckets_.size();
}

}  // namespace ceres::net
