# Empty dependencies file for ceres_ml.
# This may be replaced when dependencies are built.
