file(REMOVE_RECURSE
  "libceres_cluster.a"
)
