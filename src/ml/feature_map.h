#ifndef CERES_ML_FEATURE_MAP_H_
#define CERES_ML_FEATURE_MAP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ceres {

/// Bidirectional dictionary between string feature names and dense indices.
///
/// During training, GetOrAdd() grows the vocabulary; before applying a model
/// to unseen pages the map is frozen so unknown features map to -1 and are
/// dropped (the standard train/apply asymmetry of a linear extractor).
///
/// Superseded on the hot path by HashedFeatureMap (ml/hashed_feature_map.h);
/// kept as the compatibility dictionary for version-1 string-named model
/// files. Lookups are heterogeneous: a string_view probes the index without
/// materializing a temporary std::string.
class FeatureMap {
 public:
  FeatureMap() = default;

  /// Returns the index of `name`, inserting it when unseen and not frozen.
  /// Returns -1 for unseen features once frozen.
  int32_t GetOrAdd(std::string_view name);

  /// Index of `name`, or -1 if absent. Never inserts.
  int32_t Get(std::string_view name) const;

  /// Name of feature `index`.
  const std::string& Name(int32_t index) const;

  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }
  int32_t size() const { return static_cast<int32_t>(names_.size()); }

 private:
  // Transparent hashing so find(string_view) probes without allocating.
  struct TransparentStringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, int32_t, TransparentStringHash,
                     std::equal_to<>>
      index_;
  std::vector<std::string> names_;
  bool frozen_ = false;
};

}  // namespace ceres

#endif  // CERES_ML_FEATURE_MAP_H_
