file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/entity_matcher_test.cc.o"
  "CMakeFiles/core_test.dir/core/entity_matcher_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/extractor_test.cc.o"
  "CMakeFiles/core_test.dir/core/extractor_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/features_test.cc.o"
  "CMakeFiles/core_test.dir/core/features_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/model_io_test.cc.o"
  "CMakeFiles/core_test.dir/core/model_io_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pipeline_ablation_test.cc.o"
  "CMakeFiles/core_test.dir/core/pipeline_ablation_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/relation_annotator_test.cc.o"
  "CMakeFiles/core_test.dir/core/relation_annotator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/topic_identification_test.cc.o"
  "CMakeFiles/core_test.dir/core/topic_identification_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/training_test.cc.o"
  "CMakeFiles/core_test.dir/core/training_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
