// Corpus: violation-free code exercising every rule's compliant form plus
// a deliberate, suppressed sleep. The linter must report zero diagnostics
// even when this content is placed under a src/serve/ path.
// Never compiled — linted by tests/lint/ceres_lint_test.cc.

#include <chrono>
#include <thread>

#include "util/deadline.h"
#include "util/status.h"
#include "util/sync.h"

namespace ceres::serve {

struct ReplayConfig {
  int rate_limit_qps = 100;
  Deadline deadline;
};

Status Warm();

class Replayer {
 public:
  Status Run() {
    MutexLock lock(mu_);
    CERES_RETURN_IF_ERROR(Warm());
    (void)Warm();
    // Paced replay is a real rate limiter, not a poll loop.
    std::this_thread::sleep_for(  // ceres-lint: allow(thread-hygiene)
        std::chrono::milliseconds(1));
    return Status::Ok();
  }

 private:
  CheckedMutex mu_{"Replayer.mu"};
};

}  // namespace ceres::serve
