#include "synth/world.h"

#include <gtest/gtest.h>

namespace ceres::synth {
namespace {

TEST(MovieWorldTest, BuildsConsistentGraph) {
  MovieWorldConfig config;
  config.scale = 0.2;
  World world = BuildMovieWorld(config);
  EXPECT_TRUE(world.kb.frozen());
  const Ontology& ontology = world.kb.ontology();
  Result<TypeId> film = ontology.TypeByName("film");
  Result<TypeId> person = ontology.TypeByName("person");
  ASSERT_TRUE(film.ok());
  ASSERT_TRUE(person.ok());
  EXPECT_GT(world.OfType(*film).size(), 50u);
  EXPECT_GT(world.OfType(*person).size(), 200u);
  EXPECT_GT(world.kb.num_triples(), 1000);
}

TEST(MovieWorldTest, InversePredicatesConsistent) {
  MovieWorldConfig config;
  config.scale = 0.15;
  World world = BuildMovieWorld(config);
  const Ontology& ontology = world.kb.ontology();
  PredicateId film_director = *ontology.PredicateByName(pred::kFilmDirectedBy);
  PredicateId director_of = *ontology.PredicateByName(pred::kPersonDirectorOf);
  PredicateId film_cast = *ontology.PredicateByName(pred::kFilmHasCastMember);
  PredicateId acted_in = *ontology.PredicateByName(pred::kPersonActedIn);
  for (const Triple& triple : world.kb.triples()) {
    if (triple.predicate == film_director) {
      EXPECT_TRUE(world.kb.HasTriple(triple.object, director_of,
                                     triple.subject));
    }
    if (triple.predicate == film_cast) {
      EXPECT_TRUE(world.kb.HasTriple(triple.object, acted_in,
                                     triple.subject));
    }
  }
}

TEST(MovieWorldTest, EveryFilmHasRequiredFacts) {
  MovieWorldConfig config;
  config.scale = 0.1;
  World world = BuildMovieWorld(config);
  const Ontology& ontology = world.kb.ontology();
  TypeId film = *ontology.TypeByName("film");
  PredicateId year = *ontology.PredicateByName(pred::kFilmReleaseYear);
  PredicateId director = *ontology.PredicateByName(pred::kFilmDirectedBy);
  PredicateId genre = *ontology.PredicateByName(pred::kFilmHasGenre);
  PredicateId rating = *ontology.PredicateByName(pred::kFilmMpaaRating);
  for (EntityId f : world.OfType(film)) {
    int years = 0;
    int directors = 0;
    int genres = 0;
    int ratings = 0;
    for (const Triple& triple : world.kb.TriplesWithSubject(f)) {
      if (triple.predicate == year) ++years;
      if (triple.predicate == director) ++directors;
      if (triple.predicate == genre) ++genres;
      if (triple.predicate == rating) ++ratings;
    }
    EXPECT_EQ(years, 1);
    EXPECT_GE(directors, 1);
    EXPECT_GE(genres, 1);
    EXPECT_EQ(ratings, 1);
  }
}

TEST(MovieWorldTest, DeterministicForSeed) {
  MovieWorldConfig config;
  config.scale = 0.1;
  World a = BuildMovieWorld(config);
  World b = BuildMovieWorld(config);
  ASSERT_EQ(a.kb.num_entities(), b.kb.num_entities());
  ASSERT_EQ(a.kb.num_triples(), b.kb.num_triples());
  for (EntityId id = 0; id < a.kb.num_entities(); ++id) {
    EXPECT_EQ(a.kb.entity(id).name, b.kb.entity(id).name);
  }
}

TEST(MovieWorldTest, EpisodesCarryAmbiguousTitles) {
  MovieWorldConfig config;
  config.scale = 0.3;
  World world = BuildMovieWorld(config);
  TypeId episode = *world.kb.ontology().TypeByName("tv_episode");
  int ambiguous = 0;
  for (EntityId e : world.OfType(episode)) {
    const std::string_view name = world.kb.entity(e).name;
    for (const std::string& t : AmbiguousEpisodeTitles()) {
      if (name == t) {
        ++ambiguous;
        break;
      }
    }
  }
  EXPECT_GT(ambiguous, 10);
}

TEST(BookWorldTest, BooksFullyAttributed) {
  BookWorldConfig config;
  config.scale = 0.2;
  World world = BuildBookWorld(config);
  TypeId book = *world.kb.ontology().TypeByName("book");
  for (EntityId b : world.OfType(book)) {
    EXPECT_GE(world.kb.TriplesWithSubject(b).size(), 4u);
  }
}

TEST(NbaWorldTest, SharedLiteralValues) {
  NbaWorldConfig config;
  World world = BuildNbaWorld(config);
  TypeId length = *world.kb.ontology().TypeByName("length");
  // Heights repeat across players: far fewer height entities than players.
  TypeId player = *world.kb.ontology().TypeByName("player");
  EXPECT_LT(world.OfType(length).size(), world.OfType(player).size());
}

TEST(UniversityWorldTest, TypesAreOnlyPublicPrivate) {
  UniversityWorldConfig config;
  World world = BuildUniversityWorld(config);
  TypeId category = *world.kb.ontology().TypeByName("category");
  ASSERT_EQ(world.OfType(category).size(), 2u);
  EXPECT_EQ(world.kb.entity(world.OfType(category)[0]).name, "Public");
  EXPECT_EQ(world.kb.entity(world.OfType(category)[1]).name, "Private");
}

TEST(WorldScalingTest, ScaleGrowsRosters) {
  MovieWorldConfig small;
  small.scale = 0.1;
  MovieWorldConfig large;
  large.scale = 0.4;
  World a = BuildMovieWorld(small);
  World b = BuildMovieWorld(large);
  EXPECT_LT(a.kb.num_entities(), b.kb.num_entities());
  EXPECT_LT(a.kb.num_triples(), b.kb.num_triples());
}

}  // namespace
}  // namespace ceres::synth
