#ifndef CERES_UTIL_SIMHASH_H_
#define CERES_UTIL_SIMHASH_H_

#include <cstdint>
#include <string_view>

namespace ceres {

/// Simhash (Charikar 2002) over normalized token shingles: the
/// near-duplicate fingerprint behind the serving tier's page cache.
///
/// Normalization makes the fingerprint invariant to the noise that
/// separates two crawls of the same detail page — whitespace runs, tag
/// attribute reordering across lines, letter case: the input is reduced
/// to its lowercased alphanumeric token stream before hashing. Each
/// window of `shingle_size` consecutive tokens is hashed (order
/// sensitive, FNV-1a based, stable across processes like Fnv1a64), and
/// every shingle votes its 64 hash bits up or down; the sign of each
/// tally is the fingerprint bit. Near-identical pages — one field value
/// changed out of hundreds of template tokens — land within a small
/// Hamming distance, while unrelated pages differ in ~32 bits.
struct SimhashConfig {
  /// Tokens per shingle. 1 degenerates to a bag of words (word order
  /// ignored); 4 is the classic near-dup setting: local word order
  /// matters, distant reordering does not.
  int shingle_size = 4;
};

/// 64-bit simhash fingerprint of `text`. Empty or all-non-alphanumeric
/// input maps to 0. Deterministic across runs and processes.
uint64_t Simhash64(std::string_view text, const SimhashConfig& config = {});

/// Number of differing bits between two fingerprints.
int HammingDistance(uint64_t a, uint64_t b);

}  // namespace ceres

#endif  // CERES_UTIL_SIMHASH_H_
