file(REMOVE_RECURSE
  "CMakeFiles/ceres_chaos.dir/ceres_chaos_main.cc.o"
  "CMakeFiles/ceres_chaos.dir/ceres_chaos_main.cc.o.d"
  "ceres_chaos"
  "ceres_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
