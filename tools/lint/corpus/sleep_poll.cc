// Corpus: sleep_for polling in non-test code. Exactly one thread-hygiene
// violation on the sleeping loop.
// Never compiled — linted by tests/lint/ceres_lint_test.cc.

#include <atomic>
#include <chrono>
#include <thread>

namespace ceres {

std::atomic<bool> done{false};

void WaitForDone() {
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // BAD
  }
}

}  // namespace ceres
