
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_components.cc" "bench/CMakeFiles/micro_components.dir/micro_components.cc.o" "gcc" "bench/CMakeFiles/micro_components.dir/micro_components.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/ceres_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/synth/CMakeFiles/ceres_synth.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cluster/CMakeFiles/ceres_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ml/CMakeFiles/ceres_ml.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dom/CMakeFiles/ceres_dom.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/kb/CMakeFiles/ceres_kb.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/text/CMakeFiles/ceres_text.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/ceres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
