#include "ml/lbfgs.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/logging.h"

namespace ceres {

namespace {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double InfNorm(const std::vector<double>& v) {
  double best = 0;
  for (double x : v) best = std::max(best, std::fabs(x));
  return best;
}

}  // namespace

LbfgsResult MinimizeLbfgs(const LbfgsObjective& objective,
                          std::vector<double>* x, const LbfgsConfig& config) {
  const size_t dim = x->size();
  LbfgsResult result;
  std::vector<double> grad(dim, 0.0);
  double fx = objective(*x, &grad);

  // Curvature history: s_i = x_{i+1} - x_i, y_i = g_{i+1} - g_i.
  std::deque<std::vector<double>> s_hist;
  std::deque<std::vector<double>> y_hist;
  std::deque<double> rho_hist;

  std::vector<double> direction(dim);
  std::vector<double> x_next(dim);
  std::vector<double> grad_next(dim, 0.0);

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    if (InfNorm(grad) / std::max(1.0, InfNorm(*x)) <
        config.gradient_tolerance) {
      result.converged = true;
      break;
    }

    // Two-loop recursion computing d = -H * g.
    direction = grad;
    std::vector<double> alpha(s_hist.size());
    for (size_t i = s_hist.size(); i-- > 0;) {
      alpha[i] = rho_hist[i] * Dot(s_hist[i], direction);
      for (size_t j = 0; j < dim; ++j) {
        direction[j] -= alpha[i] * y_hist[i][j];
      }
    }
    if (!s_hist.empty()) {
      // Initial Hessian scaling gamma = s'y / y'y.
      double sy = Dot(s_hist.back(), y_hist.back());
      double yy = Dot(y_hist.back(), y_hist.back());
      double gamma = yy > 0 ? sy / yy : 1.0;
      for (double& d : direction) d *= gamma;
    }
    for (size_t i = 0; i < s_hist.size(); ++i) {
      double beta = rho_hist[i] * Dot(y_hist[i], direction);
      for (size_t j = 0; j < dim; ++j) {
        direction[j] += (alpha[i] - beta) * s_hist[i][j];
      }
    }
    for (double& d : direction) d = -d;

    double directional = Dot(grad, direction);
    if (directional >= 0) {
      // Not a descent direction (history gone stale); reset to steepest
      // descent.
      s_hist.clear();
      y_hist.clear();
      rho_hist.clear();
      for (size_t j = 0; j < dim; ++j) direction[j] = -grad[j];
      directional = -Dot(grad, grad);
      if (directional == 0) {
        result.converged = true;
        break;
      }
    }

    // Backtracking Armijo line search.
    double step = iter == 0 ? std::min(1.0, 1.0 / InfNorm(grad)) : 1.0;
    double fx_next = fx;
    bool accepted = false;
    for (int ls = 0; ls < config.max_line_search; ++ls) {
      for (size_t j = 0; j < dim; ++j) {
        x_next[j] = (*x)[j] + step * direction[j];
      }
      fx_next = objective(x_next, &grad_next);
      if (fx_next <= fx + config.armijo_c * step * directional) {
        accepted = true;
        break;
      }
      step *= config.backtrack;
    }
    if (!accepted) break;  // Line search failed; best point so far kept.

    // Update curvature history.
    std::vector<double> s(dim);
    std::vector<double> y(dim);
    for (size_t j = 0; j < dim; ++j) {
      s[j] = x_next[j] - (*x)[j];
      y[j] = grad_next[j] - grad[j];
    }
    double sy = Dot(s, y);
    if (sy > 1e-12) {
      s_hist.push_back(std::move(s));
      y_hist.push_back(std::move(y));
      rho_hist.push_back(1.0 / sy);
      if (static_cast<int>(s_hist.size()) > config.history) {
        s_hist.pop_front();
        y_hist.pop_front();
        rho_hist.pop_front();
      }
    }

    double improvement = fx - fx_next;
    *x = x_next;
    grad = grad_next;
    fx = fx_next;
    if (improvement >= 0 &&
        improvement <= config.objective_tolerance * std::max(1.0,
                                                             std::fabs(fx))) {
      result.converged = true;
      break;
    }
  }
  result.final_objective = fx;
  return result;
}

}  // namespace ceres
