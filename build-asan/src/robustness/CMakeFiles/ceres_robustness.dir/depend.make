# Empty dependencies file for ceres_robustness.
# This may be replaced when dependencies are built.
