// Quickstart: distantly supervised extraction from a synthetic movie site.
//
// Builds a small movie world, projects an incomplete seed KB out of it,
// renders a 60-page semi-structured website, and runs the full CERES
// pipeline (topic identification -> relation annotation -> training ->
// extraction). Prints the annotation/extraction counts and a few extracted
// triples.

#include <cstdio>

#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "synth/corpora.h"
#include "synth/kb_builder.h"
#include "synth/site_generator.h"
#include "synth/world.h"

int main() {
  using namespace ceres;          // NOLINT(build/namespaces)
  using namespace ceres::synth;   // NOLINT(build/namespaces)

  // 1. A ground-truth world and an incomplete seed KB (85% coverage).
  MovieWorldConfig world_config;
  world_config.scale = 0.4;
  World world = BuildMovieWorld(world_config);
  SeedKbConfig kb_config;
  kb_config.default_coverage = 0.85;
  KnowledgeBase seed_kb = BuildSeedKb(world, kb_config);
  std::printf("Seed KB: %lld entities, %lld triples\n",
              static_cast<long long>(seed_kb.num_entities()),
              static_cast<long long>(seed_kb.num_triples()));

  // 2. A semi-structured website about films.
  SiteSpec spec;
  spec.name = "films.example.com";
  spec.seed = 42;
  spec.tmpl.css_prefix = "ex";
  spec.tmpl.topic_type = "film";
  spec.tmpl.num_recommendations = 3;
  spec.tmpl.sections = {
      {pred::kFilmDirectedBy, "director", SectionLayout::kRow, 0.05, 4},
      {pred::kFilmWrittenBy, "writer", SectionLayout::kRow, 0.05, 4},
      {pred::kFilmHasCastMember, "cast", SectionLayout::kList, 0.05, 15},
      {pred::kFilmHasGenre, "genre", SectionLayout::kList, 0.05, 5},
      {pred::kFilmReleaseDate, "release_date", SectionLayout::kRow, 0.05, 1},
  };
  Result<TypeId> film_type = world.kb.ontology().TypeByName("film");
  spec.topics.assign(world.OfType(*film_type).begin(),
                     world.OfType(*film_type).begin() + 60);
  std::vector<GeneratedPage> generated = GenerateSite(world, spec);
  std::printf("Generated %zu pages (example page: %s)\n", generated.size(),
              generated[0].url.c_str());

  // 3. Parse the HTML (what a crawler hands the extractor).
  std::vector<DomDocument> pages;
  for (const GeneratedPage& page : generated) {
    Result<DomDocument> parsed = ParseHtml(page.html);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    parsed->set_url(page.url);
    pages.push_back(std::move(parsed).value());
  }

  // 4. Full pipeline with paper-default parameters.
  PipelineConfig config;
  config.extraction.confidence_threshold = 0.5;
  Result<PipelineResult> result = RunPipeline(pages, seed_kb, config);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Annotated pages: %zu; annotations: %zu; extractions: %zu\n",
              result->annotated_pages.size(), result->annotations.size(),
              result->extractions.size());

  int shown = 0;
  for (const Extraction& extraction : result->extractions) {
    if (extraction.predicate == kNamePredicate) continue;
    std::printf("  (%s, %s, %s)  conf=%.2f\n", extraction.subject.c_str(),
                seed_kb.ontology().predicate(extraction.predicate)
                    .name.c_str(),
                extraction.object.c_str(), extraction.confidence);
    if (++shown >= 10) break;
  }
  return 0;
}
