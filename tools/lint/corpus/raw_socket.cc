// Corpus: non-net code opening its own socket edge (the test lints this
// content under a src/serve/ path). Exactly one raw-socket violation —
// the bare ::socket; the member call, the class-qualified name, the
// pipe-fd poll, and the suppressed listen below are all compliant shapes
// the rule must not confuse with the raw syscalls.
// Never compiled — linted by tests/lint/ceres_lint_test.cc.

#include <poll.h>
#include <sys/socket.h>

namespace ceres {

struct Channel {
  void connect();
  static int accept(int fd);
};

void OpenEdge(Channel* channel) {
  const int fd = ::socket(2, 1, 0);  // BAD: socket edge outside src/net/

  channel->connect();            // member call, not the syscall
  (void)Channel::accept(3);      // class-qualified, not the syscall
  (void)poll(nullptr, 0, 50);    // poll is the dist layer's pipe wait
  ::listen(fd, 8);  // ceres-lint: allow(raw-socket)
}

}  // namespace ceres
