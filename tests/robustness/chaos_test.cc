// Chaos integration tests: seeded fault injection over a synthetic site,
// run through the resilient pipeline. The contract under corruption is
// graceful degradation — no crash, exact quarantine accounting, typed
// deadline skips, and clean pages scoring as well as they do without any
// corruption nearby.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dom/html_parser.h"
#include "eval/metrics.h"
#include "kb/kb_io.h"
#include "robustness/fault_injector.h"
#include "robustness/resilient_loader.h"
#include "synth/corpora.h"
#include "synth/kb_builder.h"
#include "synth/truth.h"

namespace ceres {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::MovieWorldConfig config;
    config.scale = 0.25;
    world_ = new synth::World(synth::BuildMovieWorld(config));
    synth::SeedKbConfig kb_config;
    kb_config.default_coverage = 0.9;
    seed_kb_ = new KnowledgeBase(synth::BuildSeedKb(*world_, kb_config));

    synth::SiteSpec spec;
    spec.name = "chaos.example";
    spec.seed = 33;
    spec.tmpl.topic_type = "film";
    spec.tmpl.css_prefix = "ch";
    spec.tmpl.num_recommendations = 3;
    spec.tmpl.sections = {
        {synth::pred::kFilmDirectedBy, "director",
         synth::SectionLayout::kRow, 0.05, 3},
        {synth::pred::kFilmWrittenBy, "writer", synth::SectionLayout::kRow,
         0.05, 4},
        {synth::pred::kFilmHasCastMember, "cast",
         synth::SectionLayout::kList, 0.05, 15},
        {synth::pred::kFilmHasGenre, "genre", synth::SectionLayout::kList,
         0.05, 5},
        {synth::pred::kFilmReleaseDate, "release_date",
         synth::SectionLayout::kRow, 0.05, 1},
    };
    TypeId film = *world_->kb.ontology().TypeByName("film");
    const auto& films = world_->OfType(film);
    spec.topics.assign(films.begin(), films.begin() + 80);
    generated_ = new std::vector<synth::GeneratedPage>(
        GenerateSite(*world_, spec));
  }

  static void TearDownTestSuite() {
    delete generated_;
    delete seed_kb_;
    delete world_;
    generated_ = nullptr;
    seed_kb_ = nullptr;
    world_ = nullptr;
  }

  static std::vector<RawPage> RawCrawl() {
    std::vector<RawPage> raw;
    raw.reserve(generated_->size());
    for (const synth::GeneratedPage& page : *generated_) {
      raw.push_back(RawPage{page.url, page.html});
    }
    return raw;
  }

  // Ground truth indexed like the raw crawl (clean parse of every page).
  static eval::SiteTruth Truth() {
    std::vector<DomDocument> parsed;
    for (const synth::GeneratedPage& page : *generated_) {
      Result<DomDocument> doc = ParseHtml(page.html);
      EXPECT_TRUE(doc.ok());
      parsed.push_back(std::move(doc).value());
    }
    return synth::BuildSiteTruth(*generated_, parsed);
  }

  // In-place faults only: crawl shape (page count and order) is preserved,
  // so raw indices still line up with the generator's ground truth.
  static FaultInjectionConfig InPlaceFaults(double rate, uint64_t seed) {
    FaultInjectionConfig config;
    config.seed = seed;
    config.page_fault_rate = rate;
    config.node_bomb_weight = 1.0;
    return config;
  }

  // Lowered per-page parse budget: the site's real pages stay far below
  // it, node-bombed pages blow it and quarantine.
  static ResilientLoadOptions LoadOptions() {
    ResilientLoadOptions options;
    options.parse.max_nodes = 20000;
    return options;
  }

  static double CleanPageF1(const PipelineResult& result,
                            const eval::SiteTruth& truth,
                            const std::vector<PageIndex>& clean_pages) {
    eval::ScoreOptions options;
    options.pages = clean_pages;
    options.confidence_threshold = 0.5;
    return eval::ScoreExtractions(result.extractions, truth, options).f1();
  }

  static synth::World* world_;
  static KnowledgeBase* seed_kb_;
  static std::vector<synth::GeneratedPage>* generated_;
};

synth::World* ChaosTest::world_ = nullptr;
KnowledgeBase* ChaosTest::seed_kb_ = nullptr;
std::vector<synth::GeneratedPage>* ChaosTest::generated_ = nullptr;

TEST_F(ChaosTest, ThirtyPercentCorruptionDegradesGracefully) {
  const std::vector<RawPage> raw = RawCrawl();
  const eval::SiteTruth truth = Truth();

  FaultReport report;
  std::vector<RawPage> corrupted =
      InjectFaults(raw, InPlaceFaults(0.30, /*seed=*/77), &report);
  ASSERT_EQ(corrupted.size(), raw.size());
  ASSERT_GT(report.faults.size(), 10u);

  Result<PipelineResult> chaos_run =
      RunPipelineResilient(corrupted, *seed_kb_, PipelineConfig{},
                           LoadOptions());
  ASSERT_TRUE(chaos_run.ok()) << chaos_run.status().ToString();
  const PipelineDiagnostics& diag = chaos_run->diagnostics;

  // Exact quarantine accounting: a page is quarantined iff its corrupted
  // bytes no longer parse under the load options.
  std::set<PageIndex> expected_quarantine;
  for (size_t i = 0; i < corrupted.size(); ++i) {
    if (!ParseHtml(corrupted[i].html, LoadOptions().parse).ok()) {
      expected_quarantine.insert(static_cast<PageIndex>(i));
    }
  }
  std::set<PageIndex> actual_quarantine;
  for (const QuarantinedPage& page : diag.quarantined_pages) {
    EXPECT_FALSE(page.reason.ok());
    actual_quarantine.insert(page.page);
  }
  EXPECT_EQ(actual_quarantine, expected_quarantine);
  // Node-bombed pages are corrupted beyond the parse budget by
  // construction, so every one of them must be in the quarantine list.
  for (PageIndex page : report.PagesWith(FaultType::kNodeBomb)) {
    EXPECT_EQ(actual_quarantine.count(page), 1u) << "page " << page;
  }
  EXPECT_FALSE(expected_quarantine.empty());

  // Quarantined pages contribute nothing downstream.
  for (const Extraction& extraction : chaos_run->extractions) {
    EXPECT_EQ(expected_quarantine.count(extraction.page), 0u);
  }
  for (PageIndex page : expected_quarantine) {
    EXPECT_EQ(chaos_run->cluster_of_page[static_cast<size_t>(page)], -1);
  }

  // Clean pages score within 2 F1 points of a fully uncorrupted run.
  std::set<PageIndex> faulted;
  for (const InjectedFault& fault : report.faults) {
    faulted.insert(fault.source_page);
  }
  std::vector<PageIndex> clean_pages;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (faulted.count(static_cast<PageIndex>(i)) == 0) {
      clean_pages.push_back(static_cast<PageIndex>(i));
    }
  }
  Result<PipelineResult> baseline =
      RunPipelineResilient(raw, *seed_kb_, PipelineConfig{}, LoadOptions());
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(baseline->diagnostics.quarantined_pages.empty());
  const double baseline_f1 = CleanPageF1(*baseline, truth, clean_pages);
  const double chaos_f1 = CleanPageF1(*chaos_run, truth, clean_pages);
  EXPECT_GT(baseline_f1, 0.65);
  EXPECT_GE(chaos_f1, baseline_f1 - 0.02)
      << "clean-page F1 dropped from " << baseline_f1 << " to " << chaos_f1;
}

TEST_F(ChaosTest, CrawlShapeFaultsAreAccountedAndSurvivable) {
  const std::vector<RawPage> raw = RawCrawl();
  FaultInjectionConfig config;
  config.seed = 11;
  config.page_fault_rate = 0.2;
  config.drop_rate = 0.1;
  config.duplicate_rate = 0.1;
  config.node_bomb_weight = 1.0;
  FaultReport report;
  std::vector<RawPage> corrupted = InjectFaults(raw, config, &report);
  ASSERT_EQ(corrupted.size(),
            raw.size() - static_cast<size_t>(report.count(FaultType::kDrop)) +
                static_cast<size_t>(report.count(FaultType::kDuplicate)));

  Result<PipelineResult> result =
      RunPipelineResilient(corrupted, *seed_kb_, PipelineConfig{},
                           LoadOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Indices in the result refer to the corrupted crawl.
  EXPECT_EQ(result->cluster_of_page.size(), corrupted.size());
  for (const Extraction& extraction : result->extractions) {
    EXPECT_GE(extraction.page, 0);
    EXPECT_LT(static_cast<size_t>(extraction.page), corrupted.size());
  }
  EXPECT_GT(result->extractions.size(), 100u);
}

TEST_F(ChaosTest, PreExpiredDeadlineYieldsTypedSkipsNotHangs) {
  const std::vector<RawPage> raw = RawCrawl();
  PipelineConfig config;
  config.cluster_pages = false;  // One cluster holding every page.
  config.deadline = Deadline::After(std::chrono::milliseconds(0));
  Result<PipelineResult> result =
      RunPipelineResilient(raw, *seed_kb_, config, LoadOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PipelineDiagnostics& diag = result->diagnostics;
  EXPECT_TRUE(diag.run_deadline_expired);
  ASSERT_FALSE(diag.skipped_clusters.empty());
  const ClusterSkip& skip = diag.skipped_clusters.front();
  EXPECT_EQ(skip.cluster, 0);
  EXPECT_EQ(skip.stage, PipelineStage::kTopicIdentification);
  EXPECT_EQ(skip.reason.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result->extractions.empty());
  EXPECT_EQ(diag.counts(PipelineStage::kTopicIdentification).skipped, 1);
}

TEST_F(ChaosTest, CancellationYieldsTypedSkip) {
  const std::vector<RawPage> raw = RawCrawl();
  CancelToken token;
  token.Cancel();
  PipelineConfig config;
  config.cluster_pages = false;
  config.deadline = Deadline().WithToken(token);
  Result<PipelineResult> result =
      RunPipelineResilient(raw, *seed_kb_, config, LoadOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->diagnostics.skipped_clusters.empty());
  EXPECT_EQ(result->diagnostics.skipped_clusters.front().reason.code(),
            StatusCode::kCancelled);
  // The diagnostics summary names the outcome for humans.
  EXPECT_NE(result->diagnostics.Summary().find("CANCELLED"),
            std::string::npos);
}

TEST_F(ChaosTest, CorruptedSeedKbLoadsLenientlyAndPipelineRuns) {
  std::ostringstream serialized;
  ASSERT_TRUE(SaveKb(*seed_kb_, &serialized).ok());
  int64_t corrupted_lines = 0;
  std::string corrupted_text =
      CorruptKbText(serialized.str(), 0.05, /*seed=*/13, &corrupted_lines);
  ASSERT_GT(corrupted_lines, 0);

  std::istringstream in(corrupted_text);
  KbLoadOptions options;
  options.strict = false;
  KbLoadStats stats;
  Result<KnowledgeBase> kb = LoadKb(&in, options, &stats);
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  EXPECT_EQ(stats.bad_lines, corrupted_lines);

  Result<PipelineResult> result =
      RunPipelineResilient(RawCrawl(), *kb, PipelineConfig{}, LoadOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // A 5% thinner KB still drives the pipeline to useful extractions.
  EXPECT_GT(result->extractions.size(), 100u);
}

}  // namespace
}  // namespace ceres
