# Empty compiler generated dependencies file for table8_longtail_sites.
# This may be replaced when dependencies are built.
