// Tests for the template quirk/trap machinery that drives the paper's
// failure-mode reproductions (§5.5.1).

#include <gtest/gtest.h>

#include <set>

#include "dom/html_parser.h"
#include "dom/xpath.h"
#include "synth/site_generator.h"
#include "synth/world.h"

namespace ceres::synth {
namespace {

World SmallWorld() {
  MovieWorldConfig config;
  config.scale = 0.1;
  return BuildMovieWorld(config);
}

SiteSpec BaseSpec(const World& world, int pages) {
  SiteSpec spec;
  spec.name = "quirks.example";
  spec.seed = 11;
  spec.tmpl.topic_type = "film";
  spec.tmpl.css_prefix = "qq";
  spec.tmpl.sections = {
      {pred::kFilmDirectedBy, "director", SectionLayout::kRow, 0.0, 3},
      {pred::kFilmWrittenBy, "writer", SectionLayout::kRow, 0.0, 3},
      {pred::kFilmHasGenre, "genre", SectionLayout::kList, 0.0, 5},
  };
  TypeId film = *world.kb.ontology().TypeByName("film");
  const auto& films = world.OfType(film);
  spec.topics.assign(films.begin(), films.begin() + pages);
  return spec;
}

TEST(QuirksTest, WeakLabelsRenderGenericLabelEverywhere) {
  World world = SmallWorld();
  SiteSpec spec = BaseSpec(world, 6);
  spec.tmpl.weak_labels = true;
  for (const GeneratedPage& page : GenerateSite(world, spec)) {
    EXPECT_EQ(page.html.find("Director:"), std::string::npos);
    EXPECT_EQ(page.html.find("Writer:"), std::string::npos);
    EXPECT_NE(page.html.find("Details:"), std::string::npos);
  }
}

TEST(QuirksTest, DailyChartsEmbedReleaseDateWithGroundTruth) {
  World world = SmallWorld();
  SiteSpec spec = BaseSpec(world, 10);
  spec.tmpl.daily_charts = true;
  PredicateId release =
      *world.kb.ontology().PredicateByName(pred::kFilmReleaseDate);
  int pages_with_release_truth = 0;
  for (const GeneratedPage& page : GenerateSite(world, spec)) {
    Result<DomDocument> parsed = ParseHtml(page.html);
    ASSERT_TRUE(parsed.ok());
    for (const GroundTruthFact& fact : page.facts) {
      if (fact.predicate != release) continue;
      ++pages_with_release_truth;
      NodeId node = XPath::Parse(fact.xpath)->Resolve(*parsed);
      ASSERT_NE(node, kInvalidNode);
      // The labelled date sits in a td of the (mimicking) chart table.
      EXPECT_EQ(parsed->node(node).tag, "td");
      NodeId table = parsed->node(parsed->node(node).parent).parent;
      EXPECT_EQ(parsed->Attribute(table, "class"), "qq-tbl");
      break;
    }
  }
  EXPECT_GT(pages_with_release_truth, 5);
}

TEST(QuirksTest, SectionShuffleChangesOrderAcrossPages) {
  World world = SmallWorld();
  SiteSpec spec = BaseSpec(world, 20);
  spec.tmpl.section_shuffle_prob = 1.0;
  std::vector<GeneratedPage> pages = GenerateSite(world, spec);
  // With shuffling on every page, the director row cannot sit at the same
  // main-child position everywhere.
  std::set<std::string> director_paths;
  PredicateId director =
      *world.kb.ontology().PredicateByName(pred::kFilmDirectedBy);
  for (const GeneratedPage& page : pages) {
    for (const GroundTruthFact& fact : page.facts) {
      if (fact.predicate == director) {
        director_paths.insert(fact.xpath);
        break;
      }
    }
  }
  EXPECT_GT(director_paths.size(), 1u);
}

TEST(QuirksTest, AllGenresNavListsEveryGenreWithoutTruth) {
  World world = SmallWorld();
  SiteSpec spec = BaseSpec(world, 4);
  spec.tmpl.all_genres_nav = true;
  spec.tmpl.sections.pop_back();  // Remove the true genre section.
  PredicateId genre =
      *world.kb.ontology().PredicateByName(pred::kFilmHasGenre);
  for (const GeneratedPage& page : GenerateSite(world, spec)) {
    // Every genre name appears on every page...
    EXPECT_NE(page.html.find("Comedy"), std::string::npos);
    EXPECT_NE(page.html.find("Western"), std::string::npos);
    // ...but none of them is asserted.
    for (const GroundTruthFact& fact : page.facts) {
      EXPECT_NE(fact.predicate, genre);
    }
  }
}

TEST(QuirksTest, PageNoiseShiftsDownstreamPaths) {
  World world = SmallWorld();
  SiteSpec spec = BaseSpec(world, 40);
  spec.tmpl.page_noise_prob = 0.5;
  PredicateId director =
      *world.kb.ontology().PredicateByName(pred::kFilmDirectedBy);
  std::set<std::string> paths;
  for (const GeneratedPage& page : GenerateSite(world, spec)) {
    for (const GroundTruthFact& fact : page.facts) {
      if (fact.predicate == director) {
        paths.insert(fact.xpath);
        break;
      }
    }
  }
  // Ad insertion before some sections produces at least two distinct
  // director paths (the Figure 2 phenomenon).
  EXPECT_GT(paths.size(), 1u);
}

TEST(QuirksTest, LocaleAffectsRenderedLabels) {
  World world = SmallWorld();
  SiteSpec spec = BaseSpec(world, 3);
  spec.tmpl.locale = Locale::kCzech;
  for (const GeneratedPage& page : GenerateSite(world, spec)) {
    EXPECT_NE(page.html.find("Režie:"), std::string::npos);
    EXPECT_EQ(page.html.find("Director:"), std::string::npos);
  }
}

}  // namespace
}  // namespace ceres::synth
