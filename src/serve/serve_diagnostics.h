#ifndef CERES_SERVE_SERVE_DIAGNOSTICS_H_
#define CERES_SERVE_SERVE_DIAGNOSTICS_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace ceres::serve {

/// Why a request left the service without full extraction output. The
/// online-path analogue of core/pipeline.h's typed ClusterSkip reasons:
/// load shedding and partial failures are reported, never silent.
enum class ShedCause {
  kNone = 0,
  /// Admission control: the global pending queue was at capacity.
  kQueueFull,
  /// The request's deadline was already expired (or its token cancelled)
  /// when it was submitted.
  kDeadlineBeforeAdmission,
  /// The deadline expired while the request sat in a site queue.
  kTimedOutInQueue,
  /// The site's model could not be loaded (missing site, corrupt or
  /// truncated model file, registry failure).
  kModelLoadFailed,
  /// The request's HTML did not parse under the service's parse budget.
  kParseFailed,
  /// The service was stopped while the request was still queued.
  kShutdown,
};
inline constexpr int kNumShedCauses = 7;

/// Human-readable cause name ("queue_full", ...).
const char* ShedCauseName(ShedCause cause);

/// Per-request timing and outcome record, returned with every ServeResult.
/// Mirrors PipelineDiagnostics at request granularity: where the time went
/// (queue, parse, inference) and, for shed requests, the typed cause.
struct ServeDiagnostics {
  ShedCause shed_cause = ShedCause::kNone;
  /// Time from admission to being picked up by a worker batch.
  std::chrono::microseconds queue_wait{0};
  /// HTML parse time of this request's page.
  std::chrono::microseconds parse_time{0};
  /// Model application time of the batch this request rode in (shared
  /// across the batch; per-request attribution below node granularity is
  /// not meaningful for a batched matrix pass).
  std::chrono::microseconds inference_time{0};
  /// Requests in the batch this one was served with.
  int batch_size = 0;
  /// True when the site model came from the warm cache; false when this
  /// batch paid a cold load.
  bool model_cache_hit = false;
  /// True when the result was served from the near-duplicate page cache —
  /// the request skipped parse and inference entirely; the timing fields
  /// are those of the original (cached) extraction.
  bool near_dup_hit = false;
  /// Version of the site model applied; -1 when no model was reached.
  int64_t model_version = -1;
};

/// Service-wide counters, aggregated across all requests since Start().
struct ServiceStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t extractions = 0;
  int64_t batches = 0;
  /// Sum of batch sizes, for mean-batch-size reporting.
  int64_t batched_requests = 0;
  /// Shed totals indexed by ShedCause (kNone slot unused).
  int64_t shed[kNumShedCauses] = {};

  int64_t total_shed() const;
  /// Multi-line human-readable rendering for logs and CLI tools, in the
  /// style of PipelineDiagnostics::Summary().
  std::string Summary() const;
};

}  // namespace ceres::serve

#endif  // CERES_SERVE_SERVE_DIAGNOSTICS_H_
