#ifndef CERES_SYNTH_KB_BUILDER_H_
#define CERES_SYNTH_KB_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.h"
#include "synth/site_generator.h"
#include "synth/world.h"

namespace ceres::synth {

/// Controls the projection of a World into a seed KB — the knob that
/// recreates the paper's KB-incompleteness regimes (footnote 10: the IMDb
/// seed KB held only ~14% of the cast facts asserted on pages, biased
/// toward popular entities).
struct SeedKbConfig {
  uint64_t seed = 11;
  /// Fraction of world facts kept per predicate (by name); predicates not
  /// listed use default_coverage.
  std::unordered_map<std::string, double> coverage;
  double default_coverage = 1.0;
  /// When true, kept facts skew toward popular subjects (early roster
  /// positions): effective keep probability is scaled by 2*(1 - rank)
  /// where rank in [0,1) is the subject's popularity rank.
  bool popularity_bias = false;
  /// Copy alias surface forms of copied entities.
  bool include_aliases = true;
};

/// Projects `world` into a fresh seed KnowledgeBase (same ontology, new
/// entity ids). Only entities participating in kept triples are copied.
/// The result is frozen.
KnowledgeBase BuildSeedKb(const World& world, const SeedKbConfig& config);

/// Builds a seed KB from the node-level ground truth of already-generated
/// pages — the paper's protocol for the Book / NBA / University verticals,
/// where the seed KB is the ground truth of the alphabetically first site
/// (§5.1.1). The result is frozen.
KnowledgeBase BuildSeedKbFromPages(const World& world,
                                   const std::vector<GeneratedPage>& pages);

}  // namespace ceres::synth

#endif  // CERES_SYNTH_KB_BUILDER_H_
