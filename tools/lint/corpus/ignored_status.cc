// Corpus: a Status-returning call used as a bare statement. The linter
// must flag exactly one ignored-status violation (the bare DoWork() call;
// the checked and explicitly-discarded calls are fine).
// Never compiled — linted by tests/lint/ceres_lint_test.cc.

#include "util/status.h"

namespace ceres {

Status DoWork();

void Caller() {
  DoWork();  // BAD: result silently dropped
  (void)DoWork();
  Status checked = DoWork();
  if (!checked.ok()) {
    return;
  }
}

}  // namespace ceres
