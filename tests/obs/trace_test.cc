#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace ceres::obs {
namespace {

TEST(ElapsedMicrosTest, SaturatesAtZero) {
  const TimePoint now = MonotonicNow();
  EXPECT_EQ(ElapsedMicros(now, now).count(), 0);
  // Reversed endpoints clamp instead of going negative.
  const TimePoint later = now + std::chrono::milliseconds(5);
  EXPECT_EQ(ElapsedMicros(later, now).count(), 0);
  EXPECT_EQ(ElapsedMicros(now, later).count(), 5000);
}

TEST(TraceSpanTest, NullTreeIsANoOp) {
  TraceSpan span(nullptr, "orphan");
  EXPECT_FALSE(span.active());
  // Children of an inactive span are inactive too.
  TraceSpan child(span, "child");
  EXPECT_FALSE(child.active());
  span.End();  // Harmless.
}

TEST(TraceSpanTest, RecordsOnDestructionOrFirstEnd) {
  TraceTree tree;
  {
    TraceSpan span(&tree, "work");
    EXPECT_TRUE(span.active());
  }
  EXPECT_EQ(tree.SpanCount({"work"}), 1);

  TraceSpan span(&tree, "work");
  span.End();
  EXPECT_FALSE(span.active());
  span.End();  // Idempotent: still one record when the span dies.
  EXPECT_EQ(tree.SpanCount({"work"}), 2);
}

TEST(TraceTreeTest, SameParentAndNameAggregate) {
  TraceTree tree;
  {
    TraceSpan run(&tree, "pipeline");
    for (int i = 0; i < 200; ++i) {
      TraceSpan extract(run, "extract");
    }
  }
  // 200 spans fold into one node, not 200 children.
  EXPECT_EQ(tree.SpanCount({"pipeline", "extract"}), 200);
  EXPECT_EQ(tree.SpanCount({"pipeline"}), 1);
  EXPECT_GE(tree.TotalMicros({"pipeline"}), 0);
}

TEST(TraceTreeTest, PathLookupsMissGracefully) {
  TraceTree tree;
  TraceSpan span(&tree, "stage");
  span.End();
  EXPECT_EQ(tree.SpanCount({"stage"}), 1);
  EXPECT_EQ(tree.SpanCount({"missing"}), 0);
  EXPECT_EQ(tree.SpanCount({"stage", "missing"}), 0);
  EXPECT_EQ(tree.TotalMicros({"missing"}), 0);
  // The empty path names the synthetic root, which records nothing.
  EXPECT_EQ(tree.SpanCount({}), 0);
}

TEST(TraceTreeTest, SiblingsWithDistinctNamesStaySeparate) {
  TraceTree tree;
  {
    TraceSpan run(&tree, "cluster");
    TraceSpan topic(run, "topic");
    topic.End();
    TraceSpan train(run, "train");
    train.End();
  }
  EXPECT_EQ(tree.SpanCount({"cluster", "topic"}), 1);
  EXPECT_EQ(tree.SpanCount({"cluster", "train"}), 1);
  // The same name under a different parent is a different node.
  EXPECT_EQ(tree.SpanCount({"topic"}), 0);
}

TEST(TraceTreeTest, ChildOfEndedSpanIsInactive) {
  TraceTree tree;
  TraceSpan run(&tree, "run");
  run.End();
  TraceSpan late(run, "late");
  EXPECT_FALSE(late.active());
  late.End();
  EXPECT_EQ(tree.SpanCount({"run", "late"}), 0);
}

TEST(TraceTreeTest, JsonNestsChildrenUnderParents) {
  TraceTree tree;
  {
    TraceSpan run(&tree, "pipeline");
    TraceSpan stage(run, "clustering");
  }
  const std::string json = tree.ToJson();
  EXPECT_NE(json.find("\"name\":\"root\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"pipeline\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"clustering\""), std::string::npos) << json;
  // The child is serialized inside the parent's children array.
  EXPECT_LT(json.find("\"name\":\"pipeline\""),
            json.find("\"name\":\"clustering\""));
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
}

TEST(TraceTreeTest, ConcurrentChildSpansFromWorkers) {
  TraceTree tree;
  TraceSpan run(&tree, "clusters");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan cluster(run, "cluster");
        TraceSpan extract(cluster, "extract");
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  run.End();
  EXPECT_EQ(tree.SpanCount({"clusters", "cluster"}), kThreads * kPerThread);
  EXPECT_EQ(tree.SpanCount({"clusters", "cluster", "extract"}),
            kThreads * kPerThread);
  EXPECT_GE(tree.TotalMicros({"clusters", "cluster"}),
            tree.TotalMicros({"clusters", "cluster", "extract"}));
}

}  // namespace
}  // namespace ceres::obs
