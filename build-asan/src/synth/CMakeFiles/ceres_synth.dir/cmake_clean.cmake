file(REMOVE_RECURSE
  "CMakeFiles/ceres_synth.dir/corpora.cc.o"
  "CMakeFiles/ceres_synth.dir/corpora.cc.o.d"
  "CMakeFiles/ceres_synth.dir/kb_builder.cc.o"
  "CMakeFiles/ceres_synth.dir/kb_builder.cc.o.d"
  "CMakeFiles/ceres_synth.dir/names.cc.o"
  "CMakeFiles/ceres_synth.dir/names.cc.o.d"
  "CMakeFiles/ceres_synth.dir/site_generator.cc.o"
  "CMakeFiles/ceres_synth.dir/site_generator.cc.o.d"
  "CMakeFiles/ceres_synth.dir/world.cc.o"
  "CMakeFiles/ceres_synth.dir/world.cc.o.d"
  "libceres_synth.a"
  "libceres_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
