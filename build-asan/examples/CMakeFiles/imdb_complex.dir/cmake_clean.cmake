file(REMOVE_RECURSE
  "CMakeFiles/imdb_complex.dir/imdb_complex.cpp.o"
  "CMakeFiles/imdb_complex.dir/imdb_complex.cpp.o.d"
  "imdb_complex"
  "imdb_complex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdb_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
