// Parity of the hashed-feature-id path with the legacy string-named path.
//
// Feature ids are defined as Fnv1a64 of the exact legacy feature-name bytes
// (ml/feature_id.h), so three properties together guarantee that training
// and extraction behave byte-identically to the string-named featurizer:
//   1. every emitted id equals the hash of its traced legacy name,
//   2. no two distinct names on the corpus collide into one id (dense
//      indices then mirror the string path's first-occurrence order), and
//   3. a model round-tripped through the version-1 string-named file format
//      (names hashed on read) extracts identically to the in-memory model.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/entity_matcher.h"
#include "core/extractor.h"
#include "core/model_io.h"
#include "core/relation_annotator.h"
#include "core/topic_identification.h"
#include "core/training.h"
#include "testing/fixtures.h"
#include "util/string_util.h"

namespace ceres {
namespace {

using testing::FilmPageHtml;
using testing::ParseOrDie;
using testing::TinyMovieKb;

struct ParityFixture {
  ParityFixture() {
    docs.push_back(ParseOrDie(FilmPageHtml(
        "Do the Right Thing", "Spike Lee", "Spike Lee",
        {"Spike Lee", "Danny Aiello", "John Turturro"},
        {"Comedy", "Dramedy"})));
    docs.push_back(ParseOrDie(FilmPageHtml(
        "Crooklyn", "Spike Lee", "Nobody", {"Zelda Harris"}, {"Comedy"})));
    docs.push_back(ParseOrDie(FilmPageHtml(
        "Malcolm X", "Spike Lee", "Arnold Perl", {"Denzel Washington"},
        {"Dramedy"})));
    for (const DomDocument& doc : docs) {
      ptrs.push_back(&doc);
      mentions.push_back(MatchPageMentions(doc, kb.kb));
    }
    TopicConfig config;
    config.min_annotations_per_page = 2;
    config.common_string_min_count = 100;
    topics = IdentifyTopics(ptrs, mentions, kb.kb, config);
    annotations = AnnotateRelations(ptrs, mentions, topics, kb.kb, {});
  }

  TinyMovieKb kb;
  std::vector<DomDocument> docs;
  std::vector<const DomDocument*> ptrs;
  std::vector<PageMentions> mentions;
  TopicResult topics;
  AnnotationResult annotations;
};

TEST(FeatureIdParityTest, EveryEmittedIdIsTheHashOfItsLegacyName) {
  ParityFixture fixture;
  FeatureExtractor featurizer(fixture.ptrs, FeatureConfig{});
  HashedFeatureMap map;
  FeatureNameTrace trace;
  for (const DomDocument* doc : fixture.ptrs) {
    for (NodeId node : doc->TextFields()) {
      featurizer.Extract(*doc, node, &map, {}, nullptr, &trace);
    }
  }
  ASSERT_GT(map.size(), 0);
  for (int32_t f = 0; f < map.size(); ++f) {
    const uint64_t id = map.IdAt(f);
    const std::string& name = trace.NameOf(id);
    ASSERT_FALSE(name.empty()) << "untraced feature id " << id;
    EXPECT_EQ(Fnv1a64(name), id) << name;
    // Legacy name shapes: structural or text features.
    EXPECT_TRUE(name.rfind("S|", 0) == 0 || name.rfind("T|", 0) == 0) << name;
  }
}

TEST(FeatureIdParityTest, NoNameCollisionsAcrossTheCorpusVocabulary) {
  ParityFixture fixture;
  FeatureExtractor featurizer(fixture.ptrs, FeatureConfig{});
  // Per-node traces feed a global id -> name table; a collision would
  // surface as the same id carrying two different names on different nodes.
  std::unordered_map<uint64_t, std::string> global;
  std::unordered_set<std::string> distinct_names;
  for (const DomDocument* doc : fixture.ptrs) {
    for (NodeId node : doc->TextFields()) {
      HashedFeatureMap throwaway;
      FeatureNameTrace trace;
      featurizer.Extract(*doc, node, &throwaway, {}, nullptr, &trace);
      for (const auto& [id, name] : trace.names()) {
        auto [it, inserted] = global.emplace(id, name);
        if (!inserted) {
          EXPECT_EQ(it->second, name) << "feature id collision on " << id;
        }
        distinct_names.insert(name);
      }
    }
  }
  EXPECT_EQ(global.size(), distinct_names.size());
  EXPECT_GT(global.size(), 50u);
}

TEST(FeatureIdParityTest, ExtractionIdenticalThroughV1StringNamedRoundTrip) {
  ParityFixture fixture;
  ASSERT_FALSE(fixture.annotations.annotations.empty());
  FeatureExtractor featurizer(fixture.ptrs, FeatureConfig{});
  Result<TrainedModel> trained =
      TrainExtractor(fixture.ptrs, fixture.annotations.annotations,
                     featurizer, fixture.kb.kb.ontology(), TrainingConfig{});
  ASSERT_TRUE(trained.ok());

  std::vector<PageIndex> indices;
  for (size_t p = 0; p < fixture.ptrs.size(); ++p) {
    indices.push_back(static_cast<PageIndex>(p));
  }
  std::vector<Extraction> expected = ExtractFromPages(
      fixture.ptrs, indices, &*trained, featurizer, {});
  ASSERT_FALSE(expected.empty());

  // Trace the legacy names of the trained vocabulary by re-featurizing.
  HashedFeatureMap scratch;
  FeatureNameTrace trace;
  for (const DomDocument* doc : fixture.ptrs) {
    for (NodeId node : doc->TextFields()) {
      featurizer.Extract(*doc, node, &scratch, {}, nullptr, &trace);
    }
  }

  // Serialize as v2, then rewrite the dictionary as a version-1 file:
  // no #format section, #features carrying the legacy names.
  std::ostringstream out;
  ASSERT_TRUE(SaveModel(*trained, fixture.kb.kb.ontology(), &out).ok());
  const std::string v2_text = out.str();
  ASSERT_NE(v2_text.find("#format\n2\n"), std::string::npos);
  ASSERT_NE(v2_text.find("#featureids\n"), std::string::npos);

  std::string v1_text = v2_text;
  v1_text.replace(v1_text.find("#format\n2\n"), 10, "");
  const size_t ids_at = v1_text.find("#featureids\n");
  const size_t weights_at = v1_text.find("#weights\n");
  ASSERT_NE(ids_at, std::string::npos);
  ASSERT_NE(weights_at, std::string::npos);
  std::string features_section = "#features\n";
  for (int32_t f = 0; f < trained->features.size(); ++f) {
    features_section +=
        StrCat(f, "\t", trace.NameOf(trained->features.IdAt(f)), "\n");
  }
  v1_text.replace(ids_at, weights_at - ids_at, features_section);

  std::istringstream v1_in(v1_text);
  Result<TrainedModel> v1_model = LoadModel(&v1_in, fixture.kb.kb.ontology());
  ASSERT_TRUE(v1_model.ok()) << v1_model.status().ToString();

  // The hash-on-read shim must rebuild the identical dictionary...
  ASSERT_EQ(v1_model->features.size(), trained->features.size());
  for (int32_t f = 0; f < trained->features.size(); ++f) {
    EXPECT_EQ(v1_model->features.IdAt(f), trained->features.IdAt(f));
  }

  // ...and the loaded model must extract byte-identically.
  FeatureExtractor v1_featurizer = MakeFeaturizer(*v1_model);
  std::vector<Extraction> actual = ExtractFromPages(
      fixture.ptrs, indices, &*v1_model, v1_featurizer, {});
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].page, expected[i].page);
    EXPECT_EQ(actual[i].node, expected[i].node);
    EXPECT_EQ(actual[i].predicate, expected[i].predicate);
    EXPECT_EQ(actual[i].subject, expected[i].subject);
    EXPECT_EQ(actual[i].object, expected[i].object);
    EXPECT_EQ(actual[i].confidence, expected[i].confidence);
  }

  // The v2 round trip is exact as well.
  std::istringstream v2_in(v2_text);
  Result<TrainedModel> v2_model = LoadModel(&v2_in, fixture.kb.kb.ontology());
  ASSERT_TRUE(v2_model.ok()) << v2_model.status().ToString();
  FeatureExtractor v2_featurizer = MakeFeaturizer(*v2_model);
  std::vector<Extraction> v2_actual = ExtractFromPages(
      fixture.ptrs, indices, &*v2_model, v2_featurizer, {});
  ASSERT_EQ(v2_actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(v2_actual[i].object, expected[i].object);
    EXPECT_EQ(v2_actual[i].confidence, expected[i].confidence);
  }
}

}  // namespace
}  // namespace ceres
