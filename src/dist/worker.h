#ifndef CERES_DIST_WORKER_H_
#define CERES_DIST_WORKER_H_

#include "core/pipeline.h"
#include "dist/wire.h"
#include "kb/knowledge_base.h"
#include "util/deadline.h"
#include "util/status.h"

/// The worker side of the distributed extraction protocol (see wire.h and
/// DESIGN.md "Distributed batch extraction").
///
/// A worker is a loop over its inbound pipe: decode an assign-shard frame,
/// run the CERES pipeline per site, stream heartbeat/progress frames, send
/// the shard result, repeat until shutdown or EOF. The same per-site entry
/// points are also called by the coordinator's single-process reference
/// path, which is what makes the distributed merge byte-identical to a
/// single-process run.
namespace ceres::dist {

/// Builds the PipelineConfig every dist pipeline run uses — worker and
/// single-process reference alike. Keeping this the single construction
/// point is the byte-identical guarantee: any knob added to
/// WorkerPipelineOptions flows through here or it does not exist.
PipelineConfig MakeDistPipelineConfig(const WorkerPipelineOptions& options);

/// Runs the resilient pipeline over one site's raw pages and condenses the
/// outcome into a SiteResult. Page indices in the extractions are
/// site-local (the site's raw page order). A site whose batch empties out
/// under the quarantine budget yields zero extractions, not an error.
/// `deadline` is the enclosing shard's budget (RunShard derives it from
/// `options.shard_time_budget_ms`); infinite by default.
Result<SiteResult> RunSiteForDist(const ShardSite& site,
                                  const KnowledgeBase& kb,
                                  const WorkerPipelineOptions& options,
                                  const Deadline& deadline = Deadline());

/// Runs a whole shard in-process: every site through RunSiteForDist, in
/// task order. Ignores `task.fault` — fault acting is the worker loop's
/// job; this is the pure computation both process modes share.
Result<ShardResult> RunShard(const ShardTask& task, const KnowledgeBase& kb);

/// The worker process main loop: reads frames from `in_fd`, writes frames
/// to `out_fd`, until a shutdown frame or EOF. Acts out the process fault
/// carried in each task (crash halfway, hang silently, truncate the result
/// frame) — in a forked child these end the child, never the caller.
/// Returns OK on clean shutdown; an error Status means the inbound stream
/// was corrupt or a write failed (the worker should exit nonzero).
Status RunWorkerLoop(int in_fd, int out_fd, const KnowledgeBase& kb);

}  // namespace ceres::dist

#endif  // CERES_DIST_WORKER_H_
