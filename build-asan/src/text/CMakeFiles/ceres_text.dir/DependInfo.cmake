
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/fuzzy_matcher.cc" "src/text/CMakeFiles/ceres_text.dir/fuzzy_matcher.cc.o" "gcc" "src/text/CMakeFiles/ceres_text.dir/fuzzy_matcher.cc.o.d"
  "/root/repo/src/text/levenshtein.cc" "src/text/CMakeFiles/ceres_text.dir/levenshtein.cc.o" "gcc" "src/text/CMakeFiles/ceres_text.dir/levenshtein.cc.o.d"
  "/root/repo/src/text/normalize.cc" "src/text/CMakeFiles/ceres_text.dir/normalize.cc.o" "gcc" "src/text/CMakeFiles/ceres_text.dir/normalize.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/ceres_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/ceres_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/ceres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
