#ifndef CERES_ROBUSTNESS_RESILIENT_LOADER_H_
#define CERES_ROBUSTNESS_RESILIENT_LOADER_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "util/status.h"

namespace ceres {

/// One fetched page of a crawl, before parsing. This is the boundary where
/// real inputs go wrong: truncated transfers, garbled bytes, duplicated
/// fetches. Everything downstream of the resilient loader works on parsed
/// DomDocuments and may assume they are well-formed.
struct RawPage {
  std::string url;
  std::string html;
};

/// Options of LoadCrawl.
struct ResilientLoadOptions {
  /// Parser options applied to every page. Lower `parse.max_nodes` to bound
  /// per-page work against pathological inputs; pages over the bound are
  /// quarantined rather than failing the load.
  HtmlParseOptions parse;
  /// Abort with kResourceExhausted when more than this fraction of the
  /// crawl ends up quarantined — past that point the input is likely not a
  /// crawl of detail pages at all and degrading silently would hide it.
  double max_quarantine_fraction = 0.5;
};

/// A crawl after resilient loading: the surviving parsed pages plus an
/// exact account of what was quarantined.
struct LoadedCrawl {
  /// Parsed survivors, in original crawl order.
  std::vector<DomDocument> pages;
  /// pages[i] was parsed from raw[source_index[i]].
  std::vector<PageIndex> source_index;
  /// Inverse map, sized to the raw crawl: surviving index of each raw page,
  /// -1 when it was quarantined.
  std::vector<PageIndex> surviving_index;
  /// Quarantined pages in original crawl order, each with its typed parse
  /// failure.
  std::vector<QuarantinedPage> quarantined;
};

/// Parses a raw crawl, quarantining pages that fail to parse instead of
/// failing the batch. Fails only when the quarantine budget
/// (`max_quarantine_fraction`) is blown.
Result<LoadedCrawl> LoadCrawl(const std::vector<RawPage>& raw,
                              const ResilientLoadOptions& options = {});

/// LoadCrawl + RunPipeline + index remapping, as one call.
///
/// `config.annotation_pages` / `config.extraction_pages` and every page
/// index in the returned PipelineResult use the caller's raw-crawl
/// indexing; quarantined pages simply drop out (cluster -1, no topic, no
/// extractions) and appear in `result.diagnostics.quarantined_pages`.
///
/// An empty batch — no raw pages, or every page quarantined within the
/// budget — returns an empty OK result (with the quarantine diagnostics),
/// not an error: an emptied corpus shard costs nothing downstream.
Result<PipelineResult> RunPipelineResilient(
    const std::vector<RawPage>& raw, const KnowledgeBase& kb,
    const PipelineConfig& config = {},
    const ResilientLoadOptions& load_options = {});

}  // namespace ceres

#endif  // CERES_ROBUSTNESS_RESILIENT_LOADER_H_
