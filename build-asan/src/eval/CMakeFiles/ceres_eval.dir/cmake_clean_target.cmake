file(REMOVE_RECURSE
  "libceres_eval.a"
)
