#include "ml/feature_map.h"

#include <gtest/gtest.h>

namespace ceres {
namespace {

TEST(FeatureMapTest, AssignsDenseIndices) {
  FeatureMap map;
  EXPECT_EQ(map.GetOrAdd("a"), 0);
  EXPECT_EQ(map.GetOrAdd("b"), 1);
  EXPECT_EQ(map.GetOrAdd("a"), 0);
  EXPECT_EQ(map.size(), 2);
}

TEST(FeatureMapTest, GetNeverInserts) {
  FeatureMap map;
  EXPECT_EQ(map.Get("missing"), -1);
  EXPECT_EQ(map.size(), 0);
  map.GetOrAdd("present");
  EXPECT_EQ(map.Get("present"), 0);
}

TEST(FeatureMapTest, FrozenMapRejectsNewFeatures) {
  FeatureMap map;
  map.GetOrAdd("seen");
  map.Freeze();
  EXPECT_EQ(map.GetOrAdd("unseen"), -1);
  EXPECT_EQ(map.GetOrAdd("seen"), 0);
  EXPECT_EQ(map.size(), 1);
}

TEST(FeatureMapTest, NameLookup) {
  FeatureMap map;
  map.GetOrAdd("alpha");
  map.GetOrAdd("beta");
  EXPECT_EQ(map.Name(0), "alpha");
  EXPECT_EQ(map.Name(1), "beta");
}

TEST(FeatureMapDeathTest, NameOutOfRange) {
  FeatureMap map;
  EXPECT_DEATH(map.Name(0), "");
}

}  // namespace
}  // namespace ceres
