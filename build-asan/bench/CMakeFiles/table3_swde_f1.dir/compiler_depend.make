# Empty compiler generated dependencies file for table3_swde_f1.
# This may be replaced when dependencies are built.
