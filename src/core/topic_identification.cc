#include "core/topic_identification.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "text/jaccard.h"
#include "text/normalize.h"
#include "util/logging.h"

namespace ceres {

namespace {

// Score map for one page: topic candidate -> Jaccard score (Equation 1).
using CandidateScores = std::unordered_map<EntityId, double>;

// Memo of IsTopicCandidate over the run's pages: eligibility is
// page-independent, and the same entity appears in many pages' pageSets, so
// normalizing its name once per run (not once per page) matters.
using EligibilityCache = std::unordered_map<EntityId, bool>;

// True if `entity` may be considered a topic candidate at all.
bool IsTopicCandidate(const KnowledgeBase& kb, EntityId entity,
                      const std::unordered_set<std::string>& common_strings,
                      EligibilityCache* cache) {
  auto it = cache->find(entity);
  if (it != cache->end()) return it->second;
  const Entity& record = kb.entity(entity);
  bool eligible = true;
  if (kb.ontology().entity_type(record.type).is_literal) {
    eligible = false;
  } else if (IsLowInformation(record.name)) {
    eligible = false;
  } else if (common_strings.count(NormalizeText(record.name)) > 0) {
    eligible = false;
  } else {
    // An entity that is the subject of nothing in the KB can never score.
    eligible = !kb.ObjectsOfSubject(entity).empty();
  }
  (*cache)[entity] = eligible;
  return eligible;
}

// ScoreEntitiesForPage of Algorithm 1: Jaccard between the page's entity
// set and each candidate's KB object set.
CandidateScores ScoreEntitiesForPage(
    const PageMentions& mentions, const KnowledgeBase& kb,
    const std::unordered_set<std::string>& common_strings,
    EligibilityCache* eligibility) {
  CandidateScores scores;
  for (EntityId entity : mentions.page_set) {
    if (!IsTopicCandidate(kb, entity, common_strings, eligibility)) continue;
    double score =
        JaccardSimilarity(mentions.page_set, kb.ObjectsOfSubject(entity));
    if (score > 0) scores[entity] = score;
  }
  return scores;
}

// Deterministic argmax: highest score, ties broken toward the smaller id.
EntityId BestCandidate(const CandidateScores& scores) {
  EntityId best = kInvalidEntity;
  double best_score = -1;
  for (const auto& [entity, score] : scores) {
    if (score > best_score || (score == best_score && entity < best)) {
      best = entity;
      best_score = score;
    }
  }
  return best;
}

// Number of KB triples of `topic` whose object is mentioned on the page —
// the potential annotation count driving the informativeness filter.
int PotentialAnnotationCount(const KnowledgeBase& kb, EntityId topic,
                             const PageMentions& mentions) {
  int count = 0;
  for (const Triple& triple : kb.TriplesWithSubject(topic)) {
    if (mentions.mentions_of.count(triple.object) > 0) ++count;
  }
  return count;
}

}  // namespace

TopicResult IdentifyTopics(const std::vector<const DomDocument*>& pages,
                           const std::vector<PageMentions>& mentions,
                           const KnowledgeBase& kb,
                           const TopicConfig& config) {
  CERES_CHECK(pages.size() == mentions.size());
  const size_t n = pages.size();
  TopicResult result;
  result.topic.assign(n, kInvalidEntity);
  result.topic_node.assign(n, kInvalidNode);
  result.score.assign(n, 0.0);

  const std::unordered_set<std::string> common_strings =
      kb.CommonObjectStrings(config.common_string_fraction,
                             config.common_string_min_count);

  // Local candidate identification (§3.1.1).
  std::vector<CandidateScores> page_scores(n);
  std::vector<EntityId> local_candidate(n, kInvalidEntity);
  std::unordered_map<EntityId, int> candidate_page_count;
  EligibilityCache eligibility;
  for (size_t i = 0; i < n; ++i) {
    if (config.deadline.expired()) {
      result.deadline_expired = true;
      return result;
    }
    page_scores[i] =
        ScoreEntitiesForPage(mentions[i], kb, common_strings, &eligibility);
    local_candidate[i] = BestCandidate(page_scores[i]);
    if (local_candidate[i] != kInvalidEntity) {
      ++candidate_page_count[local_candidate[i]];
    }
  }

  // Uniqueness filter (§3.1.2 step 1): an entity that is the best candidate
  // of many pages is boilerplate, not a topic.
  if (config.apply_uniqueness_filter) {
    for (size_t i = 0; i < n; ++i) {
      for (auto it = page_scores[i].begin(); it != page_scores[i].end();) {
        auto count_it = candidate_page_count.find(it->first);
        if (count_it != candidate_page_count.end() &&
            count_it->second >= config.max_pages_per_topic) {
          it = page_scores[i].erase(it);
        } else {
          ++it;
        }
      }
      if (local_candidate[i] != kInvalidEntity &&
          page_scores[i].count(local_candidate[i]) == 0) {
        local_candidate[i] = BestCandidate(page_scores[i]);
      }
    }
  }

  if (!config.apply_dominant_xpath) {
    // Ablation mode: accept the local candidate at its first mention.
    for (size_t i = 0; i < n; ++i) {
      EntityId topic = local_candidate[i];
      if (topic == kInvalidEntity) continue;
      const auto& nodes = mentions[i].mentions_of.at(topic);
      result.topic[i] = topic;
      result.topic_node[i] = nodes.front();
      result.score[i] = page_scores[i][topic];
    }
  } else {
    // Dominant-XPath step (§3.1.2 step 2): count, across the site, the
    // XPaths at which each page's best candidate is mentioned. Counting is
    // order-insensitive (unordered_map + cached path strings); the sort
    // below makes the final ranking deterministic.
    std::unordered_map<std::string, int64_t> path_counts;
    std::unordered_map<std::string, XPath> path_by_string;
    for (size_t i = 0; i < n; ++i) {
      if (config.deadline.expired()) {
        result.deadline_expired = true;
        return result;
      }
      if (local_candidate[i] == kInvalidEntity) continue;
      XPathStringCache paths(*pages[i]);
      const auto& nodes = mentions[i].mentions_of.at(local_candidate[i]);
      for (NodeId node : nodes) {
        const std::string& key = paths.PathString(node);
        ++path_counts[key];
        if (path_by_string.count(key) == 0) {
          path_by_string.emplace(key, paths.Path(node));
        }
      }
    }
    std::vector<std::pair<std::string, int64_t>> ranked(path_counts.begin(),
                                                        path_counts.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    for (const auto& [key, count] : ranked) {
      result.ranked_paths.push_back(path_by_string.at(key));
    }

    // Re-examine each page at the highest-ranked path extant on it.
    for (size_t i = 0; i < n; ++i) {
      if (config.deadline.expired()) {
        result.deadline_expired = true;
        return result;
      }
      if (page_scores[i].empty()) continue;
      for (const XPath& path : result.ranked_paths) {
        NodeId node = path.Resolve(*pages[i]);
        if (node == kInvalidNode || !pages[i]->node(node).HasText()) continue;
        // Pick the best-scoring candidate entity mentioned at this field.
        EntityId best = kInvalidEntity;
        double best_score = -1;
        for (const auto& [entity, score] : page_scores[i]) {
          auto mention_it = mentions[i].mentions_of.find(entity);
          if (mention_it == mentions[i].mentions_of.end()) continue;
          const std::vector<NodeId>& entity_nodes = mention_it->second;
          if (std::find(entity_nodes.begin(), entity_nodes.end(), node) ==
              entity_nodes.end()) {
            continue;
          }
          if (score > best_score || (score == best_score && entity < best)) {
            best = entity;
            best_score = score;
          }
        }
        if (best != kInvalidEntity) {
          result.topic[i] = best;
          result.topic_node[i] = node;
          result.score[i] = best_score;
        }
        break;  // Only the highest-ranked extant path is consulted.
      }
    }
  }

  // Informativeness filter (§3.1.2 step 3).
  if (config.apply_informativeness_filter) {
    for (size_t i = 0; i < n; ++i) {
      if (result.topic[i] == kInvalidEntity) continue;
      if (PotentialAnnotationCount(kb, result.topic[i], mentions[i]) <
          config.min_annotations_per_page) {
        result.topic[i] = kInvalidEntity;
        result.topic_node[i] = kInvalidNode;
        result.score[i] = 0.0;
      }
    }
  }
  return result;
}

}  // namespace ceres
