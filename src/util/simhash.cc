#include "util/simhash.h"

#include <array>

#include "util/string_util.h"

namespace ceres {

namespace {

/// One mixing round over an accumulated shingle hash. The token hashes are
/// combined order-sensitively (multiply-xor chain), so "director spike lee"
/// and "lee spike director" shingle differently.
constexpr uint64_t MixShingle(uint64_t accumulated, uint64_t token_hash) {
  accumulated ^= token_hash;
  accumulated *= 0x100000001b3ull;  // FNV prime, same constant as Fnv1a64
  accumulated ^= accumulated >> 29;
  return accumulated;
}

constexpr char ToLowerAscii(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

constexpr bool IsAlnumAscii(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
         (c >= 'A' && c <= 'Z');
}

}  // namespace

uint64_t Simhash64(std::string_view text, const SimhashConfig& config) {
  const int shingle_size = config.shingle_size < 1 ? 1 : config.shingle_size;
  // Ring buffer of the last `shingle_size` token hashes.
  std::array<uint64_t, 16> window = {};
  const int window_cap =
      shingle_size > static_cast<int>(window.size())
          ? static_cast<int>(window.size())
          : shingle_size;
  int tokens_seen = 0;

  std::array<int32_t, 64> votes = {};
  bool any_shingle = false;

  auto emit_shingle = [&]() {
    // Combine the window oldest-to-newest.
    uint64_t h = 0xcbf29ce484222325ull;
    const int count = tokens_seen < window_cap ? tokens_seen : window_cap;
    for (int k = count; k > 0; --k) {
      h = MixShingle(h, window[static_cast<size_t>((tokens_seen - k) %
                                                   window_cap)]);
    }
    for (int bit = 0; bit < 64; ++bit) {
      votes[static_cast<size_t>(bit)] += (h >> bit) & 1 ? 1 : -1;
    }
    any_shingle = true;
  };

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    if (!IsAlnumAscii(text[i])) {
      ++i;
      continue;
    }
    // One normalized token: lowercased alphanumeric run, hashed in place
    // (no allocation on this path — it runs per request in the server).
    uint64_t token_hash = 0xcbf29ce484222325ull;
    while (i < n && IsAlnumAscii(text[i])) {
      token_hash ^= static_cast<uint8_t>(ToLowerAscii(text[i]));
      token_hash *= 0x100000001b3ull;
      ++i;
    }
    window[static_cast<size_t>(tokens_seen % window_cap)] = token_hash;
    ++tokens_seen;
    // A full window votes; short documents (fewer tokens than the shingle
    // size) still fingerprint via the final partial-window emit below.
    if (tokens_seen >= window_cap) emit_shingle();
  }
  if (!any_shingle && tokens_seen > 0) emit_shingle();
  if (!any_shingle) return 0;

  uint64_t fingerprint = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if (votes[static_cast<size_t>(bit)] > 0) fingerprint |= 1ull << bit;
  }
  return fingerprint;
}

int HammingDistance(uint64_t a, uint64_t b) {
  return __builtin_popcountll(a ^ b);
}

}  // namespace ceres
