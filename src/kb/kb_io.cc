#include "kb/kb_io.h"

#include <charconv>
#include <fstream>
#include <memory>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/string_util.h"

namespace ceres {

namespace {

bool HasTab(std::string_view text) {
  return text.find('\t') != std::string_view::npos;
}

Status MalformedLine(int line_number, const std::string& line,
                     const std::string& why) {
  return Status::InvalidArgument(
      StrCat("line ", line_number, ": ", why, " — \"", line, "\""));
}

}  // namespace

Status SaveKb(const KnowledgeBase& kb, std::ostream* out) {
  if (!kb.frozen()) {
    return Status::FailedPrecondition("KB must be frozen before saving");
  }
  const Ontology& ontology = kb.ontology();
  *out << "#types\n";
  for (const EntityTypeDecl& type : ontology.entity_types()) {
    if (HasTab(type.name)) {
      return Status::InvalidArgument(
          StrCat("type name contains a tab: ", type.name));
    }
    *out << type.name << '\t' << (type.is_literal ? "literal" : "entity")
         << '\n';
  }
  *out << "#predicates\n";
  for (const PredicateDecl& predicate : ontology.predicates()) {
    if (HasTab(predicate.name)) {
      return Status::InvalidArgument(
          StrCat("predicate name contains a tab: ", predicate.name));
    }
    *out << predicate.name << '\t'
         << ontology.entity_type(predicate.subject_type).name << '\t'
         << ontology.entity_type(predicate.object_type).name << '\t'
         << (predicate.multi_valued ? "multi" : "single") << '\n';
  }
  *out << "#entities\n";
  for (EntityId id = 0; id < kb.num_entities(); ++id) {
    const Entity& entity = kb.entity(id);
    if (HasTab(entity.name)) {
      return Status::InvalidArgument(
          StrCat("entity name contains a tab: ", entity.name));
    }
    *out << id << '\t' << ontology.entity_type(entity.type).name << '\t'
         << entity.name;
    for (std::string_view alias : entity.aliases) {
      if (HasTab(alias)) {
        return Status::InvalidArgument(
            StrCat("alias contains a tab: ", alias));
      }
      *out << '\t' << alias;
    }
    *out << '\n';
  }
  *out << "#triples\n";
  for (const Triple& triple : kb.triples()) {
    *out << triple.subject << '\t'
         << ontology.predicate(triple.predicate).name << '\t'
         << triple.object << '\n';
  }
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

Status SaveKbToFile(const KnowledgeBase& kb, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound(StrCat("cannot open for writing: ", path));
  }
  return SaveKb(kb, &out);
}

namespace {

/// Incremental parser state of one LoadKb call. ConsumeLine returns a
/// per-line Status so the caller can choose strict (propagate) or lenient
/// (tally and continue) handling without duplicating the grammar.
class KbParser {
 public:
  /// Section-header / comment lines; never fails.
  bool ConsumeDirective(const std::string& line) {
    if (line.empty() || line[0] != '#') return false;
    if (line == "#types") {
      section_ = Section::kTypes;
    } else if (line == "#predicates") {
      section_ = Section::kPredicates;
    } else if (line == "#entities") {
      section_ = Section::kEntities;
      EnsureKb();
    } else if (line == "#triples") {
      EnsureKb();
      section_ = Section::kTriples;
    }
    return true;  // Unknown '#' lines are comments.
  }

  Status ConsumeLine(int line_number, const std::string& line) {
    std::vector<std::string> fields = Split(line, '\t');
    switch (section_) {
      case Section::kNone:
        return MalformedLine(line_number, line, "data before any section");
      case Section::kTypes: {
        if (fields.size() != 2) {
          return MalformedLine(line_number, line, "expected 2 fields");
        }
        if (fields[1] != "literal" && fields[1] != "entity") {
          return MalformedLine(line_number, line,
                               "kind must be literal|entity");
        }
        if (ontology_.TypeByName(fields[0]).ok()) {
          return MalformedLine(line_number, line, "duplicate type");
        }
        ontology_.AddEntityType(fields[0], fields[1] == "literal");
        return Status::Ok();
      }
      case Section::kPredicates: {
        if (fields.size() != 4) {
          return MalformedLine(line_number, line, "expected 4 fields");
        }
        Result<TypeId> subject = ontology_.TypeByName(fields[1]);
        Result<TypeId> object = ontology_.TypeByName(fields[2]);
        if (!subject.ok() || !object.ok()) {
          return MalformedLine(line_number, line, "unknown type");
        }
        if (fields[3] != "multi" && fields[3] != "single") {
          return MalformedLine(line_number, line,
                               "cardinality must be multi|single");
        }
        if (ontology_.PredicateByName(fields[0]).ok()) {
          return MalformedLine(line_number, line, "duplicate predicate");
        }
        ontology_.AddPredicate(fields[0], *subject, *object,
                               fields[3] == "multi");
        return Status::Ok();
      }
      case Section::kEntities: {
        if (fields.size() < 3) {
          return MalformedLine(line_number, line, "expected >= 3 fields");
        }
        int64_t external_id = 0;
        if (!ParseId(fields[0], &external_id)) {
          return MalformedLine(line_number, line, "bad entity id");
        }
        if (id_map_.count(external_id) > 0) {
          return MalformedLine(line_number, line, "duplicate entity id");
        }
        Result<TypeId> type = kb_->ontology().TypeByName(fields[1]);
        if (!type.ok()) {
          return MalformedLine(line_number, line, "unknown type");
        }
        EntityId internal = kb_->AddEntity(*type, fields[2]);
        for (size_t i = 3; i < fields.size(); ++i) {
          kb_->AddAlias(internal, fields[i]);
        }
        id_map_[external_id] = internal;
        return Status::Ok();
      }
      case Section::kTriples: {
        if (fields.size() != 3) {
          return MalformedLine(line_number, line, "expected 3 fields");
        }
        int64_t subject_id = 0;
        int64_t object_id = 0;
        if (!ParseId(fields[0], &subject_id) ||
            !ParseId(fields[2], &object_id)) {
          return MalformedLine(line_number, line, "bad entity id");
        }
        auto subject_it = id_map_.find(subject_id);
        auto object_it = id_map_.find(object_id);
        if (subject_it == id_map_.end() || object_it == id_map_.end()) {
          return MalformedLine(line_number, line, "undeclared entity id");
        }
        Result<PredicateId> predicate =
            kb_->ontology().PredicateByName(fields[1]);
        if (!predicate.ok()) {
          return MalformedLine(line_number, line, "unknown predicate");
        }
        kb_->AddTriple(subject_it->second, *predicate, object_it->second);
        return Status::Ok();
      }
    }
    return Status::Internal("unreachable");
  }

  KnowledgeBase Finish() {
    EnsureKb();
    kb_->Freeze();
    return std::move(*kb_);
  }

 private:
  enum class Section { kNone, kTypes, kPredicates, kEntities, kTriples };

  static bool ParseId(const std::string& field, int64_t* value) {
    auto [ptr, ec] = std::from_chars(field.data(),
                                     field.data() + field.size(), *value);
    return ec == std::errc() && ptr == field.data() + field.size();
  }

  // Ontology fills first; the KB is created lazily when #entities begins.
  void EnsureKb() {
    if (kb_ == nullptr) kb_ = std::make_unique<KnowledgeBase>(ontology_);
  }

  Section section_ = Section::kNone;
  Ontology ontology_;
  std::unique_ptr<KnowledgeBase> kb_;
  std::unordered_map<int64_t, EntityId> id_map_;
};

}  // namespace

Result<KnowledgeBase> LoadKb(std::istream* in, const KbLoadOptions& options,
                             KbLoadStats* stats) {
  KbParser parser;
  KbLoadStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  stats->bad_lines = 0;
  stats->errors.clear();

  std::string line;
  int line_number = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (parser.ConsumeDirective(line)) continue;
    Status status = parser.ConsumeLine(line_number, line);
    if (status.ok()) continue;
    if (options.strict) return status;
    ++stats->bad_lines;
    if (stats->errors.size() < KbLoadStats::kMaxRecordedErrors) {
      stats->errors.push_back(status.ToString());
    }
    if (stats->bad_lines > options.max_bad_lines) {
      return Status::ResourceExhausted(
          StrCat("gave up after ", stats->bad_lines,
                 " malformed lines (max_bad_lines=", options.max_bad_lines,
                 "); last: ", status.message()));
    }
  }
  return parser.Finish();
}

Result<KnowledgeBase> LoadKbFromFile(const std::string& path,
                                     const KbLoadOptions& options,
                                     KbLoadStats* stats) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(StrCat("cannot open: ", path));
  }
  CERES_ASSIGN_OR_RETURN(KnowledgeBase kb, LoadKb(&in, options, stats),
                         StrCat("loading ", path));
  return kb;
}

}  // namespace ceres
