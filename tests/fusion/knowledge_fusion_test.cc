#include "fusion/knowledge_fusion.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ceres::fusion {
namespace {

Ontology MakeOntology() {
  Ontology ontology;
  TypeId film = ontology.AddEntityType("film");
  TypeId person = ontology.AddEntityType("person");
  TypeId date = ontology.AddEntityType("date", /*is_literal=*/true);
  ontology.AddPredicate("directedBy", film, person, true);    // id 0
  ontology.AddPredicate("releaseDate", film, date, false);    // id 1: func.
  return ontology;
}

Extraction Make(const std::string& subject, PredicateId predicate,
                const std::string& object, double confidence) {
  return Extraction{0, 0, predicate, subject, object, confidence};
}

TEST(KnowledgeFusionTest, MergesAcrossSitesAndNormalizes) {
  Ontology ontology = MakeOntology();
  std::vector<SiteExtractions> sites{
      {"a.com", {Make("Do the Right Thing", 0, "Spike Lee", 0.9)}},
      {"b.com", {Make("do the right thing (1989)", 0, "SPIKE LEE", 0.8)}},
  };
  FusionResult result = FuseExtractions(sites, ontology);
  ASSERT_EQ(result.triples.size(), 1u);
  EXPECT_EQ(result.triples[0].subject, "do the right thing");
  EXPECT_EQ(result.triples[0].object, "spike lee");
  EXPECT_EQ(result.triples[0].sites.size(), 2u);
}

TEST(KnowledgeFusionTest, MoreSupportMeansHigherScore) {
  Ontology ontology = MakeOntology();
  std::vector<SiteExtractions> sites{
      {"a.com",
       {Make("Film One", 0, "Director X", 0.8),
        Make("Film Two", 0, "Director Y", 0.8)}},
      {"b.com", {Make("Film One", 0, "Director X", 0.8)}},
      {"c.com", {Make("Film One", 0, "Director X", 0.8)}},
  };
  FusionResult result = FuseExtractions(sites, ontology);
  ASSERT_EQ(result.triples.size(), 2u);
  // Sorted by score: the triple with 3 supporters comes first.
  EXPECT_EQ(result.triples[0].subject, "film one");
  EXPECT_GT(result.triples[0].score, result.triples[1].score);
}

TEST(KnowledgeFusionTest, ConfidenceFloorFiltersWeakExtractions) {
  Ontology ontology = MakeOntology();
  std::vector<SiteExtractions> sites{
      {"a.com", {Make("Film", 0, "Someone", 0.3)}},
  };
  FusionConfig config;
  config.min_extraction_confidence = 0.5;
  EXPECT_TRUE(FuseExtractions(sites, ontology, config).triples.empty());
}

TEST(KnowledgeFusionTest, FunctionalConflictKeepsBestObject) {
  Ontology ontology = MakeOntology();
  std::vector<SiteExtractions> sites{
      {"a.com", {Make("Film", 1, "12 June 1989", 0.95)}},
      {"b.com", {Make("Film", 1, "12 June 1989", 0.9)}},
      {"c.com", {Make("Film", 1, "1 January 1990", 0.7)}},
  };
  FusionResult result = FuseExtractions(sites, ontology);
  ASSERT_EQ(result.triples.size(), 1u);
  EXPECT_EQ(result.triples[0].object, "12 june 1989");

  FusionConfig keep;
  keep.keep_conflicts = true;
  result = FuseExtractions(sites, ontology, keep);
  ASSERT_EQ(result.triples.size(), 2u);
  EXPECT_FALSE(result.triples[0].conflicting);
  EXPECT_TRUE(result.triples[1].conflicting);
}

TEST(KnowledgeFusionTest, MultiValuedPredicatesNeverConflict) {
  Ontology ontology = MakeOntology();
  std::vector<SiteExtractions> sites{
      {"a.com",
       {Make("Film", 0, "Director X", 0.9),
        Make("Film", 0, "Director Y", 0.9)}},
  };
  FusionResult result = FuseExtractions(sites, ontology);
  EXPECT_EQ(result.triples.size(), 2u);
}

TEST(KnowledgeFusionTest, ReliabilityDowngradesOutlierSite) {
  Ontology ontology = MakeOntology();
  // Three sites agree on 10 facts; a fourth asserts 10 unsupported ones.
  std::vector<SiteExtractions> sites(4);
  sites[0].site = "good1.com";
  sites[1].site = "good2.com";
  sites[2].site = "good3.com";
  sites[3].site = "lone.com";
  for (int i = 0; i < 10; ++i) {
    std::string film = "Shared Film " + std::to_string(i);
    for (int s = 0; s < 3; ++s) {
      sites[static_cast<size_t>(s)].extractions.push_back(
          Make(film, 0, "Director " + std::to_string(i), 0.9));
    }
    sites[3].extractions.push_back(
        Make("Lonely Film " + std::to_string(i), 0,
             "Nobody " + std::to_string(i), 0.9));
  }
  FusionResult result = FuseExtractions(sites, ontology);
  double good = 0;
  double lone = 0;
  for (const SiteReliability& site : result.sites) {
    if (site.site == "lone.com") {
      lone = site.reliability;
    } else {
      good = site.reliability;
    }
  }
  EXPECT_GT(good, lone);
  // And corroborated triples outrank singleton ones.
  EXPECT_EQ(result.triples.front().sites.size(), 3u);
}

TEST(KnowledgeFusionTest, NameExtractionsIgnored) {
  Ontology ontology = MakeOntology();
  std::vector<SiteExtractions> sites{
      {"a.com",
       {Extraction{0, 0, kNamePredicate, "Film", "Film", 1.0},
        Make("Film", 0, "Director X", 0.9)}},
  };
  FusionResult result = FuseExtractions(sites, ontology);
  ASSERT_EQ(result.triples.size(), 1u);
  EXPECT_EQ(result.triples[0].predicate, 0);
}

TEST(BuildKbFromFusedTriplesTest, MaterializesFrozenKb) {
  Ontology ontology = MakeOntology();
  std::vector<SiteExtractions> sites{
      {"a.com",
       {Make("Film One", 0, "Director X", 0.9),
        Make("Film One", 1, "12 June 1989", 0.9)}},
      {"b.com", {Make("Film One", 0, "Director X", 0.9)}},
  };
  FusionResult fused = FuseExtractions(sites, ontology);
  KnowledgeBase kb = BuildKbFromFusedTriples(fused, ontology, 0.0);
  EXPECT_TRUE(kb.frozen());
  EXPECT_EQ(kb.num_triples(), 2);
  std::vector<EntityId> film = kb.MatchMentions("film one");
  ASSERT_EQ(film.size(), 1u);  // Subject interned once across predicates.
  EXPECT_EQ(kb.TriplesWithSubject(film[0]).size(), 2u);
  // The bootstrapped KB drives topic identification like any other KB.
  EXPECT_FALSE(kb.ObjectsOfSubject(film[0]).empty());
}

TEST(BuildKbFromFusedTriplesTest, ScoreFloorAndConflictsRespected) {
  Ontology ontology = MakeOntology();
  std::vector<SiteExtractions> sites{
      {"a.com", {Make("Film", 1, "12 June 1989", 0.95)}},
      {"b.com", {Make("Film", 1, "1 January 1990", 0.55)}},
  };
  FusionConfig keep;
  keep.keep_conflicts = true;
  FusionResult fused = FuseExtractions(sites, ontology, keep);
  ASSERT_EQ(fused.triples.size(), 2u);
  KnowledgeBase kb = BuildKbFromFusedTriples(fused, ontology, 0.0);
  // The conflicting loser is never materialized.
  EXPECT_EQ(kb.num_triples(), 1);
  // A floor above every score yields an empty KB.
  KnowledgeBase strict = BuildKbFromFusedTriples(fused, ontology, 0.999);
  EXPECT_EQ(strict.num_triples(), 0);
}

TEST(KnowledgeFusionTest, DuplicateSiteEntriesReportOneReliabilityRow) {
  Ontology ontology = MakeOntology();
  // Two crawl shards of one site plus a distinct second site. The shards'
  // extractions pool into one per-site support entry, so the reliability
  // report must carry one a.com row — a row per shard would double-count
  // its triples in any sum over result.sites.
  std::vector<SiteExtractions> sites{
      {"a.com", {Make("Film One", 0, "Director X", 0.9)}},
      {"a.com", {Make("Film Two", 0, "Director Y", 0.9)}},
      {"b.com", {Make("Film One", 0, "Director X", 0.8)}},
  };
  FusionResult result = FuseExtractions(sites, ontology);
  EXPECT_EQ(result.triples.size(), 2u);
  ASSERT_EQ(result.sites.size(), 2u);
  int64_t total = 0;
  for (const SiteReliability& site : result.sites) total += site.triples;
  // a.com supports both triples, b.com supports one.
  EXPECT_EQ(total, 3);
}

TEST(KnowledgeFusionTest, ReliabilityConvergesAndRespectsIterationCount) {
  Ontology ontology = MakeOntology();
  // Three sites fully corroborate each other: belief per triple exceeds
  // the ceiling after one update, so reliability clamps there and further
  // iterations are a fixpoint.
  auto make_sites = [] {
    std::vector<SiteExtractions> sites(3);
    sites[0].site = "a.com";
    sites[1].site = "b.com";
    sites[2].site = "c.com";
    for (int i = 0; i < 10; ++i) {
      for (auto& site : sites) {
        site.extractions.push_back(
            Make("Film " + std::to_string(i), 0,
                 "Director " + std::to_string(i), 0.9));
      }
    }
    return sites;
  };
  FusionConfig config;
  config.reliability_iterations = 0;  // Disabled: initial value reported.
  FusionResult initial = FuseExtractions(make_sites(), ontology, config);
  ASSERT_EQ(initial.sites.size(), 3u);
  EXPECT_DOUBLE_EQ(initial.sites[0].reliability, 0.8);

  config.reliability_iterations = 1;
  FusionResult once = FuseExtractions(make_sites(), ontology, config);
  EXPECT_DOUBLE_EQ(once.sites[0].reliability, 0.95);  // Ceiling.

  config.reliability_iterations = 50;
  FusionResult many = FuseExtractions(make_sites(), ontology, config);
  for (size_t i = 0; i < many.sites.size(); ++i) {
    EXPECT_DOUBLE_EQ(many.sites[i].reliability,
                     once.sites[i].reliability);
  }
}

TEST(KnowledgeFusionTest, LoneSiteReliabilityDecaysToFloor) {
  Ontology ontology = MakeOntology();
  // A single site asserting uncorroborated facts: each update multiplies
  // reliability by the extraction confidence, so it decays geometrically
  // until the floor clamp catches it.
  std::vector<SiteExtractions> sites(1);
  sites[0].site = "lone.com";
  for (int i = 0; i < 5; ++i) {
    sites[0].extractions.push_back(Make("Film " + std::to_string(i), 0,
                                        "Nobody " + std::to_string(i), 0.9));
  }
  FusionConfig config;
  config.reliability_iterations = 50;
  FusionResult result = FuseExtractions(sites, ontology, config);
  ASSERT_EQ(result.sites.size(), 1u);
  EXPECT_DOUBLE_EQ(result.sites[0].reliability, config.reliability_floor);
}

TEST(BuildKbFromFusedTriplesTest, ScoreExactlyAtFloorIsKept) {
  Ontology ontology = MakeOntology();
  std::vector<SiteExtractions> sites{
      {"a.com", {Make("Film", 0, "Director X", 0.9)}}};
  FusionResult fused = FuseExtractions(sites, ontology);
  ASSERT_EQ(fused.triples.size(), 1u);
  const double score = fused.triples[0].score;
  // The cutoff is strict (`score < min_score`): equality materializes.
  EXPECT_EQ(BuildKbFromFusedTriples(fused, ontology, score).num_triples(),
            1);
  EXPECT_EQ(BuildKbFromFusedTriples(fused, ontology,
                                    std::nextafter(score, 1.0))
                .num_triples(),
            0);
}

TEST(KnowledgeFusionTest, EmptyInput) {
  Ontology ontology = MakeOntology();
  FusionResult result = FuseExtractions({}, ontology);
  EXPECT_TRUE(result.triples.empty());
  EXPECT_TRUE(result.sites.empty());
}

TEST(KnowledgeFusionTest, ScoreBoundedAndMonotoneInConfidence) {
  Ontology ontology = MakeOntology();
  for (double confidence : {0.5, 0.7, 0.9, 0.99}) {
    std::vector<SiteExtractions> sites{
        {"a.com", {Make("Film", 0, "D", confidence)}}};
    FusionResult result = FuseExtractions(sites, ontology);
    ASSERT_EQ(result.triples.size(), 1u);
    EXPECT_GT(result.triples[0].score, 0.0);
    EXPECT_LT(result.triples[0].score, 1.0);
  }
  // Higher extraction confidence, higher fused score.
  std::vector<SiteExtractions> low{{"a.com", {Make("F", 0, "D", 0.5)}}};
  std::vector<SiteExtractions> high{{"a.com", {Make("F", 0, "D", 0.99)}}};
  EXPECT_LT(FuseExtractions(low, ontology).triples[0].score,
            FuseExtractions(high, ontology).triples[0].score);
}

TEST(KnowledgeFusionTest, ExpiredDeadlineDegradesGracefully) {
  // The coordinator threads its run deadline into FusionConfig; an expired
  // budget must stop ingestion and flag the result, never crash or loop.
  Ontology ontology = MakeOntology();
  std::vector<SiteExtractions> sites{
      {"a.com", {Make("Film", 0, "Director X", 0.9)}},
  };
  FusionConfig config;
  config.deadline = Deadline::After(std::chrono::milliseconds(0));
  FusionResult result = FuseExtractions(sites, ontology, config);
  EXPECT_TRUE(result.deadline_expired);
  EXPECT_TRUE(result.triples.empty());
  // Never-ingested sites get no (misleading) reliability row.
  EXPECT_TRUE(result.sites.empty());
}

TEST(KnowledgeFusionTest, CancelledTokenStopsFusionMidPass) {
  Ontology ontology = MakeOntology();
  std::vector<SiteExtractions> sites{
      {"a.com", {Make("Film", 0, "Director X", 0.9)}},
  };
  CancelToken cancel;
  cancel.Cancel();
  FusionConfig config;
  config.deadline = Deadline::Infinite().WithToken(cancel);
  FusionResult result = FuseExtractions(sites, ontology, config);
  EXPECT_TRUE(result.deadline_expired);
  EXPECT_TRUE(result.triples.empty());
}

TEST(KnowledgeFusionTest, InfiniteDeadlineLeavesFlagClear) {
  Ontology ontology = MakeOntology();
  std::vector<SiteExtractions> sites{
      {"a.com", {Make("Film", 0, "Director X", 0.9)}},
  };
  FusionResult result = FuseExtractions(sites, ontology);
  EXPECT_FALSE(result.deadline_expired);
  ASSERT_EQ(result.triples.size(), 1u);
}

}  // namespace
}  // namespace ceres::fusion
