#include "synth/kb_builder.h"

#include <gtest/gtest.h>

namespace ceres::synth {
namespace {

World SmallWorld() {
  MovieWorldConfig config;
  config.scale = 0.15;
  return BuildMovieWorld(config);
}

TEST(KbBuilderTest, FullCoverageCopiesAllTriples) {
  World world = SmallWorld();
  SeedKbConfig config;
  config.default_coverage = 1.0;
  KnowledgeBase seed = BuildSeedKb(world, config);
  EXPECT_EQ(seed.num_triples(), world.kb.num_triples());
  EXPECT_TRUE(seed.frozen());
}

TEST(KbBuilderTest, PartialCoverageDropsTriples) {
  World world = SmallWorld();
  SeedKbConfig config;
  config.default_coverage = 0.5;
  KnowledgeBase seed = BuildSeedKb(world, config);
  double ratio = static_cast<double>(seed.num_triples()) /
                 static_cast<double>(world.kb.num_triples());
  EXPECT_NEAR(ratio, 0.5, 0.05);
  EXPECT_LT(seed.num_entities(), world.kb.num_entities() + 1);
}

TEST(KbBuilderTest, PerPredicateCoverageRespected) {
  World world = SmallWorld();
  SeedKbConfig config;
  config.default_coverage = 1.0;
  config.coverage[pred::kFilmHasCastMember] = 0.0;
  config.coverage[pred::kFilmMpaaRating] = 0.0;
  KnowledgeBase seed = BuildSeedKb(world, config);
  PredicateId cast = *seed.ontology().PredicateByName(pred::kFilmHasCastMember);
  PredicateId rating = *seed.ontology().PredicateByName(pred::kFilmMpaaRating);
  for (const Triple& triple : seed.triples()) {
    EXPECT_NE(triple.predicate, cast);
    EXPECT_NE(triple.predicate, rating);
  }
}

TEST(KbBuilderTest, PopularityBiasFavoursEarlyRosterEntities) {
  World world = SmallWorld();
  SeedKbConfig config;
  config.default_coverage = 0.5;
  config.popularity_bias = true;
  KnowledgeBase seed = BuildSeedKb(world, config);

  // Split world films into popular (first quartile) and obscure (last
  // quartile) and compare seed fact counts via name lookups.
  TypeId film = *world.kb.ontology().TypeByName("film");
  const auto& films = world.OfType(film);
  auto seed_fact_count = [&](EntityId world_film) {
    std::vector<EntityId> ids =
        seed.MatchMentions(world.kb.entity(world_film).name);
    int64_t count = 0;
    for (EntityId id : ids) {
      count += static_cast<int64_t>(seed.TriplesWithSubject(id).size());
    }
    return count;
  };
  int64_t popular = 0;
  int64_t obscure = 0;
  size_t quarter = films.size() / 4;
  for (size_t i = 0; i < quarter; ++i) {
    popular += seed_fact_count(films[i]);
    obscure += seed_fact_count(films[films.size() - 1 - i]);
  }
  EXPECT_GT(popular, obscure * 2);
}

TEST(KbBuilderTest, AliasesCopiedWhenRequested) {
  World world = SmallWorld();
  SeedKbConfig with;
  with.include_aliases = true;
  SeedKbConfig without;
  without.include_aliases = false;
  KnowledgeBase kb_with = BuildSeedKb(world, with);
  KnowledgeBase kb_without = BuildSeedKb(world, without);

  // Find a person with an alias in the world.
  TypeId person = *world.kb.ontology().TypeByName("person");
  for (EntityId id : world.OfType(person)) {
    const Entity& entity = world.kb.entity(id);
    if (entity.aliases.empty()) continue;
    if (kb_with.MatchMentions(entity.name).empty()) continue;
    EXPECT_FALSE(kb_with.MatchMentions(entity.aliases[0]).empty());
    // Note: alias string may still collide with other names, so only check
    // the with/without asymmetry on the first hit.
    if (!kb_without.MatchMentions(entity.name).empty()) {
      SUCCEED();
      return;
    }
  }
}

TEST(KbBuilderTest, SeedFromPagesCoversExactlyAssertedFacts) {
  World world = SmallWorld();
  SiteSpec spec;
  spec.name = "seed.example";
  spec.seed = 3;
  spec.tmpl.topic_type = "film";
  spec.tmpl.sections = {
      {pred::kFilmDirectedBy, "director", SectionLayout::kRow, 0.0, 3},
      {pred::kFilmHasGenre, "genre", SectionLayout::kList, 0.0, 5},
  };
  TypeId film = *world.kb.ontology().TypeByName("film");
  const auto& films = world.OfType(film);
  spec.topics.assign(films.begin(), films.begin() + 10);
  std::vector<GeneratedPage> pages = GenerateSite(world, spec);

  KnowledgeBase seed = BuildSeedKbFromPages(world, pages);
  int64_t expected = 0;
  for (const GeneratedPage& page : pages) {
    for (const GroundTruthFact& fact : page.facts) {
      if (fact.predicate != kNamePredicate) ++expected;
    }
  }
  // Duplicate (s,p,o) across pages collapse, so <=; but close.
  EXPECT_LE(seed.num_triples(), expected);
  EXPECT_GT(seed.num_triples(), expected / 2);
  // The seed only contains director + genre predicates.
  PredicateId director = *seed.ontology().PredicateByName(pred::kFilmDirectedBy);
  PredicateId genre = *seed.ontology().PredicateByName(pred::kFilmHasGenre);
  for (const Triple& triple : seed.triples()) {
    EXPECT_TRUE(triple.predicate == director || triple.predicate == genre);
  }
}

TEST(KbBuilderTest, Deterministic) {
  World world = SmallWorld();
  SeedKbConfig config;
  config.default_coverage = 0.6;
  KnowledgeBase a = BuildSeedKb(world, config);
  KnowledgeBase b = BuildSeedKb(world, config);
  EXPECT_EQ(a.num_triples(), b.num_triples());
  EXPECT_EQ(a.num_entities(), b.num_entities());
}

}  // namespace
}  // namespace ceres::synth
