#include "dom/dom_tree.h"

#include <gtest/gtest.h>

namespace ceres {
namespace {

TEST(DomTreeTest, FreshDocumentHasHtmlRoot) {
  DomDocument doc;
  EXPECT_EQ(doc.size(), 1);
  EXPECT_EQ(doc.node(doc.root()).tag, "html");
  EXPECT_EQ(doc.node(doc.root()).parent, kInvalidNode);
}

TEST(DomTreeTest, AddChildMaintainsIndices) {
  DomDocument doc;
  NodeId body = doc.AddChild(doc.root(), "body");
  NodeId div1 = doc.AddChild(body, "div");
  NodeId span = doc.AddChild(body, "span");
  NodeId div2 = doc.AddChild(body, "div");

  EXPECT_EQ(doc.node(div1).sibling_index, 1);
  EXPECT_EQ(doc.node(span).sibling_index, 1);
  EXPECT_EQ(doc.node(div2).sibling_index, 2);
  EXPECT_EQ(doc.node(div1).child_position, 0);
  EXPECT_EQ(doc.node(span).child_position, 1);
  EXPECT_EQ(doc.node(div2).child_position, 2);
  ASSERT_EQ(doc.children(body).size(), 3u);
  const std::vector<NodeId> kids(doc.children(body).begin(),
                                 doc.children(body).end());
  EXPECT_EQ(kids[2], div2);
}

TEST(DomTreeTest, TextFieldsReturnsOnlyNodesWithText) {
  DomDocument doc;
  NodeId body = doc.AddChild(doc.root(), "body");
  NodeId with_text = doc.AddChild(body, "p");
  doc.SetText(with_text, "hello");
  doc.AddChild(body, "p");  // Empty.
  std::vector<NodeId> fields = doc.TextFields();
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], with_text);
}

TEST(DomTreeTest, AttributeLookup) {
  DomDocument doc;
  NodeId div = doc.AddChild(doc.root(), "div");
  doc.AddAttribute(div, "class", "x");
  doc.AddAttribute(div, "id", "y");
  EXPECT_EQ(doc.Attribute(div, "class"), "x");
  EXPECT_EQ(doc.Attribute(div, "id"), "y");
  EXPECT_EQ(doc.Attribute(div, "missing"), "");
  ASSERT_EQ(doc.attributes(div).size(), 2u);
  EXPECT_EQ(doc.attributes(div)[0].name, "class");
  EXPECT_EQ(doc.attributes(div)[1].value, "y");
}

TEST(DomTreeTest, TextSegmentsExtendInPlace) {
  DomDocument doc;
  NodeId p = doc.AddChild(doc.root(), "p");
  doc.AppendTextSegment(p, "hello");
  doc.AppendTextSegment(p, "world");
  EXPECT_EQ(doc.node(p).text, "hello world");
}

TEST(DomTreeTest, ArenaViewsSurviveDocumentMove) {
  DomDocument doc;
  NodeId p = doc.AddChild(doc.root(), "p");
  doc.SetText(p, "stable text");
  doc.AddAttribute(p, "class", "val");
  std::string_view text_before = doc.node(p).text;
  std::string_view value_before = doc.Attribute(p, "class");
  DomDocument moved = std::move(doc);
  EXPECT_EQ(moved.node(p).text.data(), text_before.data());
  EXPECT_EQ(moved.Attribute(p, "class").data(), value_before.data());
  EXPECT_EQ(moved.node(p).text, "stable text");
}

TEST(DomTreeTest, DepthAndAncestry) {
  DomDocument doc;
  NodeId body = doc.AddChild(doc.root(), "body");
  NodeId div = doc.AddChild(body, "div");
  NodeId span = doc.AddChild(div, "span");
  EXPECT_EQ(doc.Depth(doc.root()), 0);
  EXPECT_EQ(doc.Depth(span), 3);
  EXPECT_TRUE(doc.IsAncestorOrSelf(body, span));
  EXPECT_TRUE(doc.IsAncestorOrSelf(span, span));
  EXPECT_FALSE(doc.IsAncestorOrSelf(span, body));
}

TEST(DomTreeTest, MoveLeavesSourceReusable) {
  DomDocument doc;
  doc.AddChild(doc.root(), "body");
  doc.set_url("http://x");
  DomDocument moved = std::move(doc);
  EXPECT_EQ(moved.size(), 2);
  EXPECT_EQ(moved.url(), "http://x");
}

TEST(DomTreeDeathTest, OutOfRangeAccessDies) {
  DomDocument doc;
  EXPECT_DEATH(doc.node(5), "");
  EXPECT_DEATH(doc.AddChild(99, "div"), "");
}

}  // namespace
}  // namespace ceres
