#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "util/logging.h"

namespace ceres::obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

/// Escapes a string for embedding in a JSON double-quoted literal.
/// Metric names are code-controlled identifiers, but export must stay
/// well-formed even for odd test names.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<int64_t>::max()),
      max_(std::numeric_limits<int64_t>::min()) {
  CERES_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CERES_CHECK(bounds_[i - 1] < bounds_[i]);
  }
}

void Histogram::Record(int64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::Mean() const {
  const int64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

int64_t Histogram::Min() const {
  return Count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

int64_t Histogram::Max() const {
  return Count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Percentile(double p) const {
  const int64_t total = Count();
  if (total <= 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const int64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate within the containing bucket. The overflow bucket has no
    // finite upper bound; the observed max stands in for it.
    const double lower =
        b == 0 ? 0.0 : static_cast<double>(bounds_[b - 1]);
    const double upper = b < bounds_.size()
                             ? static_cast<double>(bounds_[b])
                             : static_cast<double>(Max());
    const double fraction = std::clamp(
        (target - before) / static_cast<double>(in_bucket), 0.0, 1.0);
    return lower + (std::max(upper, lower) - lower) * fraction;
  }
  return static_cast<double>(Max());
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<int64_t>::max(), std::memory_order_relaxed);
  max_.store(std::numeric_limits<int64_t>::min(), std::memory_order_relaxed);
}

const std::vector<int64_t>& LatencyBucketsUs() {
  static const std::vector<int64_t>* const kBuckets = [] {
    auto* bounds = new std::vector<int64_t>;
    for (int64_t decade = 1; decade <= 1'000'000; decade *= 10) {
      bounds->push_back(1 * decade);
      bounds->push_back(2 * decade);
      bounds->push_back(5 * decade);
    }
    bounds->push_back(10'000'000);  // 10s
    return bounds;
  }();
  return *kBuckets;
}

const std::vector<int64_t>& SizeBuckets() {
  static const std::vector<int64_t>* const kBuckets = [] {
    auto* bounds = new std::vector<int64_t>;
    for (int64_t b = 1; b <= 1024; b *= 2) bounds->push_back(b);
    return bounds;
  }();
  return *kBuckets;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* const kRegistry = new MetricsRegistry;
  return *kRegistry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return GetHistogram(name, LatencyBucketsUs());
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<int64_t> bounds) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

int64_t MetricsRegistry::CounterValue(std::string_view name) const {
  MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":{";
    out += "\"count\":" + std::to_string(histogram->Count());
    out += ",\"sum\":" + std::to_string(histogram->Sum());
    out += ",\"mean\":" + FormatDouble(histogram->Mean());
    out += ",\"p50\":" + FormatDouble(histogram->Percentile(0.50));
    out += ",\"p95\":" + FormatDouble(histogram->Percentile(0.95));
    out += ",\"p99\":" + FormatDouble(histogram->Percentile(0.99));
    out += ",\"max\":" + std::to_string(histogram->Max());
    out += '}';
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + ' ' + std::to_string(counter->Value()) + '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ' + std::to_string(gauge->Value()) + '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    out += "# TYPE " + name + " histogram\n";
    int64_t cumulative = 0;
    const auto& bounds = histogram->bounds();
    for (size_t b = 0; b < bounds.size(); ++b) {
      cumulative += histogram->BucketCount(b);
      out += name + "_bucket{le=\"" + std::to_string(bounds[b]) + "\"} " +
             std::to_string(cumulative) + '\n';
    }
    cumulative += histogram->BucketCount(bounds.size());
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + '\n';
    out += name + "_sum " + std::to_string(histogram->Sum()) + '\n';
    out += name + "_count " + std::to_string(histogram->Count()) + '\n';
  }
  return out;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace ceres::obs
