// ceres_gen_corpus — materializes a synthetic corpus to disk so it can be
// inspected, versioned, or fed to ceres_extract for an end-to-end CLI run.
//
// Usage:
//   ceres_gen_corpus --corpus swde-movie|swde-book|swde-nba|swde-university|
//                             imdb|longtail
//                    --out <dir> [--scale 1.0] [--seed N]
//
// Layout written under --out:
//   seed.kb                     the seed knowledge base (kb_io format)
//   <site>/page-00042.html      one file per page
//   <site>/ground_truth.tsv     page \t xpath \t predicate \t object
//
// The ground truth lets downstream scripts score ceres_extract output.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "kb/kb_io.h"
#include "synth/corpora.h"
#include "util/string_util.h"

namespace {

using namespace ceres;  // NOLINT(build/namespaces)

Result<synth::Corpus> BuildCorpus(const std::string& name, double scale,
                                  uint64_t seed) {
  if (name == "swde-movie") {
    return synth::MakeSwdeCorpus(synth::SwdeVertical::kMovie, scale, seed);
  }
  if (name == "swde-book") {
    return synth::MakeSwdeCorpus(synth::SwdeVertical::kBook, scale, seed);
  }
  if (name == "swde-nba") {
    return synth::MakeSwdeCorpus(synth::SwdeVertical::kNbaPlayer, scale,
                                 seed);
  }
  if (name == "swde-university") {
    return synth::MakeSwdeCorpus(synth::SwdeVertical::kUniversity, scale,
                                 seed);
  }
  if (name == "imdb") return synth::MakeImdbCorpus(scale, seed);
  if (name == "longtail") return synth::MakeLongTailCorpus(scale, seed);
  return Status::InvalidArgument(StrCat("unknown corpus: ", name));
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_name;
  std::string out_dir;
  double scale = 1.0;
  uint64_t seed = 100;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--corpus") {
      const char* v = next();
      if (v == nullptr) break;
      corpus_name = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) break;
      out_dir = v;
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) break;
      scale = std::strtod(v, nullptr);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) break;
      seed = std::strtoull(v, nullptr, 10);
    }
  }
  if (corpus_name.empty() || out_dir.empty()) {
    std::fprintf(stderr,
                 "usage: ceres_gen_corpus --corpus <name> --out <dir> "
                 "[--scale S] [--seed N]\n"
                 "corpora: swde-movie swde-book swde-nba swde-university "
                 "imdb longtail\n");
    return 2;
  }

  Result<synth::Corpus> corpus = BuildCorpus(corpus_name, scale, seed);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  Status kb_status =
      SaveKbToFile(corpus->seed_kb, out_dir + "/seed.kb");
  if (!kb_status.ok()) {
    std::fprintf(stderr, "saving KB: %s\n", kb_status.ToString().c_str());
    return 1;
  }

  int64_t total_pages = 0;
  for (const synth::SyntheticSite& site : corpus->sites) {
    std::string site_dir = out_dir + "/" + site.name;
    std::filesystem::create_directories(site_dir, ec);
    std::ofstream truth(site_dir + "/ground_truth.tsv");
    for (size_t p = 0; p < site.pages.size(); ++p) {
      const synth::GeneratedPage& page = site.pages[p];
      char file_name[32];
      std::snprintf(file_name, sizeof(file_name), "page-%05zu.html", p);
      std::ofstream html(site_dir + "/" + file_name);
      html << page.html;
      for (const synth::GroundTruthFact& fact : page.facts) {
        const std::string predicate =
            fact.predicate == kNamePredicate
                ? "NAME"
                : corpus->world.kb.ontology().predicate(fact.predicate).name;
        truth << file_name << '\t' << fact.xpath << '\t' << predicate
              << '\t' << fact.object_text << '\n';
      }
      ++total_pages;
    }
  }
  std::fprintf(stderr, "wrote %zu sites / %lld pages under %s\n",
               corpus->sites.size(), static_cast<long long>(total_pages),
               out_dir.c_str());
  return 0;
}
