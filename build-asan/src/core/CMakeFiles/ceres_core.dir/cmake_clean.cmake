file(REMOVE_RECURSE
  "CMakeFiles/ceres_core.dir/entity_matcher.cc.o"
  "CMakeFiles/ceres_core.dir/entity_matcher.cc.o.d"
  "CMakeFiles/ceres_core.dir/extractor.cc.o"
  "CMakeFiles/ceres_core.dir/extractor.cc.o.d"
  "CMakeFiles/ceres_core.dir/features.cc.o"
  "CMakeFiles/ceres_core.dir/features.cc.o.d"
  "CMakeFiles/ceres_core.dir/model_io.cc.o"
  "CMakeFiles/ceres_core.dir/model_io.cc.o.d"
  "CMakeFiles/ceres_core.dir/pipeline.cc.o"
  "CMakeFiles/ceres_core.dir/pipeline.cc.o.d"
  "CMakeFiles/ceres_core.dir/relation_annotator.cc.o"
  "CMakeFiles/ceres_core.dir/relation_annotator.cc.o.d"
  "CMakeFiles/ceres_core.dir/topic_identification.cc.o"
  "CMakeFiles/ceres_core.dir/topic_identification.cc.o.d"
  "CMakeFiles/ceres_core.dir/training.cc.o"
  "CMakeFiles/ceres_core.dir/training.cc.o.d"
  "libceres_core.a"
  "libceres_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
