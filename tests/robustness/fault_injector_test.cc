#include "robustness/fault_injector.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "kb/kb_io.h"

namespace ceres {
namespace {

std::vector<RawPage> MakeCrawl(size_t n) {
  std::vector<RawPage> crawl;
  for (size_t i = 0; i < n; ++i) {
    crawl.push_back(RawPage{
        "http://example.test/page" + std::to_string(i),
        "<html><body><h1>Page " + std::to_string(i) +
            "</h1><p>Some &amp; content</p></body></html>"});
  }
  return crawl;
}

TEST(FaultInjectorTest, ZeroRatesAreIdentity) {
  std::vector<RawPage> crawl = MakeCrawl(10);
  FaultReport report;
  std::vector<RawPage> out = InjectFaults(crawl, FaultInjectionConfig{},
                                          &report);
  ASSERT_EQ(out.size(), crawl.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].url, crawl[i].url);
    EXPECT_EQ(out[i].html, crawl[i].html);
  }
  EXPECT_TRUE(report.faults.empty());
}

TEST(FaultInjectorTest, SameSeedSameCorruption) {
  std::vector<RawPage> crawl = MakeCrawl(40);
  FaultInjectionConfig config;
  config.seed = 99;
  config.page_fault_rate = 0.5;
  config.drop_rate = 0.1;
  config.duplicate_rate = 0.1;
  FaultReport a_report, b_report;
  std::vector<RawPage> a = InjectFaults(crawl, config, &a_report);
  std::vector<RawPage> b = InjectFaults(crawl, config, &b_report);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].url, b[i].url);
    EXPECT_EQ(a[i].html, b[i].html);
  }
  ASSERT_EQ(a_report.faults.size(), b_report.faults.size());
  for (size_t i = 0; i < a_report.faults.size(); ++i) {
    EXPECT_EQ(a_report.faults[i].source_page, b_report.faults[i].source_page);
    EXPECT_EQ(a_report.faults[i].fault, b_report.faults[i].fault);
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiffer) {
  std::vector<RawPage> crawl = MakeCrawl(40);
  FaultInjectionConfig config;
  config.page_fault_rate = 1.0;
  config.seed = 1;
  std::vector<RawPage> a = InjectFaults(crawl, config, nullptr);
  config.seed = 2;
  std::vector<RawPage> b = InjectFaults(crawl, config, nullptr);
  size_t differing = 0;
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (a[i].html != b[i].html) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultInjectorTest, FullFaultRateHitsEveryPage) {
  std::vector<RawPage> crawl = MakeCrawl(25);
  FaultInjectionConfig config;
  config.page_fault_rate = 1.0;
  FaultReport report;
  std::vector<RawPage> out = InjectFaults(crawl, config, &report);
  EXPECT_EQ(out.size(), crawl.size());
  EXPECT_EQ(report.faults.size(), crawl.size());
}

TEST(FaultInjectorTest, DropRemovesAndDuplicateRepeats) {
  std::vector<RawPage> crawl = MakeCrawl(200);
  FaultInjectionConfig config;
  config.drop_rate = 0.2;
  config.duplicate_rate = 0.2;
  FaultReport report;
  std::vector<RawPage> out = InjectFaults(crawl, config, &report);
  const int64_t drops = report.count(FaultType::kDrop);
  const int64_t duplicates = report.count(FaultType::kDuplicate);
  EXPECT_GT(drops, 0);
  EXPECT_GT(duplicates, 0);
  EXPECT_EQ(out.size(),
            crawl.size() - static_cast<size_t>(drops) +
                static_cast<size_t>(duplicates));
  // Duplicated pages appear back to back.
  std::vector<PageIndex> duplicated = report.PagesWith(FaultType::kDuplicate);
  for (size_t i = 1; i < out.size(); ++i) {
    if (out[i].url == out[i - 1].url) {
      // Find its source index by URL suffix match against the report.
      EXPECT_EQ(out[i].html, out[i - 1].html);
    }
  }
  EXPECT_EQ(duplicated.size(), static_cast<size_t>(duplicates));
}

TEST(FaultInjectorTest, WeightsSelectFaultKinds) {
  std::vector<RawPage> crawl = MakeCrawl(50);
  FaultInjectionConfig config;
  config.page_fault_rate = 1.0;
  config.truncate_weight = 0;
  config.garble_weight = 0;
  config.tag_delete_weight = 0;
  config.entity_break_weight = 0;
  config.node_bomb_weight = 1;
  FaultReport report;
  InjectFaults(crawl, config, &report);
  EXPECT_EQ(report.count(FaultType::kNodeBomb),
            static_cast<int64_t>(crawl.size()));
}

TEST(FaultInjectorTest, TruncateShortensGarbleKeepsLength) {
  FaultInjectionConfig config;
  Rng rng(3);
  const std::string html = MakeCrawl(1)[0].html;
  std::string truncated = CorruptHtml(html, FaultType::kTruncate, config,
                                      &rng);
  EXPECT_LT(truncated.size(), html.size());
  EXPECT_EQ(html.substr(0, truncated.size()), truncated);
  std::string garbled = CorruptHtml(html, FaultType::kGarble, config, &rng);
  EXPECT_EQ(garbled.size(), html.size());
  EXPECT_NE(garbled, html);
}

TEST(FaultInjectorTest, ShapeFaultsLeaveHtmlAlone) {
  FaultInjectionConfig config;
  Rng rng(3);
  const std::string html = "<p>unchanged</p>";
  EXPECT_EQ(CorruptHtml(html, FaultType::kNone, config, &rng), html);
  EXPECT_EQ(CorruptHtml(html, FaultType::kDrop, config, &rng), html);
  EXPECT_EQ(CorruptHtml(html, FaultType::kDuplicate, config, &rng), html);
}

TEST(FaultInjectorTest, CorruptKbTextTallyMatchesLenientLoad) {
  // Build a KB file with a known number of fact lines.
  std::string kb_text = "#types\n";
  kb_text += "film\tentity\n";
  kb_text += "person\tentity\n";
  kb_text += "#predicates\n";
  kb_text += "directedBy\tfilm\tperson\tmulti\n";
  kb_text += "#entities\n";
  for (int i = 0; i < 20; ++i) {
    kb_text += std::to_string(i) + "\tfilm\tFilm " + std::to_string(i) + "\n";
  }
  for (int i = 20; i < 40; ++i) {
    kb_text +=
        std::to_string(i) + "\tperson\tPerson " + std::to_string(i) + "\n";
  }
  kb_text += "#triples\n";
  for (int i = 0; i < 20; ++i) {
    kb_text += std::to_string(i) + "\tdirectedBy\t" + std::to_string(20 + i) +
               "\n";
  }
  int64_t corrupted_lines = 0;
  std::string corrupted = CorruptKbText(kb_text, 0.3, /*seed=*/5,
                                        &corrupted_lines);
  ASSERT_GT(corrupted_lines, 0);
  std::istringstream in(corrupted);
  KbLoadOptions options;
  options.strict = false;
  KbLoadStats stats;
  Result<KnowledgeBase> kb = LoadKb(&in, options, &stats);
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  // Every mangled line is malformed, and nothing else is: exact accounting.
  EXPECT_EQ(stats.bad_lines, corrupted_lines);
  EXPECT_EQ(kb->num_triples(), 20 - corrupted_lines);
  EXPECT_EQ(kb->num_entities(), 40);
}

TEST(FaultInjectorTest, CorruptKbTextSparesEverythingOutsideTriples) {
  std::string kb_text =
      "# comment\n#types\nfilm\tentity\n#entities\n0\tfilm\tA\n"
      "1\tfilm\tB\n#triples\n";
  int64_t corrupted_lines = 0;
  std::string corrupted = CorruptKbText(kb_text, 1.0, /*seed=*/1,
                                        &corrupted_lines);
  EXPECT_EQ(corrupted_lines, 0);  // No fact lines to corrupt.
  EXPECT_EQ(corrupted, kb_text);
}

TEST(FaultInjectorTest, FaultTypeNamesAreDistinct) {
  EXPECT_STREQ(FaultTypeName(FaultType::kTruncate), "truncate");
  EXPECT_STREQ(FaultTypeName(FaultType::kNodeBomb), "node-bomb");
  EXPECT_STREQ(FaultTypeName(FaultType::kDrop), "drop");
}

}  // namespace
}  // namespace ceres
