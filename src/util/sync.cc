#include "util/sync.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace ceres {

namespace {

#ifndef CERES_DISABLE_LOCK_ORDER_CHECKS

/// One lock currently held by the calling thread.
struct HeldLock {
  uint64_t id = 0;
  const char* name = "mutex";
};

/// The held→acquired edges observed so far, process-wide. For every edge
/// the graph keeps the lock chain that first recorded it, so a violation
/// report can show the conflicting order's acquisition context, not just
/// its existence.
///
/// All state is guarded by a plain std::mutex: the tracker must not be a
/// CheckedMutex (it would recurse into itself), and it is only taken on
/// the first time a thread sees a given edge — steady-state nested locking
/// is served from the thread-local edge cache.
class LockOrderGraph {
 public:
  static LockOrderGraph& Instance() {
    static LockOrderGraph* graph = new LockOrderGraph();
    return *graph;
  }

  /// Records that `held` (the full chain, innermost last) was held while
  /// acquiring `acquired`. Reports a violation for the first edge that
  /// closes a cycle.
  void RecordAcquisition(const std::vector<HeldLock>& held,
                         const HeldLock& acquired) {
    const HeldLock& parent = held.back();
    std::unique_lock<std::mutex> lock(mu_);
    auto& out = edges_[parent.id];
    if (out.count(acquired.id) > 0) return;  // known edge, known acyclic
    if (ReachableLocked(acquired.id, parent.id)) {
      LockOrderViolation violation;
      violation.report = BuildReportLocked(held, acquired);
      lock.unlock();
      Report(violation);
      return;  // a custom handler chose to continue; keep the graph acyclic
    }
    out.insert(acquired.id);
    witnesses_[EdgeKey(parent.id, acquired.id)] =
        Witness{held, acquired, std::this_thread::get_id()};
  }

  /// Forgets a destroyed mutex. Its id is never reused, but dropping its
  /// edges keeps the graph from growing without bound when mutexes churn
  /// (per-request locals, test fixtures).
  void ForgetMutex(uint64_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    edges_.erase(id);
    for (auto& [from, out] : edges_) out.erase(id);
    for (auto it = witnesses_.begin(); it != witnesses_.end();) {
      if (it->second.acquired.id == id || EdgeFrom(it->first) == id) {
        it = witnesses_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void SetHandler(std::function<void(const LockOrderViolation&)> handler) {
    std::lock_guard<std::mutex> lock(mu_);
    handler_ = std::move(handler);
  }

 private:
  struct Witness {
    std::vector<HeldLock> held;
    HeldLock acquired;
    std::thread::id thread;
  };

  static uint64_t EdgeKey(uint64_t from, uint64_t to) {
    return (from << 32) | (to & 0xffffffffu);
  }
  static uint64_t EdgeFrom(uint64_t key) { return key >> 32; }

  /// Depth-first reachability from `from` to `target` over edges_.
  bool ReachableLocked(uint64_t from, uint64_t target) const {
    std::vector<uint64_t> stack{from};
    std::unordered_set<uint64_t> seen{from};
    while (!stack.empty()) {
      const uint64_t node = stack.back();
      stack.pop_back();
      if (node == target) return true;
      auto it = edges_.find(node);
      if (it == edges_.end()) continue;
      for (uint64_t next : it->second) {
        if (seen.insert(next).second) stack.push_back(next);
      }
    }
    return false;
  }

  static void AppendChain(std::ostringstream* out,
                          const std::vector<HeldLock>& held,
                          const HeldLock& acquired) {
    for (const HeldLock& lock : held) {
      *out << lock.name << "#" << lock.id << " -> ";
    }
    *out << "[acquiring] " << acquired.name << "#" << acquired.id;
  }

  std::string BuildReportLocked(const std::vector<HeldLock>& held,
                                const HeldLock& acquired) const {
    std::ostringstream out;
    out << "ceres: lock-order cycle detected (potential deadlock)\n"
        << "  this thread holds:     ";
    AppendChain(&out, held, acquired);
    out << "\n";
    // Walk the recorded witnesses for the first edge on a path
    // acquired -> ... -> held.back(); showing the direct witness of the
    // opposite order when one exists, else the first outgoing edge of the
    // about-to-be-acquired lock that reaches us.
    const Witness* conflicting = nullptr;
    for (const auto& [key, witness] : witnesses_) {
      if (EdgeFrom(key) == acquired.id &&
          (witness.acquired.id == held.back().id ||
           ReachableLocked(witness.acquired.id, held.back().id))) {
        conflicting = &witness;
        break;
      }
    }
    if (conflicting != nullptr) {
      out << "  conflicting order was: ";
      AppendChain(&out, conflicting->held, conflicting->acquired);
      out << "\n  first recorded on thread " << conflicting->thread << "\n";
    } else {
      out << "  conflicting order was recorded transitively through other "
             "locks\n";
    }
    return out.str();
  }

  void Report(const LockOrderViolation& violation) const {
    std::function<void(const LockOrderViolation&)> handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      handler = handler_;
    }
    if (handler) {
      handler(violation);
      return;
    }
    std::fputs(violation.report.c_str(), stderr);
    std::fflush(stderr);
    std::abort();
  }

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> edges_;
  std::unordered_map<uint64_t, Witness> witnesses_;
  std::function<void(const LockOrderViolation&)> handler_;
};

/// The calling thread's current CheckedMutex chain, innermost last.
std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> held;
  return held;
}

/// Edges this thread has already pushed to the global graph; consulting it
/// keeps steady-state nested locking off the global mutex.
std::unordered_set<uint64_t>& KnownEdges() {
  thread_local std::unordered_set<uint64_t> known;
  return known;
}

void NoteLocked(uint64_t id, const char* name) {
  std::vector<HeldLock>& held = HeldStack();
  const HeldLock acquired{id, name};
  if (!held.empty()) {
    const uint64_t key = (held.back().id << 32) | (id & 0xffffffffu);
    if (KnownEdges().insert(key).second) {
      LockOrderGraph::Instance().RecordAcquisition(held, acquired);
    }
  }
  held.push_back(acquired);
}

void NoteUnlocked(uint64_t id) {
  std::vector<HeldLock>& held = HeldStack();
  // Unlock order need not be LIFO (unique_lock::unlock mid-scope), so
  // erase the innermost matching entry.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->id == id) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

#endif  // CERES_DISABLE_LOCK_ORDER_CHECKS

uint64_t NextMutexId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void SetLockOrderViolationHandler(
    std::function<void(const LockOrderViolation&)> handler) {
#ifndef CERES_DISABLE_LOCK_ORDER_CHECKS
  LockOrderGraph::Instance().SetHandler(std::move(handler));
#else
  (void)handler;
#endif
}

CheckedMutex::CheckedMutex(const char* name) : name_(name), id_(NextMutexId()) {}

CheckedMutex::~CheckedMutex() {
#ifndef CERES_DISABLE_LOCK_ORDER_CHECKS
  LockOrderGraph::Instance().ForgetMutex(id_);
#endif
}

void CheckedMutex::lock() {
  mu_.lock();
#ifndef CERES_DISABLE_LOCK_ORDER_CHECKS
  NoteLocked(id_, name_);
#endif
}

void CheckedMutex::unlock() {
#ifndef CERES_DISABLE_LOCK_ORDER_CHECKS
  NoteUnlocked(id_);
#endif
  mu_.unlock();
}

bool CheckedMutex::try_lock() {
  if (!mu_.try_lock()) return false;
#ifndef CERES_DISABLE_LOCK_ORDER_CHECKS
  NoteLocked(id_, name_);
#endif
  return true;
}

}  // namespace ceres
