// Adversarial parser inputs: the corruption the chaos harness injects
// (robustness/fault_injector.h) plus hand-built pathological documents.
// ParseHtml is tolerant by design, so the contract under corruption is
// "never crash, fail only on the max_nodes budget".

#include <gtest/gtest.h>

#include <string>

#include "dom/html_parser.h"
#include "robustness/fault_injector.h"
#include "util/random.h"

namespace ceres {
namespace {

std::string SamplePage() {
  return "<html><head><title>Heat (1995)</title></head><body>"
         "<div class=\"main\"><h1>Heat</h1>"
         "<table><tr><th>Director</th><td>Michael Mann</td></tr>"
         "<tr><th>Release</th><td>15 &amp; 16 December 1995</td></tr></table>"
         "<ul class=\"cast\"><li>Al Pacino</li><li>Robert De Niro</li>"
         "<li>Val Kilmer</li></ul>"
         "<p>Crime &#38; drama &mdash; 170&nbsp;minutes.</p>"
         "</div></body></html>";
}

TEST(HtmlParserAdversarialTest, EveryTruncationPointParses) {
  const std::string page = SamplePage();
  for (size_t cut = 0; cut <= page.size(); ++cut) {
    Result<DomDocument> parsed = ParseHtml(page.substr(0, cut));
    EXPECT_TRUE(parsed.ok()) << "truncated at byte " << cut;
  }
}

TEST(HtmlParserAdversarialTest, GarbledBytesParse) {
  FaultInjectionConfig config;
  config.garble_byte_fraction = 0.10;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    std::string garbled =
        CorruptHtml(SamplePage(), FaultType::kGarble, config, &rng);
    Result<DomDocument> parsed = ParseHtml(garbled);
    EXPECT_TRUE(parsed.ok()) << "seed " << seed;
  }
}

TEST(HtmlParserAdversarialTest, DeletedTagsParse) {
  FaultInjectionConfig config;
  config.tag_delete_fraction = 0.5;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    std::string mangled =
        CorruptHtml(SamplePage(), FaultType::kTagDelete, config, &rng);
    Result<DomDocument> parsed = ParseHtml(mangled);
    EXPECT_TRUE(parsed.ok()) << "seed " << seed;
  }
}

TEST(HtmlParserAdversarialTest, BrokenEntitiesParse) {
  FaultInjectionConfig config;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    std::string broken =
        CorruptHtml(SamplePage(), FaultType::kEntityBreak, config, &rng);
    Result<DomDocument> parsed = ParseHtml(broken);
    EXPECT_TRUE(parsed.ok()) << "seed " << seed;
  }
}

TEST(HtmlParserAdversarialTest, HandBuiltTagSoupParses) {
  const char* soups[] = {
      "<",
      "<div",
      "<div class=\"x",
      "</nothing></ever></opened>",
      "<b><i>wrong</b> nesting</i>",
      "text < not a tag > more",
      "&#xZZ; &#999999999999; &unknown; &amp",
      "<!doctype html><!-- unterminated comment",
      "\xff\xfe\x00garbage\x80\x81",
      "<td><td><td><li><li><p><p><dt><dd><option>",
  };
  for (const char* soup : soups) {
    Result<DomDocument> parsed = ParseHtml(soup);
    EXPECT_TRUE(parsed.ok()) << "input: " << soup;
  }
}

TEST(HtmlParserAdversarialTest, DeeplyNestedDocumentParses) {
  // The parser keeps its own explicit stack, so depth is bounded by memory,
  // not the call stack.
  std::string deep;
  const int depth = 50000;
  for (int i = 0; i < depth; ++i) deep += "<div>";
  deep += "x";
  Result<DomDocument> parsed = ParseHtml(deep);
  ASSERT_TRUE(parsed.ok());
  EXPECT_GT(parsed->size(), depth);
}

TEST(HtmlParserAdversarialTest, MaxNodesBudgetIsEnforced) {
  std::string many;
  for (int i = 0; i < 200; ++i) many += "<p>x";
  HtmlParseOptions options;
  options.max_nodes = 100;
  Result<DomDocument> parsed = ParseHtml(many, options);
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  // The same document parses fine under the default budget.
  EXPECT_TRUE(ParseHtml(many).ok());
}

TEST(HtmlParserAdversarialTest, NodeBombTripsLoweredBudgetOnly) {
  FaultInjectionConfig config;
  config.node_bomb_nodes = 4096;
  Rng rng(7);
  std::string bombed =
      CorruptHtml(SamplePage(), FaultType::kNodeBomb, config, &rng);
  HtmlParseOptions tight;
  tight.max_nodes = 1000;
  EXPECT_EQ(ParseHtml(bombed, tight).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(ParseHtml(bombed).ok());
}

}  // namespace
}  // namespace ceres
