#ifndef CERES_CORE_PIPELINE_H_
#define CERES_CORE_PIPELINE_H_

#include <vector>

#include "cluster/detail_page_detector.h"
#include "cluster/page_clustering.h"
#include "core/extractor.h"
#include "core/relation_annotator.h"
#include "core/topic_identification.h"
#include "core/training.h"
#include "core/types.h"
#include "kb/knowledge_base.h"
#include "util/status.h"

namespace ceres {

/// End-to-end configuration of the CERES pipeline (Figure 3):
/// page clustering -> topic identification -> relation annotation ->
/// training -> extraction.
struct PipelineConfig {
  /// Group pages into template clusters before annotating (§2.1). Disable
  /// when the caller guarantees single-template input.
  bool cluster_pages = true;
  /// Clusters smaller than this are skipped entirely.
  size_t min_cluster_size = 5;
  /// Pre-filter template clusters that do not look like detail pages
  /// (chart/index clusters) before spending annotation effort — the §7
  /// future-work extension. Off by default for paper fidelity.
  bool filter_non_detail_clusters = false;
  DetailPageConfig detail_detector;

  PageClusteringConfig clustering;
  TopicConfig topic;
  AnnotatorConfig annotator;
  FeatureConfig features;
  TrainingConfig training;
  ExtractionConfig extraction;

  /// Pages (global indices) eligible for annotation/training; empty = all.
  /// The paper's SWDE/IMDb protocol annotates one half and evaluates
  /// extraction on the other half.
  std::vector<PageIndex> annotation_pages;
  /// Pages to extract from; empty = all.
  std::vector<PageIndex> extraction_pages;
};

/// A model trained for one template cluster, reusable on later crawls of
/// the same site (persist with core/model_io.h).
struct ClusterModel {
  int cluster = 0;
  TrainedModel model;
};

/// Everything the evaluation benches need from one pipeline run.
struct PipelineResult {
  /// Template cluster of each page (all pages; -1 only if clustering was
  /// skipped for size).
  std::vector<int> cluster_of_page;
  /// Identified topic entity per page (kInvalidEntity when none); covers
  /// annotation pages only.
  std::vector<EntityId> topic_of_page;
  /// Node carrying the topic name per page.
  std::vector<NodeId> topic_node_of_page;
  /// All (noisy) training annotations produced, incl. NAME labels.
  std::vector<Annotation> annotations;
  /// Pages that contributed training data.
  std::vector<PageIndex> annotated_pages;
  /// Final extractions across all requested pages.
  std::vector<Extraction> extractions;
  /// The trained per-cluster extractor models, largest cluster first.
  std::vector<ClusterModel> models;
};

/// Runs the full CERES pipeline over the pages of one website.
///
/// Never fails outright for data reasons: clusters that produce no
/// annotations simply contribute no extractions (the correct outcome for
/// sites without usable detail pages, §5.5). Returns an error only for
/// malformed configuration.
Result<PipelineResult> RunPipeline(const std::vector<DomDocument>& pages,
                                   const KnowledgeBase& kb,
                                   const PipelineConfig& config = {});

}  // namespace ceres

#endif  // CERES_CORE_PIPELINE_H_
