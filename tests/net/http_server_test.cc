#include "net/http_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.h"
#include "serve/http_frontend.h"
#include "serve/serve_test_util.h"
#include "serve/sharded_service.h"
#include "util/sync.h"

namespace ceres::serve {
namespace {

using ceres::testing::TrainedFilmSite;
using std::chrono::milliseconds;

constexpr char kSite[] = "films.example";
constexpr char kHost[] = "127.0.0.1";

net::HttpRequest MakeRequest(std::string method, std::string target,
                             std::string body = "") {
  net::HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  request.version = "HTTP/1.1";
  request.body = std::move(body);
  return request;
}

/// Echoes the request body (or the target for bodyless requests) inline
/// on the event loop — the minimal well-behaved handler.
net::HttpServer::Handler EchoHandler() {
  return [](net::HttpRequest request, net::HttpServer::Responder responder) {
    net::HttpResponse response;
    response.body =
        request.body.empty() ? std::string(request.target) : request.body;
    responder.Send(std::move(response));
  };
}

// ---------------------------------------------------------------------------
// Bare HttpServer: protocol discipline on the socket edge.
// ---------------------------------------------------------------------------

TEST(HttpServerTest, ServesConcurrentKeepAliveClients) {
  net::HttpServer server(EchoHandler());
  ASSERT_TRUE(server.Start().ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      net::HttpClient client(kHost, server.port());
      for (int i = 0; i < kPerThread; ++i) {
        const std::string body =
            "thread-" + std::to_string(t) + "-req-" + std::to_string(i);
        auto response = client.Roundtrip(MakeRequest("POST", "/echo", body));
        if (response.ok() && response.value().status == 200 &&
            response.value().body == body) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  const net::HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  EXPECT_EQ(stats.responses, kThreads * kPerThread);
  EXPECT_EQ(stats.responses_dropped, 0);
  EXPECT_EQ(stats.parse_errors, 0);
}

TEST(HttpServerTest, KeepAliveReusesOneConnection) {
  net::HttpServer server(EchoHandler());
  ASSERT_TRUE(server.Start().ok());
  net::HttpClient client(kHost, server.port());
  for (int i = 0; i < 10; ++i) {
    auto response = client.Roundtrip(MakeRequest("GET", "/ping"));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, 200);
  }
  // The whole exchange rode one accepted socket.
  EXPECT_EQ(client.reconnects(), 0);
  EXPECT_EQ(server.stats().accepted, 1);
}

TEST(HttpServerTest, MalformedRequestGetsTypedErrorAndClose) {
  net::HttpServer server(EchoHandler());
  ASSERT_TRUE(server.Start().ok());
  net::HttpClient client(kHost, server.port());
  ASSERT_TRUE(client.SendRaw("BROKEN\r\n\r\n").ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 400);
  const net::HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.parse_errors, 1);
  EXPECT_EQ(stats.requests, 0);  // the handler never saw it
}

TEST(HttpServerTest, ChunkedAndOversizedRequestsAreRejected) {
  net::HttpServerConfig config;
  config.limits.max_body_bytes = 64;
  net::HttpServer server(EchoHandler(), config);
  ASSERT_TRUE(server.Start().ok());
  {
    net::HttpClient client(kHost, server.port());
    ASSERT_TRUE(client
                    .SendRaw("POST /echo HTTP/1.1\r\n"
                             "Transfer-Encoding: chunked\r\n\r\n")
                    .ok());
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 501);
  }
  {
    net::HttpClient client(kHost, server.port());
    ASSERT_TRUE(client
                    .SendRaw("POST /echo HTTP/1.1\r\n"
                             "Content-Length: 65\r\n\r\n")
                    .ok());
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 413);
  }
  const net::HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.parse_errors, 2);
  EXPECT_EQ(stats.oversized, 1);
}

TEST(HttpServerTest, PerClientRateLimitSheds429WithAccounting) {
  net::HttpServerConfig config;
  // A negligible refill rate makes the outcome deterministic: exactly the
  // burst is admitted, everything after is shed.
  config.rate_limit.tokens_per_second = 0.001;
  config.rate_limit.burst = 3;
  net::HttpServer server(EchoHandler(), config);
  ASSERT_TRUE(server.Start().ok());
  net::HttpClient client(kHost, server.port());
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    auto response = client.Roundtrip(MakeRequest("GET", "/ping"));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response.value().status == 200) {
      ++ok;
    } else {
      ASSERT_EQ(response.value().status, 429);
      ++shed;
      const std::string* cause = nullptr;
      for (const net::HttpHeader& header : response.value().headers) {
        if (header.name == "x-ceres-shed") cause = &header.value;
      }
      ASSERT_NE(cause, nullptr);
      EXPECT_EQ(*cause, "rate-limit");
    }
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(shed, 7);
  const net::HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.rate_limited, 7);
  // Every request was fully parsed and answered; the shed ones just never
  // reached the handler.
  EXPECT_EQ(stats.requests, 10);
  EXPECT_EQ(stats.responses, 10);
}

TEST(HttpServerTest, TornRequestStallIsAnsweredWith408) {
  net::HttpServerConfig config;
  config.header_timeout_ms = 100;
  net::HttpServer server(EchoHandler(), config);
  ASSERT_TRUE(server.Start().ok());
  net::HttpClient client(kHost, server.port());
  ASSERT_TRUE(client.SendRaw("POST /echo HTTP/1.1\r\nContent-Le").ok());
  // Never send the rest; the server must time the stall out itself.
  auto response = client.ReadResponse(5000);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 408);
  EXPECT_EQ(server.stats().torn_closed, 1);
}

TEST(HttpServerTest, IdleKeepAliveConnectionIsClosed) {
  net::HttpServerConfig config;
  config.idle_timeout_ms = 100;
  net::HttpServer server(EchoHandler(), config);
  ASSERT_TRUE(server.Start().ok());
  net::HttpClient client(kHost, server.port());
  ASSERT_TRUE(client.Roundtrip(MakeRequest("GET", "/ping")).ok());
  // Outlive the idle timeout (plus sweep granularity) between requests.
  std::this_thread::sleep_for(milliseconds(400));
  auto response = client.Roundtrip(MakeRequest("GET", "/ping"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200);
  // The client found the socket dead and transparently reopened it.
  EXPECT_EQ(client.reconnects(), 1);
  EXPECT_GE(server.stats().idle_closed, 1);
}

TEST(HttpServerTest, DrainFlushesInFlightResponsesThenRefusesNew) {
  // The handler parks the responder; a background thread answers after
  // the drain has begun — the drain must wait for that response to flush.
  struct Parked {
    CheckedMutex mu{"Parked.mu"};
    net::HttpServer::Responder responder CERES_GUARDED_BY(mu);
    bool armed CERES_GUARDED_BY(mu) = false;
  };
  auto parked = std::make_shared<Parked>();
  net::HttpServer server(
      [parked](net::HttpRequest, net::HttpServer::Responder responder) {
        MutexLock lock(parked->mu);
        parked->responder = std::move(responder);
        parked->armed = true;
      });
  ASSERT_TRUE(server.Start().ok());

  net::HttpClient client(kHost, server.port());
  ASSERT_TRUE(client.SendRaw(net::EncodeRequest(
                                 MakeRequest("POST", "/slow", "work")))
                  .ok());
  while (true) {
    MutexLock lock(parked->mu);
    if (parked->armed) break;
  }
  std::thread answer([parked] {
    std::this_thread::sleep_for(milliseconds(100));
    net::HttpResponse response;
    response.body = "late but flushed";
    MutexLock lock(parked->mu);
    parked->responder.Send(std::move(response));
  });
  ASSERT_TRUE(server.Drain(Deadline::After(milliseconds(5000))).ok());
  answer.join();

  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, "late but flushed");
  const net::HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.responses, 1);
  EXPECT_EQ(stats.responses_dropped, 0);
  // The listener is gone: a new client cannot reach the server.
  net::HttpClient late(kHost, server.port());
  EXPECT_FALSE(late.Roundtrip(MakeRequest("GET", "/ping")).ok());
}

TEST(HttpServerTest, ForcePollBackendServesIdentically) {
  net::HttpServerConfig config;
  config.force_poll = true;
  net::HttpServer server(EchoHandler(), config);
  ASSERT_TRUE(server.Start().ok());
  net::HttpClient client(kHost, server.port());
  for (int i = 0; i < 5; ++i) {
    auto response =
        client.Roundtrip(MakeRequest("POST", "/echo", "poll-backend"));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, 200);
    EXPECT_EQ(response.value().body, "poll-backend");
  }
  EXPECT_EQ(server.stats().responses, 5);
}

// ---------------------------------------------------------------------------
// Loopback end-to-end: HTTP front-end over the sharded extraction tier.
// ---------------------------------------------------------------------------

class FrontendE2eTest : public ::testing::Test {
 protected:
  void StartService(bool cache_enabled,
                    size_t max_pending_completions = 2048) {
    root_ = ::testing::TempDir() + "/net_e2e_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    ShardedServiceConfig config;
    config.num_shards = 2;
    config.service.worker_threads = 2;
    config.registry.root_dir = root_;
    config.cache.enabled = cache_enabled;
    service_ = std::make_unique<ShardedExtractionService>(
        site_.kb.kb.ontology(), config);
    ASSERT_TRUE(service_->Publish(kSite, *site_.model).ok());
    ASSERT_TRUE(service_->Start().ok());
    FrontendConfig frontend_config;
    frontend_config.max_pending_completions = max_pending_completions;
    frontend_ = std::make_unique<ExtractionFrontend>(service_.get(),
                                                     frontend_config);
    ASSERT_TRUE(frontend_->Start().ok());
  }

  void TearDown() override {
    if (frontend_ != nullptr) frontend_->Stop();
    if (service_ != nullptr) service_->Stop();
  }

  static net::HttpRequest ExtractRequest(int variant = 0) {
    return MakeRequest("POST",
                       std::string("/extract?site=") + kSite,
                       TrainedFilmSite::UnseenPageHtml(variant));
  }

  ServeRequest DirectRequest(int variant = 0) {
    ServeRequest request;
    request.site = kSite;
    request.html = TrainedFilmSite::UnseenPageHtml(variant);
    return request;
  }

  int64_t ShardCompletions() {
    int64_t completed = 0;
    for (const ServiceStats& shard : service_->stats().per_shard) {
      completed += shard.completed;
    }
    return completed;
  }

  TrainedFilmSite site_;
  std::string root_;
  std::unique_ptr<ShardedExtractionService> service_;
  std::unique_ptr<ExtractionFrontend> frontend_;
};

TEST_F(FrontendE2eTest, LoopbackResponseIsByteIdenticalToDirectSubmit) {
  // Cache off: both paths run the full parse + inference pipeline, and
  // the only remaining nondeterminism (cold-load diagnostics) is removed
  // by warming the model first.
  StartService(/*cache_enabled=*/false);
  (void)service_->Submit(DirectRequest()).get();

  net::HttpClient client(kHost, frontend_->port());
  auto response = client.Roundtrip(ExtractRequest());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response.value().status, 200);

  const ServeResult direct = service_->Submit(DirectRequest()).get();
  ASSERT_TRUE(direct.status.ok());
  ASSERT_FALSE(direct.triples.empty());
  EXPECT_EQ(response.value().body, EncodeServeResultJson(kSite, direct));
}

TEST_F(FrontendE2eTest, NearDupResendIsServedWithoutParseOrInference) {
  StartService(/*cache_enabled=*/true);
  net::HttpClient client(kHost, frontend_->port());

  auto first = client.Roundtrip(ExtractRequest());
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().status, 200);
  EXPECT_NE(first.value().body.find("\"near_dup_hit\":false"),
            std::string::npos);
  const int64_t completions_after_first = ShardCompletions();

  // The re-crawl carries whitespace and case churn only: the simhash
  // normalizes it to the same fingerprint, so the cache answers and no
  // shard ever sees the request.
  net::HttpRequest recrawl = ExtractRequest();
  for (char& c : recrawl.body) {
    if (c == ' ') c = '\t';
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  auto second = client.Roundtrip(recrawl);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().status, 200);
  EXPECT_NE(second.value().body.find("\"near_dup_hit\":true"),
            std::string::npos);
  EXPECT_EQ(ShardCompletions(), completions_after_first);
  const ShardedServiceStats stats = service_->stats();
  EXPECT_EQ(stats.cache.hits, 1);
  EXPECT_EQ(stats.near_dup_served, 1);

  // Both responses carry the same triples (the cached extraction).
  const auto triples_of = [](const std::string& body) {
    const size_t begin = body.find("\"triples\":");
    const size_t end = body.find(",\"shed_cause\"");
    return body.substr(begin, end - begin);
  };
  EXPECT_EQ(triples_of(first.value().body), triples_of(second.value().body));
}

TEST_F(FrontendE2eTest, ShedRequestNeverReachesTheShardService) {
  // A zero completion budget sheds every /extract with 503. The bound is
  // checked before Submit: a shed request must never cost a shard a full
  // parse + inference pass, and submitted/completed stats must agree with
  // the HTTP responses (regression: the old path submitted first and
  // abandoned the result).
  StartService(/*cache_enabled=*/false, /*max_pending_completions=*/0);
  net::HttpClient client(kHost, frontend_->port());
  for (int i = 0; i < 3; ++i) {
    auto response = client.Roundtrip(ExtractRequest(i));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, 503);
  }
  int64_t submitted = 0;
  for (const ServiceStats& shard : service_->stats().per_shard) {
    submitted += shard.submitted;
  }
  EXPECT_EQ(submitted, 0);
}

TEST_F(FrontendE2eTest, SubmittedFutureIsPollSafe) {
  // The sharded tier must hand back a plain promise-backed future:
  // wait_for has to eventually report ready (a std::launch::deferred
  // wrapper reports future_status::deferred forever, so polling callers
  // would spin without ever running the work).
  StartService(/*cache_enabled=*/true);
  std::future<ServeResult> future = service_->Submit(DirectRequest());
  ASSERT_TRUE(future.valid());
  std::future_status status = std::future_status::timeout;
  for (int i = 0; i < 200 && status != std::future_status::ready; ++i) {
    status = future.wait_for(std::chrono::milliseconds(50));
    ASSERT_NE(status, std::future_status::deferred);
  }
  ASSERT_EQ(status, std::future_status::ready);
  const ServeResult result = future.get();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  // The completion hook populated the near-dup cache before the future
  // became ready: an identical resend is a cache hit.
  const ServeResult resend = service_->Submit(DirectRequest()).get();
  ASSERT_TRUE(resend.status.ok());
  EXPECT_TRUE(resend.diagnostics.near_dup_hit);
}

TEST_F(FrontendE2eTest, AdminInvalidateDropsCachedExtractions) {
  StartService(/*cache_enabled=*/true);
  net::HttpClient client(kHost, frontend_->port());
  ASSERT_TRUE(client.Roundtrip(ExtractRequest()).ok());

  auto invalidate = client.Roundtrip(
      MakeRequest("POST", std::string("/admin/invalidate?site=") + kSite));
  ASSERT_TRUE(invalidate.ok());
  EXPECT_EQ(invalidate.value().status, 200);
  EXPECT_EQ(service_->stats().cache.entries, 0u);

  // The resend misses the emptied cache and runs extraction again.
  const int64_t completions_before = ShardCompletions();
  auto resend = client.Roundtrip(ExtractRequest());
  ASSERT_TRUE(resend.ok());
  ASSERT_EQ(resend.value().status, 200);
  EXPECT_NE(resend.value().body.find("\"near_dup_hit\":false"),
            std::string::npos);
  EXPECT_EQ(ShardCompletions(), completions_before + 1);
}

TEST_F(FrontendE2eTest, ServesOperationalEndpoints) {
  StartService(/*cache_enabled=*/true);
  net::HttpClient client(kHost, frontend_->port());
  auto health = client.Roundtrip(MakeRequest("GET", "/healthz"));
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status, 200);
  auto metrics = client.Roundtrip(MakeRequest("GET", "/metrics"));
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().status, 200);
  auto stats = client.Roundtrip(MakeRequest("GET", "/stats"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().status, 200);
  EXPECT_NE(stats.value().body.find("\"shards\":2"), std::string::npos);
  auto missing = client.Roundtrip(MakeRequest("GET", "/nope"));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);
}

TEST_F(FrontendE2eTest, AdminDrainSignalsTheProcessOwner) {
  StartService(/*cache_enabled=*/true);
  EXPECT_FALSE(frontend_->drain_requested());
  net::HttpClient client(kHost, frontend_->port());
  auto response = client.Roundtrip(MakeRequest("POST", "/admin/drain"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 202);
  EXPECT_TRUE(frontend_->drain_requested());
  // The owner's shutdown sequence: drain the socket edge, then stop.
  EXPECT_TRUE(frontend_->Drain(Deadline::After(milliseconds(5000))).ok());
  const net::HttpServerStats stats = frontend_->server_stats();
  EXPECT_EQ(stats.requests, stats.responses);
  EXPECT_EQ(stats.responses_dropped, 0);
}

TEST_F(FrontendE2eTest, DrainUnderConcurrentLoadLosesNothing) {
  StartService(/*cache_enabled=*/true);
  constexpr int kThreads = 3;
  std::atomic<int> completed_ok{0};
  std::atomic<int> transport_failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      net::HttpClient client(kHost, frontend_->port());
      for (int i = 0; !stop.load() && i < 200; ++i) {
        auto response =
            client.Roundtrip(ExtractRequest((t * 200 + i) % 8));
        if (!response.ok()) {
          // Connection refused/reset after the drain began — the request
          // was never accepted, so nothing was lost.
          transport_failures.fetch_add(1);
          break;
        }
        if (response.value().status == 200) completed_ok.fetch_add(1);
      }
    });
  }
  // Let traffic establish, then drain while clients are mid-stream.
  std::this_thread::sleep_for(milliseconds(150));
  ASSERT_TRUE(frontend_->Drain(Deadline::After(milliseconds(10000))).ok());
  stop.store(true);
  for (std::thread& thread : clients) thread.join();

  // Drain's contract: every request the server accepted was answered and
  // flushed; nothing was dropped on the floor.
  const net::HttpServerStats stats = frontend_->server_stats();
  EXPECT_GT(stats.requests, 0);
  EXPECT_EQ(stats.requests, stats.responses);
  EXPECT_EQ(stats.responses_dropped, 0);
  EXPECT_GT(completed_ok.load(), 0);
}

}  // namespace
}  // namespace ceres::serve
