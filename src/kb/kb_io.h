#ifndef CERES_KB_KB_IO_H_
#define CERES_KB_KB_IO_H_

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "util/status.h"

namespace ceres {

/// Text serialization of a KnowledgeBase, for loading real seed KBs into
/// the extractor and for exporting synthetic ones.
///
/// The format is a single TSV-style text document with three sections:
///
///   #types
///   <name> \t <literal|entity>
///   #predicates
///   <name> \t <subject type> \t <object type> \t <multi|single>
///   #entities
///   <id> \t <type name> \t <name> [\t alias]...
///   #triples
///   <subject id> \t <predicate name> \t <object id>
///
/// Ids are the caller's; they are remapped to dense internal ids on load.
/// Lines starting with '#' other than section headers, and blank lines,
/// are ignored. Tabs inside names are not supported (rejected on save).

/// Writes `kb` to `out`. The KB must be frozen.
Status SaveKb(const KnowledgeBase& kb, std::ostream* out);

/// Convenience: SaveKb to a file path.
Status SaveKbToFile(const KnowledgeBase& kb, const std::string& path);

/// Controls how LoadKb reacts to malformed lines. Real seed KBs scraped
/// from the web routinely carry a few broken records; strict mode is for
/// trusted round-trip files, lenient mode for everything else.
struct KbLoadOptions {
  /// Strict (default): the first malformed line aborts the load with
  /// kInvalidArgument. Lenient: malformed lines are skipped and tallied;
  /// the rest of the file still loads.
  bool strict = true;
  /// Lenient mode only: give up with kResourceExhausted once more than
  /// this many lines are bad (the file is probably not a KB at all).
  int64_t max_bad_lines = std::numeric_limits<int64_t>::max();
};

/// Tally of what a lenient load skipped.
struct KbLoadStats {
  int64_t bad_lines = 0;
  /// Messages of the first few malformed lines (for diagnostics).
  std::vector<std::string> errors;
  /// Cap on recorded `errors`; later failures only count toward the tally.
  static constexpr size_t kMaxRecordedErrors = 20;
};

/// Parses a serialized KB. Returns a frozen KnowledgeBase; in strict mode a
/// kInvalidArgument status names the first offending line, in lenient mode
/// malformed lines are skipped and counted into `stats` (optional).
Result<KnowledgeBase> LoadKb(std::istream* in,
                             const KbLoadOptions& options = {},
                             KbLoadStats* stats = nullptr);

/// Convenience: LoadKb from a file path (kNotFound if unreadable). Errors
/// are prefixed with the path.
Result<KnowledgeBase> LoadKbFromFile(const std::string& path,
                                     const KbLoadOptions& options = {},
                                     KbLoadStats* stats = nullptr);

}  // namespace ceres

#endif  // CERES_KB_KB_IO_H_
