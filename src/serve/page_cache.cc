#include "serve/page_cache.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace ceres::serve {

namespace {

void BumpCacheCounter(const char* name, int64_t delta = 1) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry::Default().GetCounter(name)->Increment(delta);
}

}  // namespace

NearDupCache::NearDupCache(PageCacheConfig config)
    : config_(std::move(config)) {}

uint64_t NearDupCache::Fingerprint(std::string_view html) const {
  return Simhash64(html, config_.simhash);
}

size_t NearDupCache::EntryBytes(const std::string& site,
                                const CachedExtraction& result) {
  // Fixed overhead per entry: list node, site-index slot, bookkeeping.
  // The diagnostics payload is cached (and replayed on hits) too, so it
  // counts against the byte budget like everything else.
  size_t bytes = 128 + site.size() + sizeof(result.diagnostics);
  for (const Extraction& triple : result.triples) {
    bytes += sizeof(Extraction) + triple.subject.size() +
             triple.object.size();
  }
  return bytes;
}

bool NearDupCache::Lookup(const std::string& site, uint64_t fingerprint,
                          CachedExtraction* out) {
  if (!config_.enabled) return false;
  MutexLock lock(mu_);
  auto site_it = by_site_.find(site);
  if (site_it != by_site_.end()) {
    for (EntryList::iterator entry : site_it->second) {
      if (HammingDistance(entry->fingerprint, fingerprint) <=
          config_.hamming_threshold) {
        lru_.splice(lru_.begin(), lru_, entry);
        ++stats_.hits;
        BumpCacheCounter("ceres_cache_neardup_hits_total");
        *out = entry->result;
        return true;
      }
    }
  }
  ++stats_.misses;
  BumpCacheCounter("ceres_cache_neardup_misses_total");
  return false;
}

void NearDupCache::Insert(const std::string& site, uint64_t fingerprint,
                          CachedExtraction result) {
  if (!config_.enabled) return;
  MutexLock lock(mu_);
  auto site_it = by_site_.find(site);
  if (site_it != by_site_.end()) {
    for (EntryList::iterator entry : site_it->second) {
      if (entry->fingerprint == fingerprint) {
        // Refresh in place: latest extraction of this exact page wins.
        // Accounting-wise this is an insertion that evicts the payload it
        // replaces, keeping the identity
        //   insertions == entries + evictions + invalidations
        // intact (a plain refresh without the pair would leave an entry
        // no insertion ever claimed to produce).
        bytes_ -= entry->bytes;
        entry->bytes = EntryBytes(site, result);
        entry->result = std::move(result);
        bytes_ += entry->bytes;
        lru_.splice(lru_.begin(), lru_, entry);
        ++stats_.insertions;
        ++stats_.evictions;
        EvictOverBudgetLocked();
        return;
      }
    }
  }
  Entry entry;
  entry.site = site;
  entry.fingerprint = fingerprint;
  entry.bytes = EntryBytes(site, result);
  entry.result = std::move(result);
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  by_site_[site].push_back(lru_.begin());
  ++stats_.insertions;
  EvictOverBudgetLocked();
}

void NearDupCache::EraseFromSiteIndexLocked(EntryList::iterator it) {
  auto site_it = by_site_.find(it->site);
  if (site_it == by_site_.end()) return;
  auto& entries = site_it->second;
  entries.erase(std::remove(entries.begin(), entries.end(), it),
                entries.end());
  if (entries.empty()) by_site_.erase(site_it);
}

void NearDupCache::EvictOverBudgetLocked() {
  while (bytes_ > config_.max_bytes && !lru_.empty()) {
    EntryList::iterator victim = std::prev(lru_.end());
    bytes_ -= victim->bytes;
    EraseFromSiteIndexLocked(victim);
    lru_.erase(victim);
    ++stats_.evictions;
  }
}

void NearDupCache::InvalidateSite(const std::string& site) {
  MutexLock lock(mu_);
  auto site_it = by_site_.find(site);
  if (site_it == by_site_.end()) return;
  for (EntryList::iterator entry : site_it->second) {
    bytes_ -= entry->bytes;
    lru_.erase(entry);
    ++stats_.invalidations;
  }
  by_site_.erase(site_it);
}

void NearDupCache::Clear() {
  MutexLock lock(mu_);
  stats_.invalidations += static_cast<int64_t>(lru_.size());
  lru_.clear();
  by_site_.clear();
  bytes_ = 0;
}

PageCacheStats NearDupCache::stats() const {
  MutexLock lock(mu_);
  PageCacheStats out = stats_;
  out.entries = lru_.size();
  out.bytes = bytes_;
  return out;
}

}  // namespace ceres::serve
