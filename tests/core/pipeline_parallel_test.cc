// Thread-count determinism of the batch pipeline: RunPipeline at
// parallel.threads = 8 must produce a PipelineResult identical, field by
// field, to the serial run — annotations, extractions, diagnostics and
// all. Runs under the tsan ctest label so ThreadSanitizer also sweeps the
// cluster fan-out and the per-page inner loops for data races.

#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "dom/html_parser.h"
#include "dom/html_serializer.h"
#include "synth/corpora.h"
#include "synth/kb_builder.h"

namespace ceres {
namespace {

/// Two templates over one movie world: distinct css prefixes and section
/// mixes, so clustering yields two independent clusters — the unit the
/// pipeline fans out across.
class PipelineParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::MovieWorldConfig config;
    config.scale = 0.25;
    world_ = new synth::World(synth::BuildMovieWorld(config));
    synth::SeedKbConfig kb_config;
    kb_config.default_coverage = 0.9;
    seed_kb_ = new KnowledgeBase(synth::BuildSeedKb(*world_, kb_config));

    TypeId film = *world_->kb.ontology().TypeByName("film");
    const auto& films = world_->OfType(film);

    synth::SiteSpec a;
    a.name = "alpha.example";
    a.seed = 7;
    a.tmpl.topic_type = "film";
    a.tmpl.css_prefix = "pa";
    a.tmpl.num_recommendations = 3;
    a.tmpl.sections = {
        {synth::pred::kFilmDirectedBy, "director", synth::SectionLayout::kRow,
         0.05, 3},
        {synth::pred::kFilmHasCastMember, "cast",
         synth::SectionLayout::kList, 0.05, 12},
        {synth::pred::kFilmReleaseDate, "release_date",
         synth::SectionLayout::kRow, 0.05, 1},
    };
    a.topics.assign(films.begin(), films.begin() + 40);

    // Deliberately far from template A — table layouts, no nav/footer,
    // year-suffixed titles — so the two sites stay below the clustering
    // similarity threshold and land in separate clusters.
    synth::SiteSpec b;
    b.name = "beta.example";
    b.seed = 13;
    b.tmpl.topic_type = "film";
    b.tmpl.css_prefix = "pb";
    b.tmpl.nav = false;
    b.tmpl.footer = false;
    b.tmpl.title_year_suffix = true;
    b.tmpl.sections = {
        {synth::pred::kFilmWrittenBy, "writer", synth::SectionLayout::kTable,
         0.05, 4},
        {synth::pred::kFilmHasGenre, "genre", synth::SectionLayout::kTable,
         0.05, 5},
        {synth::pred::kFilmHasCastMember, "cast",
         synth::SectionLayout::kTable, 0.05, 10},
        {synth::pred::kFilmReleaseDate, "release_date",
         synth::SectionLayout::kTable, 0.05, 1},
    };
    b.topics.assign(films.begin() + 40, films.begin() + 80);

    pages_ = new std::vector<DomDocument>();
    split_ = new size_t(0);
    for (const synth::SiteSpec& spec : {a, b}) {
      for (const synth::GeneratedPage& page :
           GenerateSite(*world_, spec)) {
        Result<DomDocument> parsed = ParseHtml(page.html);
        ASSERT_TRUE(parsed.ok());
        pages_->push_back(std::move(parsed).value());
      }
      if (spec.name == a.name) *split_ = pages_->size();
    }
  }

  static void TearDownTestSuite() {
    delete pages_;
    delete split_;
    delete seed_kb_;
    delete world_;
    pages_ = nullptr;
    split_ = nullptr;
    seed_kb_ = nullptr;
    world_ = nullptr;
  }

  static PipelineResult Run(const std::vector<DomDocument>& pages,
                            int threads) {
    PipelineConfig config;
    config.parallel.threads = threads;
    Result<PipelineResult> result = RunPipeline(pages, *seed_kb_, config);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  static void ExpectSameResult(const PipelineResult& a,
                               const PipelineResult& b) {
    EXPECT_EQ(a.cluster_of_page, b.cluster_of_page);
    EXPECT_EQ(a.topic_of_page, b.topic_of_page);
    EXPECT_EQ(a.topic_node_of_page, b.topic_node_of_page);
    EXPECT_EQ(a.annotated_pages, b.annotated_pages);

    ASSERT_EQ(a.annotations.size(), b.annotations.size());
    for (size_t i = 0; i < a.annotations.size(); ++i) {
      EXPECT_EQ(a.annotations[i].page, b.annotations[i].page);
      EXPECT_EQ(a.annotations[i].node, b.annotations[i].node);
      EXPECT_EQ(a.annotations[i].predicate, b.annotations[i].predicate);
      EXPECT_EQ(a.annotations[i].object, b.annotations[i].object);
    }

    ASSERT_EQ(a.extractions.size(), b.extractions.size());
    for (size_t i = 0; i < a.extractions.size(); ++i) {
      EXPECT_EQ(a.extractions[i].page, b.extractions[i].page);
      EXPECT_EQ(a.extractions[i].node, b.extractions[i].node);
      EXPECT_EQ(a.extractions[i].predicate, b.extractions[i].predicate);
      EXPECT_EQ(a.extractions[i].subject, b.extractions[i].subject);
      EXPECT_EQ(a.extractions[i].object, b.extractions[i].object);
      // Exact, not approximate: the parallel run must execute the same
      // float operations in the same order as the serial one.
      EXPECT_EQ(a.extractions[i].confidence, b.extractions[i].confidence);
    }

    ASSERT_EQ(a.models.size(), b.models.size());
    for (size_t i = 0; i < a.models.size(); ++i) {
      EXPECT_EQ(a.models[i].cluster, b.models[i].cluster);
    }

    for (int s = 0; s < kNumPipelineStages; ++s) {
      EXPECT_EQ(a.diagnostics.stages[s].attempted,
                b.diagnostics.stages[s].attempted);
      EXPECT_EQ(a.diagnostics.stages[s].completed,
                b.diagnostics.stages[s].completed);
      EXPECT_EQ(a.diagnostics.stages[s].skipped,
                b.diagnostics.stages[s].skipped);
    }
    EXPECT_EQ(a.diagnostics.run_deadline_expired,
              b.diagnostics.run_deadline_expired);
    ASSERT_EQ(a.diagnostics.skipped_clusters.size(),
              b.diagnostics.skipped_clusters.size());
    for (size_t i = 0; i < a.diagnostics.skipped_clusters.size(); ++i) {
      EXPECT_EQ(a.diagnostics.skipped_clusters[i].cluster,
                b.diagnostics.skipped_clusters[i].cluster);
      EXPECT_EQ(a.diagnostics.skipped_clusters[i].stage,
                b.diagnostics.skipped_clusters[i].stage);
    }
  }

  static synth::World* world_;
  static KnowledgeBase* seed_kb_;
  static std::vector<DomDocument>* pages_;
  static size_t* split_;  // pages_[0, split_) came from site A
};

synth::World* PipelineParallelTest::world_ = nullptr;
KnowledgeBase* PipelineParallelTest::seed_kb_ = nullptr;
std::vector<DomDocument>* PipelineParallelTest::pages_ = nullptr;
size_t* PipelineParallelTest::split_ = nullptr;

TEST_F(PipelineParallelTest, MultiClusterResultIdenticalAtEightThreads) {
  const PipelineResult serial = Run(*pages_, /*threads=*/1);

  // Precondition: the two templates really landed in different clusters
  // (otherwise this test would not exercise the cluster fan-out).
  int num_clusters = 0;
  for (int cluster : serial.cluster_of_page) {
    num_clusters = std::max(num_clusters, cluster + 1);
  }
  ASSERT_GE(num_clusters, 2);
  ASSERT_FALSE(serial.extractions.empty());

  ExpectSameResult(Run(*pages_, /*threads=*/8), serial);
}

TEST_F(PipelineParallelTest, OddThreadCountAlsoIdentical) {
  const PipelineResult serial = Run(*pages_, /*threads=*/1);
  ExpectSameResult(Run(*pages_, /*threads=*/3), serial);
}

TEST_F(PipelineParallelTest, SingleClusterInnerParallelismIdentical) {
  // One template only: the thread budget moves to the per-page inner
  // loops (entity matching, lexicon mining, extraction), which must be
  // just as deterministic as the cluster fan-out.
  std::vector<DomDocument> site_a;
  for (size_t i = 0; i < *split_; ++i) {
    Result<DomDocument> reparsed =
        ParseHtml(SerializeHtml((*pages_)[i]));
    ASSERT_TRUE(reparsed.ok());
    site_a.push_back(std::move(reparsed).value());
  }
  const PipelineResult serial = Run(site_a, /*threads=*/1);
  ASSERT_FALSE(serial.extractions.empty());
  ExpectSameResult(Run(site_a, /*threads=*/8), serial);
}

}  // namespace
}  // namespace ceres
