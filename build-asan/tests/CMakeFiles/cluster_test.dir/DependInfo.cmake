
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/detail_page_detector_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/detail_page_detector_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/detail_page_detector_test.cc.o.d"
  "/root/repo/tests/cluster/page_clustering_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/page_clustering_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/page_clustering_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/baselines/CMakeFiles/ceres_baselines.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/ceres_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/eval/CMakeFiles/ceres_eval.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fusion/CMakeFiles/ceres_fusion.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/robustness/CMakeFiles/ceres_robustness.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/synth/CMakeFiles/ceres_synth.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cluster/CMakeFiles/ceres_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/kb/CMakeFiles/ceres_kb.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ml/CMakeFiles/ceres_ml.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/text/CMakeFiles/ceres_text.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dom/CMakeFiles/ceres_dom.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/ceres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
