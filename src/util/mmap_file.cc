#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace ceres {

MappedFile::~MappedFile() { Reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), mapped_(other.mapped_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MappedFile::Reset() {
  if (data_ != nullptr) {
    // const_cast: munmap takes void*; the mapping itself was PROT_READ.
    ::munmap(const_cast<char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    const int err = errno;
    if (err == ENOENT) {
      return Status::NotFound(StrCat("no such file: ", path));
    }
    return Status::Internal(
        StrCat("open(", path, "): ", std::strerror(err)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(
        StrCat("fstat(", path, "): ", std::strerror(err)));
  }
  MappedFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  file.mapped_ = true;
  if (file.size_ > 0) {
    void* addr =
        ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::Internal(
          StrCat("mmap(", path, "): ", std::strerror(err)));
    }
    file.data_ = static_cast<const char*>(addr);
  }
  // The mapping holds its own reference to the file; the descriptor is not
  // needed past this point.
  ::close(fd);
  return file;
}

}  // namespace ceres
