#include "dist/wire.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>

#include "util/string_util.h"

namespace ceres::dist {

namespace {

constexpr char kFrameMagic = static_cast<char>(0xCE);
// magic + type + payload_len.
constexpr size_t kFrameHeaderBytes = 1 + 1 + 4;
constexpr size_t kFrameChecksumBytes = 8;

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

/// Ok = all n bytes read; kNotFound = clean EOF before the first byte;
/// kInternal = read error or EOF mid-buffer.
Status ReadExact(int fd, char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("read failed: ", std::strerror(errno)));
    }
    if (r == 0) {
      if (off == 0) return Status::NotFound("eof");
      return Status::Internal(
          StrCat("short read: got ", off, " of ", n, " bytes"));
    }
    off += static_cast<size_t>(r);
  }
  return Status::Ok();
}

/// Remaps the mid-frame clean-EOF case to kInternal: once a frame header
/// has been consumed, "peer closed" means "peer died mid-frame".
Status ReadFully(int fd, char* data, size_t n) {
  Status status = ReadExact(fd, data, n);
  if (status.code() == StatusCode::kNotFound) {
    return Status::Internal("eof mid-frame");
  }
  return status;
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kAssignShard:
      return "assign-shard";
    case FrameType::kHeartbeat:
      return "heartbeat";
    case FrameType::kProgress:
      return "progress";
    case FrameType::kResult:
      return "result";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kWorkerError:
      return "worker-error";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameChecksumBytes);
  out.push_back(kFrameMagic);
  out.push_back(static_cast<char>(type));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  }
  out.append(payload);
  const uint64_t checksum = Fnv1a64(payload);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((checksum >> (8 * i)) & 0xFF));
  }
  return out;
}

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  const std::string encoded = EncodeFrame(type, payload);
  size_t off = 0;
  while (off < encoded.size()) {
    const ssize_t w = ::write(fd, encoded.data() + off, encoded.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("write ", FrameTypeName(type),
                                     " frame failed: ",
                                     std::strerror(errno)));
    }
    off += static_cast<size_t>(w);
  }
  return Status::Ok();
}

Result<Frame> ReadFrame(int fd) {
  char header[kFrameHeaderBytes];
  Status header_status = ReadExact(fd, header, sizeof(header));
  if (!header_status.ok()) {
    if (header_status.code() == StatusCode::kNotFound) return header_status;
    return PrependContext(std::move(header_status), "frame header");
  }
  if (header[0] != kFrameMagic) {
    return Status::Internal("corrupt frame: bad magic byte");
  }
  const uint32_t len = LoadU32(header + 2);
  if (len > kMaxFramePayloadBytes) {
    return Status::Internal(StrCat("corrupt frame: payload length ", len,
                                   " over the ", kMaxFramePayloadBytes,
                                   "-byte cap"));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header[1]);
  frame.payload.resize(len);
  if (len > 0) {
    CERES_RETURN_IF_ERROR(ReadFully(fd, frame.payload.data(), len));
  }
  char checksum_bytes[kFrameChecksumBytes];
  CERES_RETURN_IF_ERROR(
      ReadFully(fd, checksum_bytes, sizeof(checksum_bytes)));
  if (LoadU64(checksum_bytes) != Fnv1a64(frame.payload)) {
    return Status::Internal(
        StrCat("corrupt ", FrameTypeName(frame.type),
               " frame: checksum mismatch"));
  }
  return frame;
}

Status FrameBuffer::Next(Frame* out) {
  if (buffer_.size() < kFrameHeaderBytes) {
    return Status::NotFound("incomplete frame");
  }
  if (buffer_[0] != kFrameMagic) {
    return Status::Internal("corrupt stream: bad magic byte");
  }
  const uint32_t len = LoadU32(buffer_.data() + 2);
  if (len > kMaxFramePayloadBytes) {
    return Status::Internal(StrCat("corrupt stream: payload length ", len,
                                   " over the ", kMaxFramePayloadBytes,
                                   "-byte cap"));
  }
  const size_t total = kFrameHeaderBytes + len + kFrameChecksumBytes;
  if (buffer_.size() < total) return Status::NotFound("incomplete frame");
  out->type = static_cast<FrameType>(buffer_[1]);
  out->payload.assign(buffer_, kFrameHeaderBytes, len);
  const uint64_t checksum = LoadU64(buffer_.data() + kFrameHeaderBytes + len);
  buffer_.erase(0, total);
  if (checksum != Fnv1a64(out->payload)) {
    return Status::Internal(StrCat("corrupt ", FrameTypeName(out->type),
                                   " frame: checksum mismatch"));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Encoding primitives.
// ---------------------------------------------------------------------------

void WireWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void WireWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void WireWriter::PutF64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutStr(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

namespace {
Status Underrun() { return Status::Internal("payload underrun"); }
}  // namespace

Status WireReader::U8(uint8_t* v) {
  if (pos_ + 1 > data_.size()) return Underrun();
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::Ok();
}

Status WireReader::U32(uint32_t* v) {
  if (pos_ + 4 > data_.size()) return Underrun();
  *v = LoadU32(data_.data() + pos_);
  pos_ += 4;
  return Status::Ok();
}

Status WireReader::U64(uint64_t* v) {
  if (pos_ + 8 > data_.size()) return Underrun();
  *v = LoadU64(data_.data() + pos_);
  pos_ += 8;
  return Status::Ok();
}

Status WireReader::I32(int32_t* v) {
  uint32_t raw = 0;
  CERES_RETURN_IF_ERROR(U32(&raw));
  *v = static_cast<int32_t>(raw);
  return Status::Ok();
}

Status WireReader::I64(int64_t* v) {
  uint64_t raw = 0;
  CERES_RETURN_IF_ERROR(U64(&raw));
  *v = static_cast<int64_t>(raw);
  return Status::Ok();
}

Status WireReader::F64(double* v) {
  uint64_t bits = 0;
  CERES_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::Ok();
}

Status WireReader::Str(std::string* s) {
  uint32_t len = 0;
  CERES_RETURN_IF_ERROR(U32(&len));
  if (pos_ + len > data_.size()) return Underrun();
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Payload codecs.
// ---------------------------------------------------------------------------

std::string EncodeShardTask(const ShardTask& task) {
  WireWriter w;
  w.PutI32(task.shard);
  w.PutI32(task.attempt);
  w.PutU8(static_cast<uint8_t>(task.fault));
  w.PutU8(task.options.cluster_pages ? 1 : 0);
  w.PutU32(task.options.min_cluster_size);
  w.PutF64(task.options.max_quarantine_fraction);
  w.PutI64(task.options.shard_time_budget_ms);
  w.PutU32(static_cast<uint32_t>(task.sites.size()));
  for (const ShardSite& site : task.sites) {
    w.PutStr(site.site);
    w.PutU32(static_cast<uint32_t>(site.pages.size()));
    for (const RawPage& page : site.pages) {
      w.PutStr(page.url);
      w.PutStr(page.html);
    }
  }
  return w.Take();
}

Result<ShardTask> DecodeShardTask(std::string_view payload) {
  WireReader r(payload);
  ShardTask task;
  CERES_RETURN_IF_ERROR(r.I32(&task.shard));
  CERES_RETURN_IF_ERROR(r.I32(&task.attempt));
  uint8_t fault = 0;
  CERES_RETURN_IF_ERROR(r.U8(&fault));
  if (fault >= kNumProcessFaultTypes) {
    return Status::Internal(StrCat("bad fault kind ", fault));
  }
  task.fault = static_cast<ProcessFaultType>(fault);
  uint8_t cluster_pages = 0;
  CERES_RETURN_IF_ERROR(r.U8(&cluster_pages));
  task.options.cluster_pages = cluster_pages != 0;
  CERES_RETURN_IF_ERROR(r.U32(&task.options.min_cluster_size));
  CERES_RETURN_IF_ERROR(r.F64(&task.options.max_quarantine_fraction));
  CERES_RETURN_IF_ERROR(r.I64(&task.options.shard_time_budget_ms));
  uint32_t num_sites = 0;
  CERES_RETURN_IF_ERROR(r.U32(&num_sites));
  task.sites.resize(num_sites);
  for (ShardSite& site : task.sites) {
    CERES_RETURN_IF_ERROR(r.Str(&site.site));
    uint32_t num_pages = 0;
    CERES_RETURN_IF_ERROR(r.U32(&num_pages));
    site.pages.resize(num_pages);
    for (RawPage& page : site.pages) {
      CERES_RETURN_IF_ERROR(r.Str(&page.url));
      CERES_RETURN_IF_ERROR(r.Str(&page.html));
    }
  }
  if (!r.AtEnd()) return Status::Internal("trailing bytes in shard task");
  return task;
}

std::string EncodeHeartbeat(const HeartbeatMsg& msg) {
  WireWriter w;
  w.PutI32(msg.shard);
  w.PutI64(msg.seq);
  return w.Take();
}

Result<HeartbeatMsg> DecodeHeartbeat(std::string_view payload) {
  WireReader r(payload);
  HeartbeatMsg msg;
  CERES_RETURN_IF_ERROR(r.I32(&msg.shard));
  CERES_RETURN_IF_ERROR(r.I64(&msg.seq));
  if (!r.AtEnd()) return Status::Internal("trailing bytes in heartbeat");
  return msg;
}

std::string EncodeProgress(const ProgressMsg& msg) {
  WireWriter w;
  w.PutI32(msg.shard);
  w.PutI32(msg.sites_done);
  w.PutI32(msg.sites_total);
  w.PutStr(msg.site);
  return w.Take();
}

Result<ProgressMsg> DecodeProgress(std::string_view payload) {
  WireReader r(payload);
  ProgressMsg msg;
  CERES_RETURN_IF_ERROR(r.I32(&msg.shard));
  CERES_RETURN_IF_ERROR(r.I32(&msg.sites_done));
  CERES_RETURN_IF_ERROR(r.I32(&msg.sites_total));
  CERES_RETURN_IF_ERROR(r.Str(&msg.site));
  if (!r.AtEnd()) return Status::Internal("trailing bytes in progress");
  return msg;
}

std::string EncodeShardResult(const ShardResult& result) {
  WireWriter w;
  w.PutI32(result.shard);
  w.PutU32(static_cast<uint32_t>(result.sites.size()));
  for (const SiteResult& site : result.sites) {
    w.PutStr(site.site);
    w.PutI64(site.pages);
    w.PutI64(site.quarantined_pages);
    w.PutI64(site.skipped_clusters);
    w.PutU32(static_cast<uint32_t>(site.extractions.size()));
    for (const Extraction& e : site.extractions) {
      w.PutI32(e.page);
      w.PutI32(e.node);
      w.PutI32(e.predicate);
      w.PutStr(e.subject);
      w.PutStr(e.object);
      w.PutF64(e.confidence);
    }
  }
  return w.Take();
}

Result<ShardResult> DecodeShardResult(std::string_view payload) {
  WireReader r(payload);
  ShardResult result;
  CERES_RETURN_IF_ERROR(r.I32(&result.shard));
  uint32_t num_sites = 0;
  CERES_RETURN_IF_ERROR(r.U32(&num_sites));
  result.sites.resize(num_sites);
  for (SiteResult& site : result.sites) {
    CERES_RETURN_IF_ERROR(r.Str(&site.site));
    CERES_RETURN_IF_ERROR(r.I64(&site.pages));
    CERES_RETURN_IF_ERROR(r.I64(&site.quarantined_pages));
    CERES_RETURN_IF_ERROR(r.I64(&site.skipped_clusters));
    uint32_t num_extractions = 0;
    CERES_RETURN_IF_ERROR(r.U32(&num_extractions));
    site.extractions.resize(num_extractions);
    for (Extraction& e : site.extractions) {
      CERES_RETURN_IF_ERROR(r.I32(&e.page));
      CERES_RETURN_IF_ERROR(r.I32(&e.node));
      CERES_RETURN_IF_ERROR(r.I32(&e.predicate));
      CERES_RETURN_IF_ERROR(r.Str(&e.subject));
      CERES_RETURN_IF_ERROR(r.Str(&e.object));
      CERES_RETURN_IF_ERROR(r.F64(&e.confidence));
    }
  }
  if (!r.AtEnd()) return Status::Internal("trailing bytes in shard result");
  return result;
}

}  // namespace ceres::dist
