#include "serve/sharded_service.h"

#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace ceres::serve {

ShardedExtractionService::ShardedExtractionService(Ontology ontology,
                                                   ShardedServiceConfig config)
    : config_(std::move(config)), cache_(config_.cache) {
  CERES_CHECK_MSG(config_.num_shards >= 1, "num_shards must be >= 1");
  shards_.reserve(static_cast<size_t>(config_.num_shards));
  for (int i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    ModelRegistryConfig registry_config = config_.registry;
    registry_config.root_dir =
        StrCat(config_.registry.root_dir, "/shard-", i);
    shard->registry =
        std::make_unique<ModelRegistry>(ontology, registry_config);
    shard->service = std::make_unique<ExtractionService>(
        shard->registry.get(), config_.service);
    shards_.push_back(std::move(shard));
  }
}

ShardedExtractionService::~ShardedExtractionService() { Stop(); }

Status ShardedExtractionService::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  for (auto& shard : shards_) {
    CERES_RETURN_IF_ERROR(shard->service->Start());
  }
  started_ = true;
  return Status::Ok();
}

void ShardedExtractionService::Stop() {
  for (auto& shard : shards_) shard->service->Stop();
  started_ = false;
}

size_t ShardedExtractionService::ShardOf(std::string_view site) const {
  // Must agree with dist::ShardOfSite — stable FNV-1a, never std::hash.
  return static_cast<size_t>(
      Fnv1a64(site) % static_cast<uint64_t>(config_.num_shards));
}

std::future<ServeResult> ShardedExtractionService::Submit(
    ServeRequest request) {
  const std::string site = request.site;
  const uint64_t fingerprint = cache_.Fingerprint(request.html);
  CachedExtraction cached;
  if (cache_.Lookup(site, fingerprint, &cached)) {
    ServeResult result;
    result.status = Status::Ok();
    result.triples = std::move(cached.triples);
    result.diagnostics = cached.diagnostics;
    result.diagnostics.near_dup_hit = true;
    std::promise<ServeResult> promise;
    promise.set_value(std::move(result));
    return promise.get_future();
  }
  // The cache insert rides the shard's completion hook, which runs on the
  // resolving thread strictly before the future becomes ready — exactly
  // once per result, and never lazily. The returned future is the shard's
  // own promise-backed future: wait_for/wait_until work (a deferred
  // std::async future reports future_status::deferred forever), and the
  // hook's `this` capture lives only inside the shard service, which this
  // object owns and stops before the cache is destroyed — an unconsumed
  // future outliving *this cannot dangle.
  return shards_[ShardOf(site)]->service->Submit(
      std::move(request),
      [this, site, fingerprint](const ServeResult& result) {
        if (result.status.ok() && !result.diagnostics.near_dup_hit) {
          CachedExtraction entry;
          entry.triples = result.triples;
          entry.diagnostics = result.diagnostics;
          cache_.Insert(site, fingerprint, std::move(entry));
        }
      });
}

Result<int64_t> ShardedExtractionService::Publish(const std::string& site,
                                                  const TrainedModel& model) {
  Result<int64_t> version =
      shards_[ShardOf(site)]->registry->Publish(site, model);
  // Even a failed publish may have changed the store; dropping cached
  // extractions is always safe, serving stale ones is not.
  cache_.InvalidateSite(site);
  return version;
}

void ShardedExtractionService::Invalidate(const std::string& site) {
  shards_[ShardOf(site)]->registry->Invalidate(site);
  cache_.InvalidateSite(site);
}

ShardedServiceStats ShardedExtractionService::stats() const {
  ShardedServiceStats out;
  out.per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.per_shard.push_back(shard->service->stats());
  }
  out.cache = cache_.stats();
  out.near_dup_served = out.cache.hits;
  return out;
}

}  // namespace ceres::serve
