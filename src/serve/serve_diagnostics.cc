#include "serve/serve_diagnostics.h"

#include <sstream>

namespace ceres::serve {

const char* ShedCauseName(ShedCause cause) {
  switch (cause) {
    case ShedCause::kNone:
      return "none";
    case ShedCause::kQueueFull:
      return "queue_full";
    case ShedCause::kDeadlineBeforeAdmission:
      return "deadline_before_admission";
    case ShedCause::kTimedOutInQueue:
      return "timed_out_in_queue";
    case ShedCause::kModelLoadFailed:
      return "model_load_failed";
    case ShedCause::kParseFailed:
      return "parse_failed";
    case ShedCause::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

int64_t ServiceStats::total_shed() const {
  int64_t total = 0;
  for (int cause = 1; cause < kNumShedCauses; ++cause) total += shed[cause];
  return total;
}

std::string ServiceStats::Summary() const {
  std::ostringstream out;
  out << "serve: " << submitted << " submitted, " << completed
      << " completed, " << extractions << " extractions, " << total_shed()
      << " shed\n";
  if (batches > 0) {
    out << "  batches: " << batches << " (mean size "
        << (static_cast<double>(batched_requests) /
            static_cast<double>(batches))
        << ")\n";
  }
  for (int cause = 1; cause < kNumShedCauses; ++cause) {
    if (shed[cause] == 0) continue;
    out << "  shed/" << ShedCauseName(static_cast<ShedCause>(cause)) << ": "
        << shed[cause] << "\n";
  }
  return out.str();
}

}  // namespace ceres::serve
