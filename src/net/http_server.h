#ifndef CERES_NET_HTTP_SERVER_H_
#define CERES_NET_HTTP_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "net/http.h"
#include "net/rate_limiter.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/sync.h"

namespace ceres::net {

/// An HTTP/1.1 front-end over non-blocking sockets and a single-threaded
/// event loop — epoll where available, `poll` otherwise (or when
/// `force_poll` asks for the portable backend explicitly).
///
/// The loop owns every connection: it accepts, reads, parses (through the
/// hard-limited RequestParser), enforces the per-client token bucket, and
/// writes responses. Application work never runs on the loop: when a
/// request completes parsing, the handler is invoked with a `Responder`
/// and must return quickly; the response may be sent later from any
/// thread (the loop is woken through a self-pipe). While a request is in
/// flight its connection stops being read — natural per-connection
/// backpressure, and responses can never be interleaved out of order.
///
/// Protocol discipline on the socket edge:
///   - keep-alive by HTTP/1.1 default, honored until the client asks to
///     close, a parse error forces a close, or the server drains;
///   - idle keep-alive connections are closed after `idle_timeout_ms`;
///   - a connection stalled mid-request (torn request) is answered with
///     408 and closed after `header_timeout_ms`;
///   - malformed / oversized / chunked requests get their typed status
///     (400/413/414/431/501/505) and a close — the parser error never
///     reaches a handler;
///   - over-rate clients get 429 without the handler running, counted in
///     `rate_limited`.
///
/// Graceful drain (`Drain`): the listener closes immediately, connections
/// finish the request they are serving (including one that is mid-read),
/// every finished response is flushed, then connections close. Idle
/// connections get `drain_grace_ms` for bytes already in flight on the
/// wire to arrive before closing. Drain blocks until the loop reports
/// zero connections or the deadline expires; it is how a deployment
/// hot-swaps models or exits without dropping accepted work.
struct HttpServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 binds a kernel-assigned ephemeral port; read it back via port().
  uint16_t port = 0;
  int listen_backlog = 128;
  /// Accepted-connection cap; connections beyond it are closed at accept.
  size_t max_connections = 1024;
  HttpLimits limits;
  /// Per-client (peer address) admission; zero rate disables.
  TokenBucketConfig rate_limit;
  int64_t idle_timeout_ms = 30'000;
  int64_t header_timeout_ms = 10'000;
  int64_t drain_grace_ms = 200;
  /// Use the portable poll() backend even where epoll exists (tested
  /// fallback, not just a build-time escape hatch).
  bool force_poll = false;
};

/// Monotonic counters describing the socket edge. Typed shed/close
/// accounting: every rejected or dropped anything is counted somewhere.
struct HttpServerStats {
  int64_t accepted = 0;
  int64_t rejected_at_capacity = 0;
  int64_t closed = 0;
  int64_t requests = 0;          // fully parsed requests
  int64_t responses = 0;         // responses flushed into a socket
  int64_t responses_dropped = 0; // responder outlived its connection
  int64_t rate_limited = 0;      // 429s served
  int64_t parse_errors = 0;      // typed 4xx/5xx from the parser
  int64_t oversized = 0;         // 413/414/431 subset of parse_errors
  int64_t idle_closed = 0;
  int64_t torn_closed = 0;       // 408 mid-request stalls
  int64_t drained = 0;           // connections retired by a drain
};

class HttpServer {
 public:
  /// Completion capability handed to the handler. Thread-safe; Send may be
  /// called from any thread exactly once per request. A Responder that
  /// outlives its connection (peer vanished) or its server drops the
  /// response and counts it — it never dangles.
  class Responder {
   public:
    /// A detached responder; Send drops the response. Lets callers hold
    /// Responder by value in default-constructible containers.
    Responder() = default;

    void Send(HttpResponse response) const;

   private:
    friend class HttpServer;
    struct Inbox;
    Responder(std::shared_ptr<Inbox> inbox, uint64_t connection_id)
        : inbox_(std::move(inbox)), connection_id_(connection_id) {}
    std::shared_ptr<Inbox> inbox_;
    uint64_t connection_id_ = 0;
  };

  /// Invoked on the event loop for every well-formed, admitted request.
  /// Must not block; respond via the Responder (inline is fine).
  using Handler = std::function<void(HttpRequest, Responder)>;

  HttpServer(Handler handler, HttpServerConfig config = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the event loop. Fails on address/socket
  /// errors and on a second Start.
  Status Start();

  /// The bound port (after Start); useful with config.port == 0.
  uint16_t port() const { return bound_port_; }

  /// Graceful drain: stop accepting, finish and flush in-flight requests,
  /// close connections, then return. kDeadlineExceeded if connections
  /// remain when `deadline` expires (they are then force-closed by
  /// Shutdown). Safe to call once; concurrent callers share the wait.
  Status Drain(Deadline deadline = Deadline());

  /// Hard stop: close everything (no flush guarantee) and join the loop.
  /// Called by the destructor. Safe to call twice; Drain first for a
  /// graceful exit.
  void Shutdown();

  HttpServerStats stats() const;

 private:
  struct Loop;  // all event-loop state; lives in http_server.cc

  Handler handler_;
  const HttpServerConfig config_;
  uint16_t bound_port_ = 0;
  std::unique_ptr<Loop> loop_;
  std::thread loop_thread_;
  bool started_ = false;
  /// Final counters, preserved across Shutdown for post-mortem asserts.
  HttpServerStats final_stats_;
};

}  // namespace ceres::net

#endif  // CERES_NET_HTTP_SERVER_H_
