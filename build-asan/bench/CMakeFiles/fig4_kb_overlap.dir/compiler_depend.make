# Empty compiler generated dependencies file for fig4_kb_overlap.
# This may be replaced when dependencies are built.
