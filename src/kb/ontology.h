#ifndef CERES_KB_ONTOLOGY_H_
#define CERES_KB_ONTOLOGY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace ceres {

/// Identifier of an entity type within an Ontology.
using TypeId = int32_t;
/// Identifier of a relation predicate within an Ontology.
using PredicateId = int32_t;
inline constexpr PredicateId kInvalidPredicate = -1;
inline constexpr TypeId kInvalidType = -1;

/// Declaration of one entity type (Person, Film, ...). Literal types
/// (dates, phone numbers, ...) are modelled as entity types too, so that
/// every triple object has a surface name to match against page text.
struct EntityTypeDecl {
  TypeId id = kInvalidType;
  std::string name;
  /// True for value-like types (date, number, phone, ...) that are never
  /// page topics.
  bool is_literal = false;
};

/// Declaration of one relation predicate of the ontology (§2.1).
struct PredicateDecl {
  PredicateId id = kInvalidPredicate;
  std::string name;
  TypeId subject_type = kInvalidType;
  TypeId object_type = kInvalidType;
  /// True when a subject may hold many triples of this predicate
  /// (e.g. acted_in); false for functional predicates (birth date).
  bool multi_valued = false;
};

/// The schema shared by the seed KB and the extractor: entity types and
/// relation predicates. Classifier classes are the ontology's predicates
/// plus the reserved NAME and OTHER labels (§4).
class Ontology {
 public:
  Ontology() = default;

  /// Registers a type; name must be unique. Returns its id.
  TypeId AddEntityType(std::string_view name, bool is_literal = false);

  /// Registers a predicate; name must be unique. Returns its id.
  PredicateId AddPredicate(std::string_view name, TypeId subject_type,
                           TypeId object_type, bool multi_valued);

  Result<TypeId> TypeByName(std::string_view name) const;
  Result<PredicateId> PredicateByName(std::string_view name) const;

  const EntityTypeDecl& entity_type(TypeId id) const;
  const PredicateDecl& predicate(PredicateId id) const;

  int num_types() const { return static_cast<int>(types_.size()); }
  int num_predicates() const { return static_cast<int>(predicates_.size()); }

  const std::vector<PredicateDecl>& predicates() const { return predicates_; }
  const std::vector<EntityTypeDecl>& entity_types() const { return types_; }

 private:
  std::vector<EntityTypeDecl> types_;
  std::vector<PredicateDecl> predicates_;
  std::unordered_map<std::string, TypeId> type_by_name_;
  std::unordered_map<std::string, PredicateId> predicate_by_name_;
};

}  // namespace ceres

#endif  // CERES_KB_ONTOLOGY_H_
