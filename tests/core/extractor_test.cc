#include "core/extractor.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/entity_matcher.h"
#include "core/relation_annotator.h"
#include "core/topic_identification.h"
#include "core/training.h"
#include "testing/fixtures.h"
#include "util/string_util.h"

namespace ceres {
namespace {

using testing::FilmPageHtml;
using testing::ParseOrDie;

// Trains on eight annotated pages of one template, then extracts from an
// unseen page about an entirely new film (its entities are absent from the
// KB) — the "discover new entities" capability of §5.5.
class ExtractorTest : public ::testing::Test {
 protected:
  static constexpr int kTrainPages = 8;

  void SetUp() override {
    Ontology ontology;
    TypeId film = ontology.AddEntityType("film");
    TypeId person = ontology.AddEntityType("person");
    TypeId genre_type = ontology.AddEntityType("genre");
    directed_ = ontology.AddPredicate("directedBy", film, person, false);
    wrote_ = ontology.AddPredicate("writtenBy", film, person, false);
    cast_ = ontology.AddPredicate("hasCastMember", film, person, true);
    genre_ = ontology.AddPredicate("hasGenre", film, genre_type, true);
    kb_ = std::make_unique<KnowledgeBase>(std::move(ontology));

    EntityId comedy = kb_->AddEntity(genre_type, "Comedy");
    EntityId thriller = kb_->AddEntity(genre_type, "Thriller");
    for (int i = 0; i < kTrainPages; ++i) {
      EntityId f = kb_->AddEntity(film, StrCat("Film ", i));
      EntityId d = kb_->AddEntity(person, StrCat("Director ", i));
      EntityId w = kb_->AddEntity(person, StrCat("Writer ", i));
      EntityId a1 = kb_->AddEntity(person, StrCat("Actor A", i));
      EntityId a2 = kb_->AddEntity(person, StrCat("Actor B", i));
      kb_->AddTriple(f, directed_, d);
      kb_->AddTriple(f, wrote_, w);
      kb_->AddTriple(f, cast_, a1);
      kb_->AddTriple(f, cast_, a2);
      kb_->AddTriple(f, genre_, i % 2 == 0 ? comedy : thriller);
    }
    kb_->Freeze();

    for (int i = 0; i < kTrainPages; ++i) {
      docs_.push_back(ParseOrDie(FilmPageHtml(
          StrCat("Film ", i), StrCat("Director ", i), StrCat("Writer ", i),
          {StrCat("Actor A", i), StrCat("Actor B", i)},
          {i % 2 == 0 ? "Comedy" : "Thriller"})));
    }
    // The evaluation page (index kTrainPages): unknown entities.
    docs_.push_back(ParseOrDie(FilmPageHtml(
        "Brand New Film", "Fresh Director", "Fresh Writer",
        {"New Actor One", "New Actor Two"}, {"Thriller"})));
    for (const DomDocument& doc : docs_) ptrs_.push_back(&doc);

    std::vector<const DomDocument*> train_ptrs(ptrs_.begin(),
                                               ptrs_.end() - 1);
    std::vector<PageMentions> mentions;
    for (const DomDocument* doc : train_ptrs) {
      mentions.push_back(MatchPageMentions(*doc, *kb_));
    }
    TopicConfig topic_config;
    topic_config.common_string_min_count = 1000;
    TopicResult topics =
        IdentifyTopics(train_ptrs, mentions, *kb_, topic_config);
    AnnotationResult annotations =
        AnnotateRelations(train_ptrs, mentions, topics, *kb_, {});
    ASSERT_GT(annotations.annotations.size(), 20u);
    featurizer_ =
        std::make_unique<FeatureExtractor>(train_ptrs, FeatureConfig{});
    Result<TrainedModel> model =
        TrainExtractor(train_ptrs, annotations.annotations, *featurizer_,
                       kb_->ontology(), TrainingConfig{});
    ASSERT_TRUE(model.ok());
    model_ = std::make_unique<TrainedModel>(std::move(model).value());
  }

  const DomDocument* eval_page() const { return ptrs_[kTrainPages]; }

  std::unique_ptr<KnowledgeBase> kb_;
  PredicateId directed_ = kInvalidPredicate;
  PredicateId wrote_ = kInvalidPredicate;
  PredicateId cast_ = kInvalidPredicate;
  PredicateId genre_ = kInvalidPredicate;
  std::vector<DomDocument> docs_;
  std::vector<const DomDocument*> ptrs_;
  std::unique_ptr<FeatureExtractor> featurizer_;
  std::unique_ptr<TrainedModel> model_;
};

TEST_F(ExtractorTest, ExtractsFromUnseenPageWithNewEntities) {
  std::vector<Extraction> extractions = ExtractFromPages(
      {eval_page()}, {kTrainPages}, model_.get(), *featurizer_,
      ExtractionConfig{});
  ASSERT_FALSE(extractions.empty());
  bool saw_director = false;
  bool saw_writer = false;
  for (const Extraction& extraction : extractions) {
    EXPECT_EQ(extraction.subject, "Brand New Film");
    EXPECT_EQ(extraction.page, kTrainPages);
    if (extraction.predicate == directed_ &&
        extraction.object == "Fresh Director") {
      saw_director = true;
      EXPECT_GT(extraction.confidence, 0.5);
    }
    if (extraction.predicate == wrote_ &&
        extraction.object == "Fresh Writer") {
      saw_writer = true;
    }
  }
  EXPECT_TRUE(saw_director);
  EXPECT_TRUE(saw_writer);
}

TEST_F(ExtractorTest, NameExtractionEmitted) {
  std::vector<Extraction> extractions = ExtractFromPages(
      {eval_page()}, {kTrainPages}, model_.get(), *featurizer_,
      ExtractionConfig{});
  int names = 0;
  for (const Extraction& extraction : extractions) {
    if (extraction.predicate == kNamePredicate) {
      ++names;
      EXPECT_EQ(extraction.object, "Brand New Film");
    }
  }
  EXPECT_EQ(names, 1);
}

TEST_F(ExtractorTest, ConfidenceThresholdFilters) {
  ExtractionConfig low;
  low.confidence_threshold = 0.0;
  ExtractionConfig high;
  high.confidence_threshold = 0.99999;
  size_t low_count = ExtractFromPages({eval_page()}, {kTrainPages},
                                      model_.get(), *featurizer_, low)
                         .size();
  size_t high_count = ExtractFromPages({eval_page()}, {kTrainPages},
                                       model_.get(), *featurizer_, high)
                          .size();
  EXPECT_LE(high_count, low_count);
}

TEST_F(ExtractorTest, NameThresholdSkipsPages) {
  ExtractionConfig config;
  config.name_threshold = 1.1;  // Impossible.
  EXPECT_TRUE(ExtractFromPages({eval_page()}, {kTrainPages}, model_.get(),
                               *featurizer_, config)
                  .empty());
}

TEST_F(ExtractorTest, EmptyPageYieldsNothing) {
  DomDocument empty = ParseOrDie("<body></body>");
  EXPECT_TRUE(ExtractFromPages({&empty}, {0}, model_.get(), *featurizer_,
                               ExtractionConfig{})
                  .empty());
}

TEST_F(ExtractorTest, MultiValuedPredicateExtractsAllValues) {
  std::vector<Extraction> extractions = ExtractFromPages(
      {eval_page()}, {kTrainPages}, model_.get(), *featurizer_,
      ExtractionConfig{});
  int cast_count = 0;
  for (const Extraction& extraction : extractions) {
    if (extraction.predicate == cast_) ++cast_count;
  }
  EXPECT_GE(cast_count, 2);
}

TEST_F(ExtractorTest, BoilerplateLabelsNotExtracted) {
  std::vector<Extraction> extractions = ExtractFromPages(
      {eval_page()}, {kTrainPages}, model_.get(), *featurizer_,
      ExtractionConfig{});
  for (const Extraction& extraction : extractions) {
    EXPECT_NE(extraction.object, "Director:");
    EXPECT_NE(extraction.object, "Writer:");
    EXPECT_NE(extraction.object, "Cast");
    EXPECT_NE(extraction.object, "Genres");
  }
}

}  // namespace
}  // namespace ceres
