#include "dom/dom_utils.h"

#include <gtest/gtest.h>

#include "dom/html_parser.h"

namespace ceres {
namespace {

class DomUtilsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<DomDocument> parsed = ParseHtml(
        "<body>"
        "  <div id=\"a\"><span id=\"a1\">1</span><span id=\"a2\">2</span>"
        "</div>"
        "  <div id=\"b\"><ul><li id=\"l1\">x</li><li id=\"l2\">y</li>"
        "<li id=\"l3\">z</li></ul></div>"
        "</body>");
    ASSERT_TRUE(parsed.ok());
    doc_ = std::move(parsed).value();
  }

  NodeId ById(const std::string& id) const {
    for (NodeId n = 0; n < doc_.size(); ++n) {
      if (doc_.Attribute(n, "id") == id) return n;
    }
    return kInvalidNode;
  }

  DomDocument doc_;
};

TEST_F(DomUtilsTest, LowestCommonAncestor) {
  NodeId a1 = ById("a1");
  NodeId a2 = ById("a2");
  NodeId l1 = ById("l1");
  EXPECT_EQ(LowestCommonAncestor(doc_, a1, a2), ById("a"));
  // Spans and list items meet at body.
  NodeId body = doc_.node(ById("a")).parent;
  EXPECT_EQ(LowestCommonAncestor(doc_, a1, l1), body);
  EXPECT_EQ(LowestCommonAncestor(doc_, a1, a1), a1);
  EXPECT_EQ(LowestCommonAncestor(doc_, a1, ById("a")), ById("a"));
}

TEST_F(DomUtilsTest, AncestorChainNearestFirst) {
  NodeId l1 = ById("l1");
  std::vector<NodeId> chain = AncestorChain(doc_, l1);
  ASSERT_EQ(chain.size(), 4u);  // ul, div#b, body, html.
  EXPECT_EQ(doc_.node(chain[0]).tag, "ul");
  EXPECT_EQ(chain[1], ById("b"));
  EXPECT_EQ(doc_.node(chain[3]).tag, "html");
  EXPECT_TRUE(AncestorChain(doc_, doc_.root()).empty());
}

TEST_F(DomUtilsTest, SiblingWindowRespectsWidth) {
  NodeId l2 = ById("l2");
  std::vector<NodeId> window = SiblingWindow(doc_, l2, 5);
  EXPECT_EQ(window.size(), 2u);
  window = SiblingWindow(doc_, l2, 1);
  EXPECT_EQ(window.size(), 2u);
  NodeId l1 = ById("l1");
  window = SiblingWindow(doc_, l1, 1);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0], l2);
  EXPECT_TRUE(SiblingWindow(doc_, doc_.root(), 3).empty());
}

TEST_F(DomUtilsTest, HighestExclusiveAncestor) {
  NodeId l1 = ById("l1");
  NodeId l2 = ById("l2");
  // With l2 as a competing mention, the highest node containing l1 but not
  // l2 is l1 itself (they share the ul).
  EXPECT_EQ(HighestExclusiveAncestor(doc_, l1, {l1, l2}), l1);
  // With a competing mention in the other div, l1 can climb to div#b.
  NodeId a1 = ById("a1");
  EXPECT_EQ(HighestExclusiveAncestor(doc_, l1, {l1, a1}), ById("b"));
  // With no competitors it climbs to the root.
  EXPECT_EQ(HighestExclusiveAncestor(doc_, l1, {l1}), doc_.root());
}

TEST_F(DomUtilsTest, SubtreePreorder) {
  NodeId b = ById("b");
  std::vector<NodeId> subtree = Subtree(doc_, b);
  ASSERT_EQ(subtree.size(), 5u);  // div, ul, 3×li.
  EXPECT_EQ(subtree[0], b);
  EXPECT_EQ(doc_.node(subtree[1]).tag, "ul");
  EXPECT_EQ(subtree[2], ById("l1"));
}

TEST_F(DomUtilsTest, CountInSubtree) {
  NodeId b = ById("b");
  std::vector<NodeId> candidates{ById("l1"), ById("l3"), ById("a1")};
  EXPECT_EQ(CountInSubtree(doc_, b, candidates), 2);
  EXPECT_EQ(CountInSubtree(doc_, doc_.root(), candidates), 3);
  EXPECT_EQ(CountInSubtree(doc_, ById("a1"), candidates), 1);
}

TEST_F(DomUtilsTest, IsAncestorOrSelf) {
  EXPECT_TRUE(doc_.IsAncestorOrSelf(doc_.root(), ById("l1")));
  EXPECT_TRUE(doc_.IsAncestorOrSelf(ById("l1"), ById("l1")));
  EXPECT_FALSE(doc_.IsAncestorOrSelf(ById("l1"), ById("b")));
}

TEST_F(DomUtilsTest, DepthFromRoot) {
  EXPECT_EQ(doc_.Depth(doc_.root()), 0);
  EXPECT_EQ(doc_.Depth(ById("l1")), 4);  // html/body/div/ul/li.
}

}  // namespace
}  // namespace ceres
