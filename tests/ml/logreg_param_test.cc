// Parameterized property sweep for the multinomial logistic regression:
// across class counts and regularization strengths, training on separable
// data must reach high accuracy and always emit valid probability
// distributions; stronger regularization never yields larger weights.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "ml/logistic_regression.h"
#include "util/random.h"

namespace ceres {
namespace {

struct SweepCase {
  int32_t num_classes;
  double l2_c;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "K%d_C%g", info.param.num_classes,
                info.param.l2_c);
  std::string name;
  for (const char* p = buffer; *p != '\0'; ++p) {
    name.push_back(*p == '.' ? 'p' : *p);
  }
  return name;
}

class LogRegSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  // Each class fires its own indicator feature plus shared noise features.
  std::vector<LabeledExample> MakeData(int32_t num_classes, int per_class,
                                       Rng* rng) {
    std::vector<LabeledExample> examples;
    for (int32_t cls = 0; cls < num_classes; ++cls) {
      for (int i = 0; i < per_class; ++i) {
        LabeledExample example;
        example.features.Add(cls, 1.0);
        example.features.Add(num_classes, rng->UniformDouble());
        example.features.Add(num_classes + 1, rng->UniformDouble());
        example.features.Finalize();
        example.label = cls;
        examples.push_back(std::move(example));
      }
    }
    return examples;
  }
};

TEST_P(LogRegSweepTest, SeparableDataLearnedAccurately) {
  const SweepCase param = GetParam();
  Rng rng(42);
  std::vector<LabeledExample> examples =
      MakeData(param.num_classes, 25, &rng);
  LogisticRegression model;
  LogRegConfig config;
  config.l2_c = param.l2_c;
  ASSERT_TRUE(
      model.Train(examples, param.num_classes + 2, param.num_classes, config)
          .ok());
  int correct = 0;
  for (const LabeledExample& example : examples) {
    if (model.Predict(example.features).first == example.label) ++correct;
  }
  EXPECT_GE(static_cast<double>(correct) / examples.size(), 0.95);
}

TEST_P(LogRegSweepTest, ProbabilitiesAlwaysValid) {
  const SweepCase param = GetParam();
  Rng rng(7);
  std::vector<LabeledExample> examples =
      MakeData(param.num_classes, 10, &rng);
  LogisticRegression model;
  LogRegConfig config;
  config.l2_c = param.l2_c;
  ASSERT_TRUE(
      model.Train(examples, param.num_classes + 2, param.num_classes, config)
          .ok());
  for (int trial = 0; trial < 50; ++trial) {
    SparseVector v;
    int entries = static_cast<int>(rng.Uniform(0, 4));
    for (int e = 0; e < entries; ++e) {
      v.Add(static_cast<int32_t>(rng.Index(
                static_cast<size_t>(param.num_classes + 2))),
            rng.Gaussian(0, 3));
    }
    v.Finalize();
    std::vector<double> probs = model.PredictProbabilities(v);
    ASSERT_EQ(probs.size(), static_cast<size_t>(param.num_classes));
    double sum = 0;
    for (double p : probs) {
      EXPECT_TRUE(std::isfinite(p));
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LogRegSweepTest,
    ::testing::Values(SweepCase{2, 1.0}, SweepCase{2, 100.0},
                      SweepCase{4, 0.1}, SweepCase{4, 1.0},
                      SweepCase{8, 1.0}, SweepCase{8, 10.0},
                      SweepCase{16, 1.0}),
    CaseName);

TEST(LogRegRegularizationPathTest, WeightNormDecreasesWithPenalty) {
  Rng rng(9);
  std::vector<LabeledExample> examples;
  for (int i = 0; i < 40; ++i) {
    LabeledExample example;
    example.features.Add(i % 2, 1.0);
    example.features.Finalize();
    example.label = i % 2;
    examples.push_back(std::move(example));
  }
  double previous_norm = -1;
  for (double c : {0.01, 0.1, 1.0, 10.0, 100.0}) {
    LogisticRegression model;
    LogRegConfig config;
    config.l2_c = c;
    ASSERT_TRUE(model.Train(examples, 2, 2, config).ok());
    double norm = 0;
    for (int32_t cls = 0; cls < 2; ++cls) {
      for (int32_t f = 0; f < 2; ++f) {
        norm += model.WeightAt(cls, f) * model.WeightAt(cls, f);
      }
    }
    EXPECT_GT(norm, previous_norm);  // Weaker penalty, larger weights.
    previous_norm = norm;
  }
  (void)rng;
}

}  // namespace
}  // namespace ceres
