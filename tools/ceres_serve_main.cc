// ceres_serve — replay a synthetic crawl through the online extraction
// service.
//
// Builds an SWDE-style movie corpus, trains a per-site extractor offline
// (the regular CERES pipeline), publishes each model into a versioned
// on-disk store, then replays the held-out half of every site's crawl as
// a concurrent request stream against ExtractionService. Mid-stream it
// retrains and hot-swaps one site's model to exercise the live-update
// path, and it sprinkles requests for a site that was never published to
// show typed load-shedding.
//
// Runs with the obs metrics registry enabled: Prometheus-style dumps go
// to stderr every --metrics-interval seconds (0 = off) and a final dump
// always prints before exit, so a replay can be diffed against the
// service/registry counters it claims.
//
// Prints per-run QPS, p50/p95/p99 end-to-end latency, shed accounting,
// and registry cache counters, then verifies the serving invariants:
//
//   * every submitted request resolves, and service accounting is exact
//     (completed + shed == submitted);
//   * every failure carries a typed shed cause — nothing fails silently;
//   * requests for the unpublished site shed as kModelLoadFailed with
//     kNotFound, and never poison other sites' traffic;
//   * the mid-stream hot-swap is observed: responses for the swapped site
//     eventually carry the new model version, with zero dropped requests;
//   * the warm cache works: after the cold loads, hits dominate.
//
// Exit status 0 when every invariant holds, 1 otherwise.
//
// Usage:
//   ceres_serve [--sites 3] [--threads 8] [--clients 16] [--repeat 3]
//               [--scale 0.25] [--seed 100] [--store DIR]
//               [--metrics-interval SEC] [--verbose]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "obs/metrics.h"
#include "serve/extraction_service.h"
#include "serve/model_registry.h"
#include "synth/corpora.h"
#include "util/logging.h"

namespace {

using namespace ceres;  // NOLINT(build/namespaces)

struct Options {
  size_t sites = 3;
  int threads = 8;
  int clients = 16;
  int repeat = 3;
  double scale = 0.25;
  uint64_t seed = 100;
  std::string store;
  /// Seconds between periodic Prometheus dumps to stderr; 0 disables the
  /// periodic dumper (the dump-on-exit still prints).
  double metrics_interval = 0.0;
  bool verbose = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: ceres_serve [--sites N] [--threads N] [--clients N]\n"
               "  [--repeat N] [--scale X] [--seed N] [--store DIR]\n"
               "  [--metrics-interval SEC] [--verbose]\n");
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--sites" && next(&value)) {
      options->sites =
          static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (arg == "--threads" && next(&value)) {
      options->threads =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (arg == "--clients" && next(&value)) {
      options->clients =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (arg == "--repeat" && next(&value)) {
      options->repeat =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (arg == "--scale" && next(&value)) {
      options->scale = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--seed" && next(&value)) {
      options->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--store" && next(&value)) {
      options->store = value;
    } else if (arg == "--metrics-interval" && next(&value)) {
      options->metrics_interval = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--verbose") {
      options->verbose = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return options->sites >= 1 && options->threads >= 1 &&
         options->clients >= 1 && options->repeat >= 1;
}

int g_violations = 0;

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", what);
    ++g_violations;
  }
}

int64_t Percentile(std::vector<int64_t>* sorted_micros, double p) {
  if (sorted_micros->empty()) return 0;
  const size_t index = std::min(
      sorted_micros->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_micros->size())));
  return (*sorted_micros)[index];
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  if (options.verbose) SetLogLevel(LogLevel::kInfo);
  obs::SetEnabled(true);
  // Periodic metrics dumper: blocks on a signaled future (no sleep-poll)
  // and wakes every interval until shutdown. RAII so every early-return
  // path in main stops and joins it.
  struct MetricsDumper {
    std::promise<void> stop;
    std::thread thread;
    void Launch(double interval_seconds) {
      std::future<void> ready = stop.get_future();
      thread = std::thread([interval_seconds, ready = std::move(ready)] {
        const std::chrono::duration<double> interval(interval_seconds);
        while (ready.wait_for(interval) == std::future_status::timeout) {
          std::fprintf(stderr, "--- metrics (periodic) ---\n%s",
                       obs::MetricsRegistry::Default()
                           .ToPrometheusText()
                           .c_str());
        }
      });
    }
    ~MetricsDumper() {
      if (!thread.joinable()) return;
      stop.set_value();
      thread.join();
    }
  };
  MetricsDumper metrics_dumper;
  if (options.metrics_interval > 0) {
    metrics_dumper.Launch(options.metrics_interval);
  }
  if (options.store.empty()) {
    options.store = (std::filesystem::temp_directory_path() /
                     "ceres_serve_store").string();
    std::filesystem::remove_all(options.store);
  }

  // --- Offline: train one extractor per site and publish it. -------------
  synth::Corpus corpus =
      synth::MakeSwdeCorpus(synth::SwdeVertical::kMovie, options.scale,
                            options.seed);
  const size_t num_sites = std::min(options.sites, corpus.sites.size());

  serve::ModelRegistryConfig registry_config;
  registry_config.root_dir = options.store;
  serve::ModelRegistry registry(corpus.seed_kb.ontology(), registry_config);

  struct ReplaySite {
    std::string name;
    std::vector<const synth::GeneratedPage*> eval_pages;
  };
  std::vector<ReplaySite> replay;
  TrainedModel swap_model;  // retrain source for the mid-stream hot-swap
  for (size_t s = 0; s < num_sites; ++s) {
    const synth::SyntheticSite& site = corpus.sites[s];
    std::vector<DomDocument> pages;
    for (const synth::GeneratedPage& page : site.pages) {
      Result<DomDocument> doc = ParseHtml(page.html);
      if (!doc.ok()) {
        std::fprintf(stderr, "generator produced unparseable page: %s\n",
                     doc.status().ToString().c_str());
        return 1;
      }
      pages.push_back(std::move(doc).value());
    }
    // The paper's 50/50 protocol: even pages train, odd pages are the
    // held-out crawl we replay against the service.
    PipelineConfig config;
    for (size_t i = 0; i < pages.size(); i += 2) {
      config.annotation_pages.push_back(static_cast<PageIndex>(i));
    }
    config.extraction_pages = config.annotation_pages;  // skip eval work
    Result<PipelineResult> trained = RunPipeline(pages, corpus.seed_kb,
                                                 config);
    if (!trained.ok() || trained->models.empty()) {
      std::fprintf(stderr, "site %s: training produced no model (%s)\n",
                   site.name.c_str(),
                   trained.ok() ? "no clusters survived"
                                : trained.status().ToString().c_str());
      continue;
    }
    const TrainedModel& model = trained->models.front().model;
    Result<int64_t> version = registry.Publish(site.name, model);
    if (!version.ok()) {
      std::fprintf(stderr, "site %s: publish failed: %s\n",
                   site.name.c_str(), version.status().ToString().c_str());
      return 1;
    }
    if (replay.empty()) swap_model = model;
    ReplaySite entry;
    entry.name = site.name;
    for (size_t i = 1; i < site.pages.size(); i += 2) {
      entry.eval_pages.push_back(&site.pages[i]);
    }
    std::fprintf(stderr, "site %-24s model v%lld published (%zu eval pages)\n",
                 site.name.c_str(), static_cast<long long>(*version),
                 entry.eval_pages.size());
    replay.push_back(std::move(entry));
  }
  if (replay.empty()) {
    std::fprintf(stderr, "no site trained a model; nothing to serve\n");
    return 1;
  }

  // --- Build the request stream: interleave sites, repeat the crawl. -----
  struct ReplayRequest {
    const ReplaySite* site;
    const synth::GeneratedPage* page;
    bool unknown_site = false;
  };
  std::vector<ReplayRequest> stream;
  size_t max_pages = 0;
  for (const ReplaySite& site : replay) {
    max_pages = std::max(max_pages, site.eval_pages.size());
  }
  for (int r = 0; r < options.repeat; ++r) {
    for (size_t i = 0; i < max_pages; ++i) {
      for (const ReplaySite& site : replay) {
        if (i < site.eval_pages.size()) {
          stream.push_back(ReplayRequest{&site, site.eval_pages[i], false});
        }
      }
      // Every 16th slot asks for a site nobody ever published.
      if (i % 16 == 0) {
        stream.push_back(
            ReplayRequest{&replay.front(), replay.front().eval_pages[0],
                          true});
      }
    }
  }

  serve::ExtractionServiceConfig service_config;
  service_config.worker_threads = options.threads;
  service_config.max_queue = stream.size() + 1;
  serve::ExtractionService service(&registry, service_config);
  Status started = service.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }

  std::fprintf(stderr,
               "replaying %zu requests over %zu sites "
               "(%d workers, %d closed-loop clients)\n",
               stream.size(), replay.size(), options.threads,
               options.clients);

  // --- Replay: closed-loop clients, mid-stream hot-swap. -----------------
  const std::string swap_site = replay.front().name;
  std::atomic<size_t> next_request{0};
  std::atomic<size_t> resolved{0};
  std::atomic<int64_t> ok_count{0};
  std::atomic<int64_t> typed_shed_count{0};
  std::atomic<int64_t> untyped_failures{0};
  std::atomic<int64_t> unknown_ok{0};
  std::atomic<int64_t> swapped_version_seen{0};
  std::atomic<bool> swap_published{false};
  std::atomic<size_t> unresolved_at_swap{0};
  // Signaled by whichever client resolves the request that crosses the
  // half-stream mark; the swapper blocks on it instead of polling.
  const size_t swap_threshold = stream.size() / 2;
  std::promise<void> half_resolved;
  std::future<void> half_resolved_ready = half_resolved.get_future();
  std::atomic<bool> half_signaled{false};
  if (swap_threshold == 0 && !half_signaled.exchange(true)) {
    half_resolved.set_value();
  }
  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(options.clients));

  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      for (;;) {
        const size_t index = next_request.fetch_add(1);
        if (index >= stream.size()) return;
        const ReplayRequest& replay_request = stream[index];
        serve::ServeRequest request;
        request.site = replay_request.unknown_site ? "unpublished.example"
                                                   : replay_request.site->name;
        request.html = replay_request.page->html;
        request.url = replay_request.page->url;
        const Clock::time_point start = Clock::now();
        serve::ServeResult result = service.Submit(std::move(request)).get();
        latencies[static_cast<size_t>(c)].push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - start)
                .count());
        if (resolved.fetch_add(1) + 1 >= swap_threshold &&
            !half_signaled.exchange(true)) {
          half_resolved.set_value();
        }
        if (result.status.ok()) {
          ok_count.fetch_add(1);
          if (replay_request.unknown_site) unknown_ok.fetch_add(1);
          if (!replay_request.unknown_site &&
              replay_request.site->name == swap_site &&
              result.diagnostics.model_version >= 2) {
            swapped_version_seen.fetch_add(1);
          }
        } else if (result.diagnostics.shed_cause !=
                   serve::ShedCause::kNone) {
          typed_shed_count.fetch_add(1);
          if (replay_request.unknown_site) {
            if (result.status.code() != StatusCode::kNotFound) {
              untyped_failures.fetch_add(1);
            }
          }
        } else {
          untyped_failures.fetch_add(1);
        }
      }
    });
  }
  // The hot-swap: once half the stream resolved, retrain-and-publish the
  // first site. In-flight extractions finish on v1; later ones see v2.
  std::thread swapper([&] {
    half_resolved_ready.wait();
    Result<int64_t> version = registry.Publish(swap_site, swap_model);
    if (version.ok()) {
      unresolved_at_swap.store(stream.size() - resolved.load());
      swap_published.store(true);
      std::fprintf(stderr, "hot-swapped %s to v%lld mid-stream\n",
                   swap_site.c_str(), static_cast<long long>(*version));
    }
  });
  for (std::thread& client : clients) client.join();
  swapper.join();
  const double wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          Clock::now() - t0)
          .count();
  service.Stop();

  // --- Report. -----------------------------------------------------------
  std::vector<int64_t> all_latencies;
  for (const std::vector<int64_t>& client_latencies : latencies) {
    all_latencies.insert(all_latencies.end(), client_latencies.begin(),
                         client_latencies.end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  const serve::ServiceStats stats = service.stats();
  const serve::RegistryStats registry_stats = registry.stats();

  std::printf("requests   %zu\n", stream.size());
  std::printf("wall       %.3f s\n", wall_seconds);
  std::printf("qps        %.1f\n",
              static_cast<double>(stream.size()) / wall_seconds);
  std::printf("latency    p50 %lld us   p95 %lld us   p99 %lld us\n",
              static_cast<long long>(Percentile(&all_latencies, 0.50)),
              static_cast<long long>(Percentile(&all_latencies, 0.95)),
              static_cast<long long>(Percentile(&all_latencies, 0.99)));
  std::printf("ok         %lld\n",
              static_cast<long long>(ok_count.load()));
  std::fputs(stats.Summary().c_str(), stdout);
  std::printf("registry   hits %lld  misses %lld  loads %lld  "
              "hot_swaps %lld  evictions %lld\n",
              static_cast<long long>(registry_stats.hits),
              static_cast<long long>(registry_stats.misses),
              static_cast<long long>(registry_stats.loads),
              static_cast<long long>(registry_stats.hot_swaps),
              static_cast<long long>(registry_stats.evictions));
  std::printf("--- metrics dump ---\n%s",
              obs::MetricsRegistry::Default().ToPrometheusText().c_str());

  // --- Invariants. -------------------------------------------------------
  Require(resolved.load() == stream.size(), "every request resolves");
  Require(stats.completed + stats.total_shed() ==
              static_cast<int64_t>(stream.size()),
          "service accounting is exact (completed + shed == submitted)");
  Require(untyped_failures.load() == 0,
          "every failure carries a typed shed cause");
  Require(unknown_ok.load() == 0,
          "the unpublished site never serves a model");
  Require(stats.shed[static_cast<int>(
              serve::ShedCause::kModelLoadFailed)] > 0,
          "unpublished-site requests shed as kModelLoadFailed");
  Require(ok_count.load() == stats.completed,
          "client-observed successes match service accounting");
  Require(swap_published.load(), "the mid-stream hot-swap published");
  // Only assert v2 sightings if a meaningful tail of traffic remained
  // when the swap landed (tiny streams can drain before the publish).
  if (swap_published.load() &&
      unresolved_at_swap.load() > replay.size() * 4) {
    Require(swapped_version_seen.load() > 0,
            "post-swap responses carry the new model version");
  }
  Require(registry_stats.hits > registry_stats.misses,
          "warm cache dominates after the cold loads");

  if (g_violations > 0) {
    std::fprintf(stderr, "%d invariant(s) violated\n", g_violations);
    return 1;
  }
  std::fprintf(stderr, "all serving invariants hold\n");
  return 0;
}
