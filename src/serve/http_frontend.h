#ifndef CERES_SERVE_HTTP_FRONTEND_H_
#define CERES_SERVE_HTTP_FRONTEND_H_

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "net/http_server.h"
#include "serve/sharded_service.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/sync.h"

namespace ceres::serve {

/// Stable JSON rendering of one extraction outcome; the single source of
/// truth for the HTTP response body. Exposed so tests can assert that a
/// loopback response is byte-identical to encoding a direct
/// ExtractionService::Submit result.
std::string EncodeServeResultJson(const std::string& site,
                                  const ServeResult& result);

/// The HTTP status expressing `code` (kInvalidArgument -> 400,
/// kNotFound -> 404, kResourceExhausted -> 503, ...).
int HttpStatusForCode(StatusCode code);

struct FrontendConfig {
  net::HttpServerConfig http;
  /// Threads resolving extraction futures into HTTP responses. The event
  /// loop never blocks on extraction; these do.
  int completion_threads = 2;
  /// Bound on completions waiting for a pump thread; beyond it requests
  /// are shed with 503 (the service's own queue bound applies upstream).
  size_t max_pending_completions = 2048;
};

/// The HTTP front-end: routes requests into a ShardedExtractionService
/// and pumps completed futures back out as JSON responses.
///
/// Endpoints:
///   POST /extract?site=S[&url=U]  body: page HTML -> extraction JSON
///   GET  /healthz                 liveness probe
///   GET  /metrics                 Prometheus text exposition
///   GET  /stats                   service + cache + server stats JSON
///   POST /admin/invalidate?site=S drop warm model + cached extractions
///   POST /admin/drain             request graceful drain (202; the
///                                 process owner performs the drain)
///
/// The event loop hands parsed requests to Route(); /extract submissions
/// enqueue their future for the completion pump (a small thread pool whose
/// only job is future.get() -> Responder.Send), so slow extractions never
/// occupy the loop. Drain order for a clean exit: HttpServer::Drain (stop
/// accepting, finish in-flight sockets) happens while the pump and service
/// keep running, so every admitted request still completes; then Stop()
/// tears down the pump.
class ExtractionFrontend {
 public:
  ExtractionFrontend(ShardedExtractionService* service,
                     FrontendConfig config = {});
  ~ExtractionFrontend();

  ExtractionFrontend(const ExtractionFrontend&) = delete;
  ExtractionFrontend& operator=(const ExtractionFrontend&) = delete;

  /// Starts the completion pump and the HTTP server.
  Status Start();

  /// Graceful drain of the socket edge (see HttpServer::Drain), then
  /// drains the completion queue. After this every accepted request has
  /// been answered and flushed.
  Status Drain(Deadline deadline = Deadline());

  /// Hard stop: shuts the server, joins the pump.
  void Stop();

  uint16_t port() const { return server_->port(); }
  net::HttpServerStats server_stats() const { return server_->stats(); }

  /// True once POST /admin/drain was received; the process owner polls or
  /// waits on this to run Drain()+Stop() from the main thread.
  bool drain_requested() const;
  /// Blocks until drain_requested() or `deadline`.
  void WaitForDrainRequest(Deadline deadline = Deadline());

 private:
  struct PendingCompletion {
    std::future<ServeResult> future;
    net::HttpServer::Responder responder;
    std::string site;
  };

  void Route(net::HttpRequest request, net::HttpServer::Responder responder);
  void HandleExtract(net::HttpRequest request,
                     net::HttpServer::Responder responder);
  void PumpLoop();

  ShardedExtractionService* const service_;
  const FrontendConfig config_;
  std::unique_ptr<net::HttpServer> server_;

  mutable CheckedMutex mu_{"ExtractionFrontend.mu"};
  CondVar work_ready_;
  CondVar queue_idle_;
  std::deque<PendingCompletion> pending_ CERES_GUARDED_BY(mu_);
  /// Slots claimed by requests admitted but not yet submitted to the
  /// service; counted against max_pending_completions so a burst cannot
  /// overshoot the bound between the admission check and the push.
  size_t reserved_ CERES_GUARDED_BY(mu_) = 0;
  /// Completions a pump thread is currently resolving; drain waits for
  /// pending_ and this to both reach zero.
  int inflight_ CERES_GUARDED_BY(mu_) = 0;
  bool stopping_ CERES_GUARDED_BY(mu_) = false;
  bool drain_requested_ CERES_GUARDED_BY(mu_) = false;
  std::vector<std::thread> pump_;
  bool started_ = false;
};

}  // namespace ceres::serve

#endif  // CERES_SERVE_HTTP_FRONTEND_H_
