// Domain scenario: harvesting facts from long-tail, multi-lingual movie
// websites with one shared seed KB — the §5.5 CommonCrawl experiment in
// miniature. Demonstrates the headline capability: extracting facts about
// entities the seed KB has never heard of.

#include <cstdio>
#include <set>
#include <string>

#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "synth/corpora.h"
#include "synth/truth.h"
#include "text/normalize.h"

int main() {
  using namespace ceres;  // NOLINT(build/namespaces)

  std::printf("Building the 33-site long-tail corpus...\n");
  synth::Corpus corpus = synth::MakeLongTailCorpus(/*scale=*/0.4);

  // A representative slice: a mainstream site, three non-English sites,
  // a quirky one, and a degenerate chart-only one.
  const std::set<std::string> chosen{
      "themoviedb.org",  "kinobox.cz",       "danksefilm.com",
      "filmitalia.org",  "spicyonion.com",   "boxofficemojo.com"};

  eval::TableReport table({"Site", "Pages", "Annotated", "Extractions",
                           "Precision", "New entities"});
  int64_t total_new_entities = 0;
  for (const synth::SyntheticSite& site : corpus.sites) {
    if (chosen.count(site.name) == 0) continue;
    std::vector<DomDocument> pages;
    for (const synth::GeneratedPage& page : site.pages) {
      pages.push_back(std::move(ParseHtml(page.html)).value());
    }
    eval::SiteTruth truth = synth::BuildSiteTruth(site.pages, pages);

    PipelineConfig config;
    Result<PipelineResult> result =
        RunPipeline(pages, corpus.seed_kb, config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", site.name.c_str(),
                   result.status().ToString().c_str());
      continue;
    }

    // Count extracted subjects/objects absent from the seed KB — the
    // paper's "1:3.22 annotated to extracted entities" capability.
    std::set<std::string> new_entities;
    int64_t relation_extractions = 0;
    for (const Extraction& extraction : result->extractions) {
      if (extraction.predicate == kNamePredicate) continue;
      ++relation_extractions;
      for (const std::string* text : {&extraction.subject,
                                      &extraction.object}) {
        if (corpus.seed_kb.MatchMentions(*text).empty()) {
          new_entities.insert(NormalizeText(*text));
        }
      }
    }
    total_new_entities += static_cast<int64_t>(new_entities.size());

    eval::ScoreOptions options;
    options.confidence_threshold = 0.5;
    eval::Prf prf = eval::ScoreExtractions(result->extractions, truth,
                                           options);
    table.AddRow({site.name, std::to_string(pages.size()),
                  std::to_string(result->annotated_pages.size()),
                  std::to_string(relation_extractions),
                  eval::RatioOrNa(relation_extractions > 0,
                                  prf.precision()),
                  std::to_string(new_entities.size())});
  }
  table.Print();
  std::printf(
      "\nDiscovered %lld entity names absent from the seed KB — distant "
      "supervision pays for itself on the long tail. The chart-only site "
      "correctly yields nothing.\n",
      static_cast<long long>(total_new_entities));
  return 0;
}
