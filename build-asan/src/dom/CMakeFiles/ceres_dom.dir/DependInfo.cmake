
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dom/dom_tree.cc" "src/dom/CMakeFiles/ceres_dom.dir/dom_tree.cc.o" "gcc" "src/dom/CMakeFiles/ceres_dom.dir/dom_tree.cc.o.d"
  "/root/repo/src/dom/dom_utils.cc" "src/dom/CMakeFiles/ceres_dom.dir/dom_utils.cc.o" "gcc" "src/dom/CMakeFiles/ceres_dom.dir/dom_utils.cc.o.d"
  "/root/repo/src/dom/html_parser.cc" "src/dom/CMakeFiles/ceres_dom.dir/html_parser.cc.o" "gcc" "src/dom/CMakeFiles/ceres_dom.dir/html_parser.cc.o.d"
  "/root/repo/src/dom/html_serializer.cc" "src/dom/CMakeFiles/ceres_dom.dir/html_serializer.cc.o" "gcc" "src/dom/CMakeFiles/ceres_dom.dir/html_serializer.cc.o.d"
  "/root/repo/src/dom/xpath.cc" "src/dom/CMakeFiles/ceres_dom.dir/xpath.cc.o" "gcc" "src/dom/CMakeFiles/ceres_dom.dir/xpath.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/ceres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
