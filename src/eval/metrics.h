#ifndef CERES_EVAL_METRICS_H_
#define CERES_EVAL_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "core/types.h"
#include "dom/dom_tree.h"
#include "kb/knowledge_base.h"

namespace ceres::eval {

/// Node-level ground truth of one parsed page: the generator's XPath labels
/// resolved against the parsed DOM.
struct PageTruth {
  EntityId topic = kInvalidEntity;  // World id.
  std::string topic_name;
  NodeId topic_node = kInvalidNode;
  /// Facts asserted by the page: (node, predicate, object text).
  struct Fact {
    NodeId node = kInvalidNode;
    PredicateId predicate = kInvalidPredicate;
    std::string object_text;
  };
  std::vector<Fact> facts;

  bool Asserts(NodeId node, PredicateId predicate) const;
};

/// Ground truth for a whole site, parallel to the parsed page vector.
/// eval/ only consumes this structure; producing one from a labeled
/// source is the producer's job (synth::BuildSiteTruth resolves generator
/// XPath labels against parsed DOMs — the scoring layer stays independent
/// of where truth comes from, so real hand-labeled corpora can feed the
/// same metrics).
struct SiteTruth {
  std::vector<PageTruth> pages;

  /// Labels whose XPaths failed to resolve against the parsed DOM (the
  /// producer drops them but counts them here).
  int64_t unresolved = 0;
};

/// Precision/recall/F1 with raw counts.
struct Prf {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;
  double precision() const {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) /
                                    static_cast<double>(tp + fp);
  }
  double recall() const {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) /
                                    static_cast<double>(tp + fn);
  }
  double f1() const {
    double p = precision();
    double r = recall();
    return p + r == 0 ? 0.0 : 2 * p * r / (p + r);
  }
  Prf& operator+=(const Prf& other) {
    tp += other.tp;
    fp += other.fp;
    fn += other.fn;
    return *this;
  }
};

/// Options for extraction scoring.
struct ScoreOptions {
  /// Only count these predicates (empty = all predicates present in the
  /// truth or extractions). NAME is scored when kNamePredicate is listed or
  /// the filter is empty.
  std::vector<PredicateId> predicates;
  /// Restrict pages scored (empty = all). Used for the eval-half split.
  std::vector<PageIndex> pages;
  /// Extractions below this confidence are ignored.
  double confidence_threshold = 0.0;
  /// Require the extraction subject to match the page's true topic name
  /// (it always should; disable to score object placement only).
  bool check_subject = true;
};

/// Mention-level scoring (Tables 4, 5): every extraction is judged against
/// the node-level truth; recall counts every asserted fact.
Prf ScoreExtractions(const std::vector<Extraction>& extractions,
                     const SiteTruth& truth, const ScoreOptions& options = {});

/// Per-predicate breakdown of ScoreExtractions (kNamePredicate included).
std::map<PredicateId, Prf> ScoreExtractionsByPredicate(
    const std::vector<Extraction>& extractions, const SiteTruth& truth,
    const ScoreOptions& options = {});

/// Page-hit scoring following Hao et al. (Table 3): per page and predicate
/// the system's single highest-confidence extraction scores a hit when it
/// lands on a node asserting that predicate.
Prf ScorePageHits(const std::vector<Extraction>& extractions,
                  const SiteTruth& truth, const ScoreOptions& options = {});

/// Annotation scoring (Table 6). Precision: fraction of annotations whose
/// node truly asserts the predicate. Recall: fraction of page-asserted
/// facts that are also in the seed KB (i.e. annotatable) which received a
/// correct annotation.
Prf ScoreAnnotations(const std::vector<Annotation>& annotations,
                     const SiteTruth& truth, const KnowledgeBase& seed_kb,
                     const std::vector<PageIndex>& pages = {});
std::map<PredicateId, Prf> ScoreAnnotationsByPredicate(
    const std::vector<Annotation>& annotations, const SiteTruth& truth,
    const KnowledgeBase& seed_kb, const std::vector<PageIndex>& pages = {});

/// True when the extraction's subject string names the page's true topic
/// (normalized comparison, tolerating a trailing "(YYYY)" disambiguation
/// year as rendered by many film sites).
bool SubjectMatchesTruth(const Extraction& extraction,
                         const PageTruth& truth);

/// Topic-identification scoring (Table 7): a prediction is correct when the
/// predicted seed-KB entity's name matches the page's true topic name.
/// Recall counts pages whose true topic name exists in the seed KB.
Prf ScoreTopics(const std::vector<EntityId>& predicted_topic,
                const SiteTruth& truth, const KnowledgeBase& seed_kb,
                const std::vector<PageIndex>& pages = {});

}  // namespace ceres::eval

#endif  // CERES_EVAL_METRICS_H_
