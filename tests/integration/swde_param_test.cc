// Parameterized property sweep over the four SWDE-style verticals: for
// every vertical, the full pipeline must reach the quality band the paper
// establishes, and core invariants (ground truth resolvable, extraction
// determinism, confidence monotonicity) must hold.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "eval/metrics.h"
#include "synth/corpora.h"
#include "synth/truth.h"

namespace ceres {
namespace {

struct VerticalCase {
  synth::SwdeVertical vertical;
  // Quality floor for the aggregate page-hit F1 over the KB-covered
  // predicates at tiny scale (well below the full-scale numbers, but the
  // property must hold even on small corpora).
  double min_f1;
};

std::string CaseName(const ::testing::TestParamInfo<VerticalCase>& info) {
  std::string name = synth::SwdeVerticalName(info.param.vertical);
  name.erase(std::remove(name.begin(), name.end(), ' '), name.end());
  return name;
}

class SwdeVerticalTest : public ::testing::TestWithParam<VerticalCase> {
 protected:
  static constexpr double kScale = 0.25;

  struct SiteRun {
    std::vector<DomDocument> pages;
    eval::SiteTruth truth;
    PipelineResult result;
    std::vector<PageIndex> eval_pages;
  };

  // Runs the pipeline over the first few sites of the vertical's corpus.
  std::vector<SiteRun> RunVertical(const synth::Corpus& corpus,
                                   size_t max_sites) {
    std::vector<SiteRun> runs;
    for (size_t s = 0; s < std::min(max_sites, corpus.sites.size()); ++s) {
      SiteRun run;
      for (const synth::GeneratedPage& page : corpus.sites[s].pages) {
        Result<DomDocument> parsed = ParseHtml(page.html);
        EXPECT_TRUE(parsed.ok());
        run.pages.push_back(std::move(parsed).value());
      }
      run.truth = synth::BuildSiteTruth(corpus.sites[s].pages, run.pages);
      EXPECT_EQ(run.truth.unresolved, 0) << corpus.sites[s].name;
      PipelineConfig config;
      for (size_t i = 0; i < run.pages.size(); ++i) {
        (i % 2 == 0 ? config.annotation_pages : config.extraction_pages)
            .push_back(static_cast<PageIndex>(i));
      }
      run.eval_pages = config.extraction_pages;
      config.extraction.confidence_threshold = 0.0;
      Result<PipelineResult> result =
          RunPipeline(run.pages, corpus.seed_kb, config);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      run.result = std::move(result).value();
      runs.push_back(std::move(run));
    }
    return runs;
  }
};

TEST_P(SwdeVerticalTest, PipelineMeetsQualityFloor) {
  synth::Corpus corpus = synth::MakeSwdeCorpus(GetParam().vertical, kScale);
  std::vector<PredicateId> predicates{kNamePredicate};
  for (const std::string& name : corpus.eval_predicates) {
    PredicateId id = *corpus.seed_kb.ontology().PredicateByName(name);
    // Only KB-covered predicates (e.g. MPAA rating is not).
    for (const Triple& triple : corpus.seed_kb.triples()) {
      if (triple.predicate == id) {
        predicates.push_back(id);
        break;
      }
    }
  }
  eval::Prf total;
  for (const SiteRun& run : RunVertical(corpus, 3)) {
    eval::ScoreOptions options;
    options.pages = run.eval_pages;
    options.predicates = predicates;
    options.confidence_threshold = 0.5;
    total += eval::ScorePageHits(run.result.extractions, run.truth,
                                 options);
  }
  EXPECT_GT(total.f1(), GetParam().min_f1)
      << "tp=" << total.tp << " fp=" << total.fp << " fn=" << total.fn;
}

TEST_P(SwdeVerticalTest, ExtractionsRespectConfidenceMonotonicity) {
  synth::Corpus corpus = synth::MakeSwdeCorpus(GetParam().vertical, kScale);
  for (const SiteRun& run : RunVertical(corpus, 2)) {
    eval::ScoreOptions low;
    low.pages = run.eval_pages;
    low.confidence_threshold = 0.5;
    eval::ScoreOptions high = low;
    high.confidence_threshold = 0.9;
    eval::Prf at_low =
        eval::ScoreExtractions(run.result.extractions, run.truth, low);
    eval::Prf at_high =
        eval::ScoreExtractions(run.result.extractions, run.truth, high);
    // Volume can only shrink as the threshold rises.
    EXPECT_LE(at_high.tp + at_high.fp, at_low.tp + at_low.fp);
  }
}

TEST_P(SwdeVerticalTest, AnnotationsLandOnAnnotationPagesOnly) {
  synth::Corpus corpus = synth::MakeSwdeCorpus(GetParam().vertical, kScale);
  for (const SiteRun& run : RunVertical(corpus, 2)) {
    for (const Annotation& annotation : run.result.annotations) {
      EXPECT_EQ(annotation.page % 2, 0);
    }
    for (const Extraction& extraction : run.result.extractions) {
      EXPECT_EQ(extraction.page % 2, 1);
    }
  }
}

TEST_P(SwdeVerticalTest, AtMostOneNameExtractionPerPage) {
  synth::Corpus corpus = synth::MakeSwdeCorpus(GetParam().vertical, kScale);
  for (const SiteRun& run : RunVertical(corpus, 2)) {
    std::map<PageIndex, int> names;
    for (const Extraction& extraction : run.result.extractions) {
      if (extraction.predicate == kNamePredicate) {
        ++names[extraction.page];
      }
    }
    for (const auto& [page, count] : names) EXPECT_EQ(count, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVerticals, SwdeVerticalTest,
    ::testing::Values(VerticalCase{synth::SwdeVertical::kMovie, 0.7},
                      VerticalCase{synth::SwdeVertical::kNbaPlayer, 0.8},
                      VerticalCase{synth::SwdeVertical::kUniversity, 0.7},
                      VerticalCase{synth::SwdeVertical::kBook, 0.5}),
    CaseName);

}  // namespace
}  // namespace ceres
