file(REMOVE_RECURSE
  "CMakeFiles/synth_test.dir/synth/corpora_test.cc.o"
  "CMakeFiles/synth_test.dir/synth/corpora_test.cc.o.d"
  "CMakeFiles/synth_test.dir/synth/kb_builder_test.cc.o"
  "CMakeFiles/synth_test.dir/synth/kb_builder_test.cc.o.d"
  "CMakeFiles/synth_test.dir/synth/names_test.cc.o"
  "CMakeFiles/synth_test.dir/synth/names_test.cc.o.d"
  "CMakeFiles/synth_test.dir/synth/quirks_test.cc.o"
  "CMakeFiles/synth_test.dir/synth/quirks_test.cc.o.d"
  "CMakeFiles/synth_test.dir/synth/site_generator_test.cc.o"
  "CMakeFiles/synth_test.dir/synth/site_generator_test.cc.o.d"
  "CMakeFiles/synth_test.dir/synth/world_test.cc.o"
  "CMakeFiles/synth_test.dir/synth/world_test.cc.o.d"
  "synth_test"
  "synth_test.pdb"
  "synth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
