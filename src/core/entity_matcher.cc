#include "core/entity_matcher.h"

namespace ceres {

PageMentions MatchPageMentions(const DomDocument& page,
                               const KnowledgeBase& kb) {
  PageMentions out;
  for (NodeId id : page.TextFields()) {
    std::vector<EntityId> ids = kb.MatchMentions(page.node(id).text);
    if (ids.empty()) continue;
    out.fields.push_back(id);
    for (EntityId entity : ids) {
      out.page_set.insert(entity);
      out.mentions_of[entity].push_back(id);
    }
    out.candidates.push_back(std::move(ids));
  }
  return out;
}

}  // namespace ceres
