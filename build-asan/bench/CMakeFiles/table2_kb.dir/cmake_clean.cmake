file(REMOVE_RECURSE
  "CMakeFiles/table2_kb.dir/table2_kb.cc.o"
  "CMakeFiles/table2_kb.dir/table2_kb.cc.o.d"
  "table2_kb"
  "table2_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
