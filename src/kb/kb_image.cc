#include "kb/kb_image.h"

#include <cstdio>
#include <fstream>
#include <utility>

#include "util/string_util.h"

namespace ceres {

namespace {

/// Section payloads are padded to 8-byte boundaries so every record array
/// starts aligned in the file (mmap bases are page-aligned).
constexpr size_t kSectionAlign = 8;

size_t AlignUp(size_t n) {
  return (n + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

uint64_t ChecksumBytes(const char* data, size_t size) {
  return Fnv1a64(std::string_view(data, size));
}

/// The header checksum covers the header with its own field zeroed.
uint64_t HeaderChecksum(KbImageHeader header) {
  header.header_checksum = 0;
  return ChecksumBytes(reinterpret_cast<const char*>(&header),
                       sizeof(header));
}

Status Corrupt(std::string msg) { return Status::DataLoss(std::move(msg)); }

}  // namespace

KbStringRef KbImageBuilder::AddString(std::string_view text) {
  std::vector<char>& blob = sections_[kKbSectionStrings];
  KbStringRef ref;
  ref.offset = blob.size();
  ref.length = text.size();
  blob.insert(blob.end(), text.begin(), text.end());
  return ref;
}

std::vector<char> KbImageBuilder::Serialize() const {
  KbImageHeader header;
  std::memcpy(header.magic, kKbImageMagic, sizeof(header.magic));
  header.version = kKbImageVersion;
  header.section_count = kKbImageSectionCount;

  size_t cursor = sizeof(KbImageHeader);
  for (uint32_t i = 0; i < kKbImageSectionCount; ++i) {
    header.sections[i].offset = cursor;
    header.sections[i].bytes = sections_[i].size();
    cursor = AlignUp(cursor + sections_[i].size());
  }
  header.file_bytes = cursor;

  std::vector<char> image(cursor, '\0');
  for (uint32_t i = 0; i < kKbImageSectionCount; ++i) {
    std::memcpy(image.data() + header.sections[i].offset,
                sections_[i].data(), sections_[i].size());
  }
  header.payload_checksum =
      ChecksumBytes(image.data() + sizeof(KbImageHeader),
                    image.size() - sizeof(KbImageHeader));
  header.header_checksum = HeaderChecksum(header);
  std::memcpy(image.data(), &header, sizeof(header));
  return image;
}

Status KbImage::Validate(bool verify_payload) const {
  if (size_ < sizeof(KbImageHeader)) {
    return Corrupt(StrCat("image too short for header: ", size_,
                          " bytes, need ", sizeof(KbImageHeader)));
  }
  // The header is read through memcpy-compatible struct access on the
  // mapped bytes; the mapping base is page-aligned so this is aligned.
  const KbImageHeader& header = this->header();
  if (std::memcmp(header.magic, kKbImageMagic, sizeof(header.magic)) != 0) {
    return Corrupt("bad magic: not a CERES KB image");
  }
  if (header.version != kKbImageVersion) {
    return Corrupt(StrCat("unsupported image version ", header.version,
                          " (expected ", kKbImageVersion, ")"));
  }
  if (header.section_count != kKbImageSectionCount) {
    return Corrupt(StrCat("section count ", header.section_count,
                          " != ", kKbImageSectionCount));
  }
  if (header.file_bytes != size_) {
    return Corrupt(StrCat("file is ", size_, " bytes but header says ",
                          header.file_bytes, " (truncated or padded)"));
  }
  if (HeaderChecksum(header) != header.header_checksum) {
    return Corrupt("header checksum mismatch");
  }
  uint64_t expected_offset = sizeof(KbImageHeader);
  for (uint32_t i = 0; i < kKbImageSectionCount; ++i) {
    const KbImageSection& s = header.sections[i];
    if (s.offset != expected_offset) {
      return Corrupt(StrCat("section ", i, " offset ", s.offset,
                            " != expected ", expected_offset));
    }
    if (s.offset % kSectionAlign != 0) {
      return Corrupt(StrCat("section ", i, " misaligned at ", s.offset));
    }
    if (s.offset + s.bytes > size_) {
      return Corrupt(StrCat("section ", i, " overruns file: offset ",
                            s.offset, " + ", s.bytes, " > ", size_));
    }
    expected_offset = AlignUp(s.offset + s.bytes);
  }
  if (expected_offset != size_) {
    return Corrupt(StrCat("trailing bytes after last section: ",
                          expected_offset, " != ", size_));
  }
  if (verify_payload) {
    const uint64_t checksum =
        ChecksumBytes(data_ + sizeof(KbImageHeader),
                      size_ - sizeof(KbImageHeader));
    if (checksum != header.payload_checksum) {
      return Corrupt("payload checksum mismatch (corrupt image)");
    }
  }
  return Status::Ok();
}

Status KbImage::VerifyRefs() const {
  const KbImageHeader& header = this->header();
  const uint64_t strings_bytes =
      header.sections[kKbSectionStrings].bytes;
  auto check_ref = [&](KbStringRef ref, const char* what) -> Status {
    if (ref.offset + ref.length > strings_bytes) {
      return Corrupt(StrCat(what, " string ref overruns blob: ",
                            ref.offset, " + ", ref.length, " > ",
                            strings_bytes));
    }
    return Status::Ok();
  };
  for (const KbTypeRecord& type : Section<KbTypeRecord>(kKbSectionTypes)) {
    CERES_RETURN_IF_ERROR(check_ref(type.name, "type"));
  }
  for (const KbPredicateRecord& predicate :
       Section<KbPredicateRecord>(kKbSectionPredicates)) {
    CERES_RETURN_IF_ERROR(check_ref(predicate.name, "predicate"));
  }
  const auto alias_refs = Section<KbStringRef>(kKbSectionAliasRefs);
  for (const KbEntityRecord& entity :
       Section<KbEntityRecord>(kKbSectionEntities)) {
    CERES_RETURN_IF_ERROR(check_ref(entity.name, "entity"));
    if (entity.alias_begin > entity.alias_end ||
        entity.alias_end > alias_refs.size()) {
      return Corrupt(StrCat("entity alias range [", entity.alias_begin,
                            ", ", entity.alias_end, ") overruns ",
                            alias_refs.size(), " alias refs"));
    }
  }
  for (const KbStringRef& alias : alias_refs) {
    CERES_RETURN_IF_ERROR(check_ref(alias, "alias"));
  }
  const auto name_ids = Section<int64_t>(kKbSectionNameIds);
  for (const KbNameKey& key : Section<KbNameKey>(kKbSectionNameKeys)) {
    CERES_RETURN_IF_ERROR(check_ref(key.key, "name key"));
    if (key.ids_begin > key.ids_end || key.ids_end > name_ids.size()) {
      return Corrupt(StrCat("name key id range [", key.ids_begin, ", ",
                            key.ids_end, ") overruns ", name_ids.size(),
                            " ids"));
    }
  }
  for (const KbObjectStringCount& count :
       Section<KbObjectStringCount>(kKbSectionObjectStringCounts)) {
    CERES_RETURN_IF_ERROR(check_ref(count.key, "object count"));
  }
  return Status::Ok();
}

Result<KbImage> KbImage::FromBuffer(std::vector<char> buffer,
                                    bool verify_payload) {
  KbImage image;
  image.owned_ = std::move(buffer);
  image.data_ = image.owned_.data();
  image.size_ = image.owned_.size();
  CERES_RETURN_IF_ERROR(image.Validate(verify_payload));
  return image;
}

Result<KbImage> KbImage::Map(const std::string& path, bool verify_payload) {
  CERES_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  KbImage image;
  image.mapped_ = std::move(file);
  image.data_ = image.mapped_.data();
  image.size_ = image.mapped_.size();
  CERES_RETURN_IF_ERROR(PrependContext(image.Validate(verify_payload),
                                       StrCat("kb image ", path)));
  return image;
}

Status WriteKbImageFile(std::span<const char> image,
                        const std::string& path) {
  const std::string tmp = StrCat(path, ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal(StrCat("cannot open ", tmp, " for write"));
    }
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    if (!out) {
      return Status::Internal(StrCat("short write to ", tmp));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal(StrCat("rename ", tmp, " -> ", path,
                                   " failed"));
  }
  return Status::Ok();
}

}  // namespace ceres
