// kb_load — out-of-core KB serving: image map vs text parse.
//
// Synthesizes knowledge bases at 1x / 10x / 100x scale, writes each one as
// both the portable text format (kb/kb_io.h) and the frozen binary image
// (kb/kb_image.h), then measures for every scale:
//
//   * parse_ms — LoadKbFromFile: read text, build indexes, Freeze();
//   * map_ms   — KnowledgeBase::OpenImage: one mmap + O(1) validation;
//   * worker_rss_parse_kb / worker_rss_map_kb — resident set of a forked
//     worker process that opens the KB by that method and serves queries
//     (the dist/ worker startup path). Mapped workers stay flat: the image
//     pages are clean file-backed pages shared across every worker.
//
// Each sweep point is emitted as a BENCH JSON line:
//
//   BENCH {"bench":"kb_load","scale":10,"entities":...,"parse_ms":...}
//
// Invariants (exit 1 on violation):
//   * the mapped KB answers mention/triple/object queries identically to
//     the heap-frozen KB it was written from, at every scale;
//   * the image reopens under full checksum + string-ref verification.
//
// Usage: kb_load [--smoke] [--persist [path]]
//   --smoke:   1x scale only; wired into tools/tier1.sh.
//   --persist: also write the BENCH lines to BENCH_kb_load.json (or
//              `path`) for a committed result trail.

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "kb/kb_io.h"
#include "kb/knowledge_base.h"
#include "util/string_util.h"

namespace {

using namespace ceres;  // NOLINT(build/namespaces)

int g_violations = 0;

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", what);
    ++g_violations;
  }
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Synthesizes a deterministic KB with `base * scale` entities: films with
// aliased directors/actors and per-film date literals, three triples per
// film — enough string and triple volume to make load costs visible.
KnowledgeBase MakeKb(int scale, int base = 2000) {
  Ontology ontology;
  TypeId film = ontology.AddEntityType("film");
  TypeId person = ontology.AddEntityType("person");
  TypeId date = ontology.AddEntityType("date", /*is_literal=*/true);
  PredicateId directed = ontology.AddPredicate("directedBy", film, person,
                                               /*multi_valued=*/false);
  PredicateId starring = ontology.AddPredicate("starring", film, person,
                                               /*multi_valued=*/true);
  PredicateId released = ontology.AddPredicate("releaseDate", film, date,
                                               /*multi_valued=*/false);

  KnowledgeBase kb(std::move(ontology));
  const int films = base * scale / 2;
  const int people = base * scale / 4;
  std::vector<EntityId> person_ids;
  person_ids.reserve(people);
  for (int i = 0; i < people; ++i) {
    EntityId id =
        kb.AddEntity(person, StrCat("Person Benchmark Name ", i));
    kb.AddAlias(id, StrCat("P. B. Name ", i));
    person_ids.push_back(id);
  }
  for (int i = 0; i < films; ++i) {
    EntityId f = kb.AddEntity(film, StrCat("The Benchmark Picture ", i));
    EntityId d = kb.AddEntity(
        date, StrCat(1950 + i % 70, "-0", 1 + i % 9, "-1", i % 9));
    kb.AddTriple(f, directed, person_ids[i % people]);
    kb.AddTriple(f, starring, person_ids[(i * 7 + 3) % people]);
    kb.AddTriple(f, released, d);
  }
  kb.Freeze();
  return kb;
}

// Resident set size of the calling process, in KiB (Linux /proc/self/statm).
int64_t SelfRssKb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return -1;
  long long size = 0;
  long long resident = 0;
  const int fields = std::fscanf(f, "%lld %lld", &size, &resident);
  std::fclose(f);
  if (fields != 2) return -1;
  return resident * (::sysconf(_SC_PAGESIZE) / 1024);
}

// Forks a worker that opens the KB from `path` (map or parse), touches the
// serving paths, and reports the RSS it *added* doing so back through a
// pipe. The delta (after-open minus before-open) excludes the address
// space inherited copy-on-write from the bench parent, so it is the
// incremental cost of one more worker on the machine: the parsed heap for
// the text path, the faulted-in (shareable, file-backed) image pages for
// the mapped path.
int64_t ForkedWorkerRssKb(const std::string& path, bool map) {
  int fds[2];
  if (::pipe(fds) != 0) return -1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return -1;
  }
  if (pid == 0) {
    ::close(fds[0]);
    int64_t rss = -1;
    const int64_t before = SelfRssKb();
    Result<KnowledgeBase> kb = map ? KnowledgeBase::OpenImage(path)
                                   : LoadKbFromFile(path);
    if (kb.ok() && before >= 0) {
      // Touch the serving paths so the measurement includes real traffic
      // (faulted-in pages for the mapped KB, not just the clean open).
      int64_t sum = 0;
      for (EntityId id = 0; id < kb->num_entities(); id += 97) {
        sum += static_cast<int64_t>(kb->MatchMentionsView(
            kb->entity(id).name).size());
        sum += static_cast<int64_t>(kb->TriplesWithSubject(id).size());
      }
      rss = SelfRssKb() - before + (sum == -12345 ? 1 : 0);  // keep `sum` alive
    }
    const ssize_t written = ::write(fds[1], &rss, sizeof(rss));
    ::close(fds[1]);
    ::_exit(written == sizeof(rss) && rss >= 0 ? 0 : 1);
  }
  ::close(fds[1]);
  int64_t rss = -1;
  const ssize_t got = ::read(fds[0], &rss, sizeof(rss));
  ::close(fds[0]);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  if (got != sizeof(rss) || !WIFEXITED(wstatus) ||
      WEXITSTATUS(wstatus) != 0) {
    return -1;
  }
  return rss;
}

// Spot-check that `mapped` serves identically to `heap` (the full matrix
// lives in tests/kb/kb_image_parity_test.cc; the bench re-checks at every
// sweep scale, where the tests' fixtures are small).
void CheckParity(const KnowledgeBase& heap, const KnowledgeBase& mapped) {
  Require(heap.num_entities() == mapped.num_entities(),
          "mapped KB entity count differs");
  Require(heap.num_triples() == mapped.num_triples(),
          "mapped KB triple count differs");
  for (EntityId id = 0; id < heap.num_entities(); id += 31) {
    const Entity a = heap.entity(id);
    const Entity b = mapped.entity(id);
    Require(a.name == b.name && a.type == b.type,
            "mapped KB entity record differs");
    std::span<const EntityId> ma = heap.MatchMentionsView(a.name);
    std::span<const EntityId> mb = mapped.MatchMentionsView(b.name);
    Require(std::vector<EntityId>(ma.begin(), ma.end()) ==
                std::vector<EntityId>(mb.begin(), mb.end()),
            "mapped KB mention match differs");
    std::span<const Triple> ta = heap.TriplesWithSubject(id);
    std::span<const Triple> tb = mapped.TriplesWithSubject(id);
    Require(std::vector<Triple>(ta.begin(), ta.end()) ==
                std::vector<Triple>(tb.begin(), tb.end()),
            "mapped KB subject triples differ");
  }
}

void RunScale(int scale, bench::BenchJson* json) {
  const std::string text_path =
      StrCat("/tmp/kb_load_", ::getpid(), "_", scale, ".kb");
  const std::string image_path =
      StrCat("/tmp/kb_load_", ::getpid(), "_", scale, ".kbi");

  KnowledgeBase kb = MakeKb(scale);
  Require(SaveKbToFile(kb, text_path).ok(), "text KB save failed");
  Require(kb.SaveImage(image_path).ok(), "image save failed");

  // Probe worker RSS before this process loads further KB copies, to keep
  // the forked children's inherited address space small.
  const int64_t rss_parse = ForkedWorkerRssKb(text_path, /*map=*/false);
  const int64_t rss_map = ForkedWorkerRssKb(image_path, /*map=*/true);
  Require(rss_parse > 0 && rss_map > 0, "forked worker RSS probe failed");

  auto parse_start = std::chrono::steady_clock::now();
  Result<KnowledgeBase> parsed = LoadKbFromFile(text_path);
  const double parse_ms = MsSince(parse_start);
  Require(parsed.ok(), "text KB load failed");

  auto map_start = std::chrono::steady_clock::now();
  Result<KnowledgeBase> mapped = KnowledgeBase::OpenImage(image_path);
  const double map_ms = MsSince(map_start);
  Require(mapped.ok(), "image open failed");

  KnowledgeBase::OpenOptions verify;
  verify.verify_checksum = true;
  Require(KnowledgeBase::OpenImage(image_path, verify).ok(),
          "image failed checksum + ref verification");

  if (mapped.ok()) CheckParity(kb, *mapped);

  json->Emit(StrCat(
      "{\"bench\":\"kb_load\",\"scale\":", scale,
      ",\"entities\":", kb.num_entities(), ",\"triples\":", kb.num_triples(),
      ",\"image_bytes\":", kb.image_bytes().size(),
      ",\"parse_ms\":", parse_ms, ",\"map_ms\":", map_ms,
      ",\"worker_rss_parse_kb\":", rss_parse,
      ",\"worker_rss_map_kb\":", rss_map, "}"));

  ::unlink(text_path.c_str());
  ::unlink(image_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool persist = false;
  std::string persist_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--persist") == 0) {
      persist = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') persist_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: kb_load [--smoke] [--persist [path]]\n");
      return 2;
    }
  }

  bench::BenchJson json("kb_load");
  for (int scale : smoke ? std::vector<int>{1}
                         : std::vector<int>{1, 10, 100}) {
    RunScale(scale, &json);
  }

  if (persist && !json.Persist(persist_path)) ++g_violations;
  if (g_violations > 0) {
    std::fprintf(stderr, "kb_load: %d violation(s)\n", g_violations);
    return 1;
  }
  std::printf("kb_load: OK\n");
  return 0;
}
