// serve_qps — end-to-end QPS/latency of the network serving front-end.
//
// Stands up the full serving stack in one process — the sharded
// ExtractionService tier behind the epoll HTTP server, fronted by the
// simhash near-duplicate page cache — and drives it over loopback with
// closed-loop HttpClient pools, one phase per serving regime:
//
//   cold:             first pass over the crawl on keep-alive
//                     connections; pages miss the cache and pay the
//                     full parse+inference path (template near-dups may
//                     still hit — the observed hit rate is reported);
//   warm_keepalive:   the identical byte stream replayed on keep-alive
//                     connections; every page is an exact-fingerprint
//                     near-dup hit and skips parse+inference entirely;
//   warm_per_request: the same warm stream, but the client closes and
//                     reconnects around every request — isolating the
//                     keep-alive win at equal server work;
//   ratelimited:      a burst against a second front-end with a tight
//                     token bucket; excess requests shed with 429.
//
// Each phase emits one machine-readable line, with latency percentiles
// read from the server-side obs histogram (ceres_net_request_us, reset
// per phase) and cache hit rates from the shared NearDupCache:
//
//   BENCH {"bench":"serve_qps","phase":"cold","qps":...,"p50_us":...,
//          "cache_hit_rate":...,"status_200":...,"shed_rate_limited":0}
//
// Invariants (exit 1 on violation):
//   * every serving-phase request gets HTTP 200, with zero transport
//     errors, and the socket edge accounts exactly (requests ==
//     responses, nothing dropped) after the drain;
//   * the warm replay is all cache hits (exact fingerprints) and beats
//     the cold pass's QPS — the near-dup cache earns the skipped
//     parse+inference;
//   * keep-alive beats connection-per-request QPS at equal server work;
//   * the rate-limited burst sheds at least one request, and the
//     server's rate_limited counter equals the client-observed 429s.
//
// Usage: serve_qps [--smoke] [--persist]
//   --smoke:   reduced corpus scale and request counts; wired into
//              tools/tier1.sh.
//   --persist: rewrite the BENCH lines to BENCH_serve_qps.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "net/http_client.h"
#include "obs/metrics.h"
#include "serve/http_frontend.h"
#include "serve/sharded_service.h"
#include "synth/corpora.h"
#include "util/string_util.h"

namespace {

using namespace ceres;  // NOLINT(build/namespaces)

int g_violations = 0;

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", what);
    ++g_violations;
  }
}

/// One request of the replay stream: a site and a page body.
struct Work {
  const std::string* site;
  const std::string* html;
};

struct PhaseOutcome {
  double qps = 0;
  double wall_seconds = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  int64_t samples = 0;
  std::map<int, int64_t> statuses;
  int64_t transport_errors = 0;
  int64_t cache_hits = 0, cache_misses = 0;
  double cache_hit_rate = 0;
};

/// Drives `requests` closed-loop requests (wrapping over `stream`)
/// through `clients` connections against the front-end on `port`. The
/// obs registry is reset on entry so the latency percentiles read back
/// describe only this phase; cache hit/miss deltas come from the
/// service's own stats.
PhaseOutcome RunPhase(uint16_t port, const std::vector<Work>& stream,
                      int clients, int requests, bool per_request,
                      serve::ShardedExtractionService* service) {
  obs::MetricsRegistry::Default().Reset();
  const serve::ShardedServiceStats before = service->stats();

  std::atomic<int> next{0};
  std::atomic<int64_t> transport_errors{0};
  std::vector<std::map<int, int64_t>> status_counts(
      static_cast<size_t>(clients));
  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> pool;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      net::HttpClient client("127.0.0.1", port);
      for (;;) {
        const int index = next.fetch_add(1);
        if (index >= requests) break;
        const Work& work =
            stream[static_cast<size_t>(index) % stream.size()];
        net::HttpRequest request;
        request.method = "POST";
        request.target = StrCat("/extract?site=", *work.site);
        request.version = "HTTP/1.1";
        request.body = *work.html;
        Result<net::HttpResponse> response = client.Roundtrip(request);
        if (!response.ok()) {
          transport_errors.fetch_add(1);
          client.Close();
          continue;
        }
        ++status_counts[static_cast<size_t>(c)][response->status];
        if (per_request) client.Close();
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          Clock::now() - t0)
          .count();

  PhaseOutcome outcome;
  outcome.wall_seconds = wall;
  outcome.qps = static_cast<double>(requests) / wall;
  obs::Histogram* request_us =
      obs::MetricsRegistry::Default().GetHistogram("ceres_net_request_us");
  outcome.p50 = request_us->Percentile(0.50);
  outcome.p95 = request_us->Percentile(0.95);
  outcome.p99 = request_us->Percentile(0.99);
  outcome.samples = request_us->Count();
  for (const std::map<int, int64_t>& per_client : status_counts) {
    for (const auto& [status, count] : per_client) {
      outcome.statuses[status] += count;
    }
  }
  outcome.transport_errors = transport_errors.load();
  const serve::ShardedServiceStats after = service->stats();
  outcome.cache_hits = after.cache.hits - before.cache.hits;
  outcome.cache_misses = after.cache.misses - before.cache.misses;
  const int64_t lookups = outcome.cache_hits + outcome.cache_misses;
  outcome.cache_hit_rate =
      lookups > 0 ? static_cast<double>(outcome.cache_hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  return outcome;
}

void EmitPhase(bench::BenchJson* bench, const char* mode, const char* phase,
               int clients, int requests, const PhaseOutcome& outcome,
               int64_t shed_rate_limited) {
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"serve_qps\",\"mode\":\"%s\",\"phase\":\"%s\","
      "\"clients\":%d,\"requests\":%d,\"qps\":%.1f,"
      "\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f,\"samples\":%lld,"
      "\"cache_hits\":%lld,\"cache_misses\":%lld,\"cache_hit_rate\":%.3f,"
      "\"status_200\":%lld,\"status_429\":%lld,\"shed_rate_limited\":%lld}",
      mode, phase, clients, requests, outcome.qps, outcome.p50, outcome.p95,
      outcome.p99, static_cast<long long>(outcome.samples),
      static_cast<long long>(outcome.cache_hits),
      static_cast<long long>(outcome.cache_misses), outcome.cache_hit_rate,
      static_cast<long long>(
          outcome.statuses.count(200) ? outcome.statuses.at(200) : 0),
      static_cast<long long>(
          outcome.statuses.count(429) ? outcome.statuses.at(429) : 0),
      static_cast<long long>(shed_rate_limited));
  bench->Emit(line);
  std::printf("%-17s qps %-9.1f p50 %-8.1f p95 %-8.1f hit_rate %.3f\n",
              phase, outcome.qps, outcome.p50, outcome.p95,
              outcome.cache_hit_rate);
}

/// All responses are 200 and nothing failed at the transport layer.
void RequireAllOk(const PhaseOutcome& outcome, int requests,
                  const char* phase) {
  if (outcome.transport_errors != 0 ||
      outcome.statuses.size() != 1 ||
      outcome.statuses.count(200) == 0 ||
      outcome.statuses.at(200) != requests) {
    std::fprintf(stderr, "phase %s: unexpected outcomes:", phase);
    for (const auto& [status, count] : outcome.statuses) {
      std::fprintf(stderr, " %d=%lld", status,
                   static_cast<long long>(count));
    }
    std::fprintf(stderr, " transport_errors=%lld\n",
                 static_cast<long long>(outcome.transport_errors));
    ++g_violations;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool persist = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--persist") == 0) persist = true;
  }
  // Latency percentiles are read from the server-side obs histograms.
  obs::SetEnabled(true);

  const std::string store =
      (std::filesystem::temp_directory_path() / "serve_qps_store").string();
  std::filesystem::remove_all(store);

  // --- Offline: corpus, per-site training, publish into shards. ----------
  synth::Corpus corpus = synth::MakeSwdeCorpus(synth::SwdeVertical::kMovie,
                                               smoke ? 0.25 : 0.4, 100);
  const size_t kNumSites = smoke ? 2 : 3;

  serve::ShardedServiceConfig config;
  config.num_shards = 2;
  config.service.worker_threads = 2;
  config.registry.root_dir = store;
  serve::ShardedExtractionService service(corpus.seed_kb.ontology(),
                                          config);

  std::vector<std::string> site_names;
  std::vector<std::vector<std::string>> site_pages;
  for (size_t s = 0;
       s < std::min(kNumSites, corpus.sites.size()); ++s) {
    const synth::SyntheticSite& site = corpus.sites[s];
    std::vector<DomDocument> pages;
    for (const synth::GeneratedPage& page : site.pages) {
      Result<DomDocument> doc = ParseHtml(page.html);
      if (!doc.ok()) {
        std::fprintf(stderr, "unparseable generated page: %s\n",
                     doc.status().ToString().c_str());
        return 1;
      }
      pages.push_back(std::move(doc).value());
    }
    PipelineConfig train_config;
    for (size_t i = 0; i < pages.size(); i += 2) {
      train_config.annotation_pages.push_back(static_cast<PageIndex>(i));
    }
    train_config.extraction_pages = train_config.annotation_pages;
    Result<PipelineResult> trained =
        RunPipeline(pages, corpus.seed_kb, train_config);
    if (!trained.ok() || trained->models.empty()) {
      std::fprintf(stderr, "site %s trained no model; skipping\n",
                   site.name.c_str());
      continue;
    }
    Result<int64_t> version =
        service.Publish(site.name, trained->models.front().model);
    if (!version.ok()) {
      std::fprintf(stderr, "publish failed: %s\n",
                   version.status().ToString().c_str());
      return 1;
    }
    site_names.push_back(site.name);
    std::vector<std::string> crawl;
    for (size_t i = 1; i < site.pages.size(); i += 2) {
      crawl.push_back(site.pages[i].html);
    }
    site_pages.push_back(std::move(crawl));
  }
  if (site_names.size() < 2) {
    std::fprintf(stderr, "need at least two trained sites\n");
    return 1;
  }

  // Interleave sites so consecutive requests alternate shards.
  std::vector<Work> stream;
  size_t max_pages = 0;
  for (const std::vector<std::string>& crawl : site_pages) {
    max_pages = std::max(max_pages, crawl.size());
  }
  for (size_t i = 0; i < max_pages; ++i) {
    for (size_t s = 0; s < site_names.size(); ++s) {
      if (i < site_pages[s].size()) {
        stream.push_back(Work{&site_names[s], &site_pages[s][i]});
      }
    }
  }

  Status started = service.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "service start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  bench::BenchJson bench_json("serve_qps");
  const char* mode = smoke ? "smoke" : "full";
  const int kClients = 4;
  const int cold_requests = static_cast<int>(stream.size());
  const int warm_requests = smoke ? 200 : 1000;

  // --- Serving phases against an unlimited front-end. --------------------
  {
    serve::ExtractionFrontend frontend(&service);
    started = frontend.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "frontend start failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    const uint16_t port = frontend.port();

    PhaseOutcome cold = RunPhase(port, stream, kClients, cold_requests,
                                 /*per_request=*/false, &service);
    EmitPhase(&bench_json, mode, "cold", kClients, cold_requests, cold, 0);
    RequireAllOk(cold, cold_requests, "cold");
    Require(cold.samples == cold_requests,
            "cold: the obs request histogram saw every request");

    PhaseOutcome warm = RunPhase(port, stream, kClients, warm_requests,
                                 /*per_request=*/false, &service);
    EmitPhase(&bench_json, mode, "warm_keepalive", kClients, warm_requests,
              warm, 0);
    RequireAllOk(warm, warm_requests, "warm_keepalive");
    Require(warm.cache_hits == warm_requests,
            "warm replay is served entirely from the near-dup cache");
    Require(warm.qps > cold.qps,
            "near-dup hits beat the cold parse+inference path");

    PhaseOutcome per_request =
        RunPhase(port, stream, kClients, warm_requests,
                 /*per_request=*/true, &service);
    EmitPhase(&bench_json, mode, "warm_per_request", kClients,
              warm_requests, per_request, 0);
    RequireAllOk(per_request, warm_requests, "warm_per_request");
    Require(per_request.cache_hits == warm_requests,
            "per-request replay is served entirely from the cache");
    Require(warm.qps > per_request.qps,
            "keep-alive beats connection-per-request at equal work");

    Status drained =
        frontend.Drain(Deadline::After(std::chrono::seconds(10)));
    Require(drained.ok(), "unlimited front-end drains cleanly");
    const net::HttpServerStats http = frontend.server_stats();
    frontend.Stop();
    Require(http.requests == http.responses && http.responses_dropped == 0,
            "socket edge accounts exactly (requests == responses)");
  }

  // --- Rate-limited burst against a second front-end. --------------------
  {
    serve::FrontendConfig limited;
    limited.http.rate_limit.tokens_per_second = 200;
    limited.http.rate_limit.burst = 16;
    serve::ExtractionFrontend frontend(&service, limited);
    started = frontend.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "rate-limited frontend start failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    const int burst_requests = smoke ? 200 : 500;
    PhaseOutcome burst =
        RunPhase(frontend.port(), stream, kClients, burst_requests,
                 /*per_request=*/false, &service);
    Status drained =
        frontend.Drain(Deadline::After(std::chrono::seconds(10)));
    Require(drained.ok(), "rate-limited front-end drains cleanly");
    const net::HttpServerStats http = frontend.server_stats();
    frontend.Stop();

    EmitPhase(&bench_json, mode, "ratelimited", kClients, burst_requests,
              burst, http.rate_limited);
    const int64_t observed_429 =
        burst.statuses.count(429) ? burst.statuses.at(429) : 0;
    const int64_t observed_200 =
        burst.statuses.count(200) ? burst.statuses.at(200) : 0;
    Require(burst.transport_errors == 0,
            "rate-limited burst has no transport errors");
    Require(observed_429 > 0, "a tight token bucket sheds with 429");
    Require(observed_429 == http.rate_limited,
            "server rate_limited counter equals client-observed 429s");
    Require(observed_200 + observed_429 == burst_requests,
            "every burst request is either served or shed");
  }

  service.Stop();
  if (persist && !bench_json.Persist()) return 1;

  if (g_violations > 0) {
    std::fprintf(stderr, "%d invariant(s) violated\n", g_violations);
    return 1;
  }
  std::fprintf(stderr, "all serve_qps invariants hold\n");
  return 0;
}
