#ifndef CERES_OBS_METRICS_H_
#define CERES_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"

/// Lightweight thread-safe metrics for the pipeline and the serving path.
///
/// Three instrument kinds, all lock-free on the record path:
///   - Counter:   monotonically increasing int64 (events, bytes, sheds).
///   - Gauge:     last-written int64 (cache occupancy, queue depth).
///   - Histogram: fixed-bucket distribution with p50/p95/p99 estimation
///                (latencies in microseconds, batch sizes).
///
/// Instruments live in a `MetricsRegistry` keyed by name and are handed out
/// as stable pointers — callers cache the pointer once (function-local
/// static on hot paths) and record through it without ever touching the
/// registry lock again. `MetricsRegistry::Default()` is the process-wide
/// registry every subsystem records into; tests may build private ones.
///
/// Recording is gated by a process-wide enable flag, default OFF, so
/// instrumented hot paths (e.g. `FuzzyMatcher::MatchView`) cost a single
/// relaxed atomic load + branch when observability is not requested.
/// Drivers that want metrics (`ceres_serve`, benches, tests) call
/// `SetEnabled(true)`.
///
/// Naming scheme (see DESIGN.md "Observability"):
///   ceres_<subsystem>_<what>[_<unit>][_total]
/// e.g. `ceres_serve_queue_wait_us`, `ceres_registry_hits_total`.

namespace ceres::obs {

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace internal

/// True when metric recording has been requested for this process.
/// Hot paths guard instrumentation behind this — one relaxed load.
inline bool Enabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Turns metric recording on or off process-wide.
void SetEnabled(bool enabled);

/// Monotonically increasing counter. Thread-safe, lock-free.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<int64_t> value_{0};
};

/// Last-written value. Thread-safe, lock-free.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram over int64 samples. Bucket `i` counts samples
/// `<= bounds[i]`; one extra overflow bucket catches the rest. Recording is
/// a binary search over the (immutable) bounds plus one relaxed increment;
/// percentile estimates interpolate linearly within the containing bucket,
/// using the observed max as the upper edge of the overflow bucket.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<int64_t> bounds);

  void Record(int64_t value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// Estimated value at quantile `p` in [0, 1]. Returns 0 when empty.
  double Percentile(double p) const;
  int64_t Min() const;
  int64_t Max() const;

  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Count in bucket `i` (i == bounds().size() is the overflow bucket).
  int64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  void Reset();

  const std::vector<int64_t> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_;
  std::atomic<int64_t> max_;
};

/// Default bucket bounds for microsecond latencies: 1µs .. 10s in a
/// 1-2-5 progression (22 finite buckets).
const std::vector<int64_t>& LatencyBucketsUs();

/// Default bucket bounds for small cardinalities (batch sizes, queue
/// depths): 1 .. 1024 in powers of two.
const std::vector<int64_t>& SizeBuckets();

/// Named instrument registry. Get* calls find-or-create and return a
/// pointer that stays valid (and keeps its identity across `Reset`) for
/// the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry all subsystems record into.
  static MetricsRegistry& Default();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// Find-or-create with LatencyBucketsUs(); `bounds` is used only on
  /// first creation.
  Histogram* GetHistogram(std::string_view name);
  Histogram* GetHistogram(std::string_view name, std::vector<int64_t> bounds);

  /// Current value of a counter, 0 if it was never created. For tests.
  int64_t CounterValue(std::string_view name) const;

  /// All instruments as one JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"sum":..,"mean":..,
  ///                          "p50":..,"p95":..,"p99":..,"max":..},...}}
  std::string ToJson() const;

  /// Prometheus text exposition format (# TYPE lines, cumulative
  /// `_bucket{le="..."}` rows plus `_sum`/`_count` for histograms).
  std::string ToPrometheusText() const;

  /// Zeroes every instrument in place; handed-out pointers stay valid.
  /// For benches that measure one cell at a time, and for tests.
  void Reset();

 private:
  mutable CheckedMutex mu_{"MetricsRegistry.mu"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CERES_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CERES_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CERES_GUARDED_BY(mu_);
};

}  // namespace ceres::obs

#endif  // CERES_OBS_METRICS_H_
