// Coordinator/worker fault-tolerance tests (labels: dist, chaos).
//
// The contract under process-level chaos: injected worker crashes, hangs,
// and torn result frames become retries or typed quarantine entries — and
// for every non-quarantined shard the merged extractions are byte-identical
// to a single-process run of the same corpus.

#include "dist/coordinator.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/dist_corpus.h"
#include "dist/wire.h"
#include "robustness/fault_injector.h"

namespace ceres::dist {
namespace {

using dist_testing::DistTestCorpus;
using dist_testing::MakeDistTestCorpus;

class CoordinatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new DistTestCorpus(MakeDistTestCorpus());
    Result<DistResult> reference =
        RunSingleProcess(corpus_->sites, *corpus_->seed_kb,
                         corpus_->seed_kb->ontology(), BaseConfig());
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    reference_ = new DistResult(std::move(reference.value()));
    // The suite is meaningless if the corpus extracts nothing.
    size_t total = 0;
    for (const auto& site : reference_->site_extractions) {
      total += site.extractions.size();
    }
    ASSERT_GT(total, 0u);
  }

  static void TearDownTestSuite() {
    delete reference_;
    reference_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }

  static DistConfig BaseConfig() {
    DistConfig config;
    config.num_workers = 2;
    // One shard per site: 4 shards, ids stable under ShardOfSite.
    config.num_shards = 0;
    // Generous liveness: under a loaded CI box (ctest -j on few cores) a
    // healthy worker can legitimately take many seconds per site, and a
    // false watchdog kill would make the clean-run assertions flaky. The
    // watchdog test overrides this with a short timeout of its own.
    config.worker_liveness_timeout = std::chrono::seconds(60);
    return config;
  }

  static Result<DistResult> RunDist(const DistConfig& config) {
    return RunDistributedExtraction(corpus_->sites, *corpus_->seed_kb,
                                    corpus_->seed_kb->ontology(), config);
  }

  /// Byte-identical comparison of merged per-site extractions, restricted
  /// to sites present in `got` (quarantined shards drop out of the merge).
  static void ExpectExtractionsMatchReference(const DistResult& got) {
    size_t ref_index = 0;
    for (const fusion::SiteExtractions& site : got.site_extractions) {
      while (ref_index < reference_->site_extractions.size() &&
             reference_->site_extractions[ref_index].site != site.site) {
        ++ref_index;
      }
      ASSERT_LT(ref_index, reference_->site_extractions.size())
          << "site " << site.site << " missing from reference";
      const fusion::SiteExtractions& ref =
          reference_->site_extractions[ref_index];
      ASSERT_EQ(site.extractions.size(), ref.extractions.size())
          << "site " << site.site;
      for (size_t i = 0; i < site.extractions.size(); ++i) {
        const Extraction& a = site.extractions[i];
        const Extraction& b = ref.extractions[i];
        EXPECT_EQ(a.page, b.page);
        EXPECT_EQ(a.node, b.node);
        EXPECT_EQ(a.predicate, b.predicate);
        EXPECT_EQ(a.subject, b.subject);
        EXPECT_EQ(a.object, b.object);
        // Bitwise, not almost-equal: the wire format must not perturb
        // a single ULP.
        EXPECT_EQ(a.confidence, b.confidence)
            << "site " << site.site << " extraction " << i;
      }
    }
  }

  static DistTestCorpus* corpus_;
  static DistResult* reference_;
};

DistTestCorpus* CoordinatorTest::corpus_ = nullptr;
DistResult* CoordinatorTest::reference_ = nullptr;

TEST_F(CoordinatorTest, CleanRunMatchesSingleProcessByteForByte) {
  Result<DistResult> got = RunDist(BaseConfig());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->diagnostics.failures.empty());
  EXPECT_TRUE(got->diagnostics.quarantined_shards.empty());
  EXPECT_EQ(got->diagnostics.shards_completed,
            static_cast<int64_t>(corpus_->sites.size()));
  ASSERT_EQ(got->site_extractions.size(),
            reference_->site_extractions.size());
  ExpectExtractionsMatchReference(*got);
  // Identical inputs fuse identically.
  ASSERT_EQ(got->fused.triples.size(), reference_->fused.triples.size());
  for (size_t i = 0; i < got->fused.triples.size(); ++i) {
    EXPECT_EQ(got->fused.triples[i].subject,
              reference_->fused.triples[i].subject);
    EXPECT_EQ(got->fused.triples[i].object,
              reference_->fused.triples[i].object);
    EXPECT_EQ(got->fused.triples[i].score,
              reference_->fused.triples[i].score);
  }
}

TEST_F(CoordinatorTest, CrashesOnHalfTheShardsRetryToByteIdentical) {
  DistConfig config = BaseConfig();
  // Crash workers on 50% of shards (>= the 25% acceptance floor), first
  // attempt only: every crashed shard must succeed on retry.
  config.faults = MakeProcessFaultPlan(
      static_cast<int>(corpus_->sites.size()), 0.5, /*seed=*/17,
      ProcessFaultType::kWorkerCrash, /*attempts=*/1);
  const size_t planned = config.faults.faults.size();
  ASSERT_GE(planned, 2u);

  Result<DistResult> got = RunDist(config);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GE(got->diagnostics.retries, static_cast<int64_t>(planned));
  EXPECT_GE(got->diagnostics.worker_restarts, static_cast<int64_t>(planned));
  EXPECT_GE(got->diagnostics.failures.size(), planned);
  EXPECT_TRUE(got->diagnostics.quarantined_shards.empty());
  // Full recovery: every site merged, byte-identical to single-process.
  ASSERT_EQ(got->site_extractions.size(),
            reference_->site_extractions.size());
  ExpectExtractionsMatchReference(*got);
}

TEST_F(CoordinatorTest, TruncatedResultFrameIsRetried) {
  DistConfig config = BaseConfig();
  const int32_t victim =
      ShardOfSite(corpus_->sites[0].site,
                  static_cast<int32_t>(corpus_->sites.size()));
  config.faults.faults.push_back(
      ProcessFault{victim, ProcessFaultType::kTruncatedResult, 1});

  Result<DistResult> got = RunDist(config);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_GE(got->diagnostics.failures.size(), 1u);
  // The torn frame must be detected as such, not silently merged.
  EXPECT_NE(got->diagnostics.failures[0].reason.ToString().find("mid-frame"),
            std::string::npos)
      << got->diagnostics.failures[0].reason.ToString();
  EXPECT_TRUE(got->diagnostics.quarantined_shards.empty());
  ASSERT_EQ(got->site_extractions.size(),
            reference_->site_extractions.size());
  ExpectExtractionsMatchReference(*got);
}

TEST_F(CoordinatorTest, ExhaustedAttemptBudgetQuarantinesShard) {
  DistConfig config = BaseConfig();
  config.max_attempts_per_shard = 2;
  const int32_t victim =
      ShardOfSite(corpus_->sites[1].site,
                  static_cast<int32_t>(corpus_->sites.size()));
  // Crashes on every allowed attempt: the shard must land in quarantine.
  config.faults.faults.push_back(
      ProcessFault{victim, ProcessFaultType::kWorkerCrash, 2});

  Result<DistResult> got = RunDist(config);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->diagnostics.quarantined_shards.size(), 1u);
  const QuarantinedShard& q = got->diagnostics.quarantined_shards[0];
  EXPECT_EQ(q.shard, victim);
  EXPECT_EQ(q.attempts, 2);
  ASSERT_EQ(q.sites.size(), 1u);
  EXPECT_EQ(q.sites[0], corpus_->sites[1].site);
  EXPECT_FALSE(q.last_error.ok());
  // Graceful degradation: the other sites still merge, byte-identical.
  ASSERT_EQ(got->site_extractions.size(),
            reference_->site_extractions.size() - 1);
  for (const fusion::SiteExtractions& site : got->site_extractions) {
    EXPECT_NE(site.site, corpus_->sites[1].site);
  }
  ExpectExtractionsMatchReference(*got);
}

TEST_F(CoordinatorTest, WatchdogReclaimsHungWorker) {
  DistConfig config = BaseConfig();
  // Short enough to reclaim the planned hang quickly, long enough that a
  // healthy worker on a loaded box rarely trips it — and if one does, that
  // kill is also kDeadlineExceeded and its retry still converges, so the
  // assertions below hold either way.
  config.worker_liveness_timeout = std::chrono::milliseconds(5000);
  config.max_attempts_per_shard = 5;
  const int32_t victim =
      ShardOfSite(corpus_->sites[2].site,
                  static_cast<int32_t>(corpus_->sites.size()));
  config.faults.faults.push_back(
      ProcessFault{victim, ProcessFaultType::kWorkerHang, 1});

  Result<DistResult> got = RunDist(config);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_GE(got->diagnostics.failures.size(), 1u);
  EXPECT_EQ(got->diagnostics.failures[0].reason.code(),
            StatusCode::kDeadlineExceeded)
      << got->diagnostics.failures[0].reason.ToString();
  EXPECT_GE(got->diagnostics.worker_restarts, 1);
  EXPECT_TRUE(got->diagnostics.quarantined_shards.empty());
  ASSERT_EQ(got->site_extractions.size(),
            reference_->site_extractions.size());
  ExpectExtractionsMatchReference(*got);
}

TEST_F(CoordinatorTest, ExpiredRunDeadlineDegradesGracefully) {
  DistConfig config = BaseConfig();
  config.deadline = Deadline::After(std::chrono::milliseconds(0));
  Result<DistResult> got = RunDist(config);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->diagnostics.deadline_expired);
  EXPECT_EQ(got->diagnostics.unfinished_shards.size(),
            corpus_->sites.size());
  EXPECT_TRUE(got->site_extractions.empty());
  EXPECT_TRUE(got->fused.triples.empty());
}

TEST_F(CoordinatorTest, FusedTriplesHaveCrossSiteSupport) {
  // The test corpus overlaps topic windows between sites; fusion over the
  // distributed merge must see multi-site support for some triples.
  Result<DistResult> got = RunDist(BaseConfig());
  ASSERT_TRUE(got.ok());
  bool multi_site = false;
  for (const fusion::FusedTriple& triple : got->fused.triples) {
    if (triple.sites.size() >= 2) {
      multi_site = true;
      break;
    }
  }
  EXPECT_TRUE(multi_site);
}

TEST(CoordinatorValidationTest, EmptyCorpusIsOkAndEmpty) {
  KnowledgeBase kb((Ontology()));
  Result<DistResult> got =
      RunDistributedExtraction({}, kb, kb.ontology(), DistConfig());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->shards.empty());
  EXPECT_TRUE(got->site_extractions.empty());
}

TEST(CoordinatorValidationTest, DuplicateSitesRejected) {
  KnowledgeBase kb((Ontology()));
  std::vector<ShardSite> corpus(2);
  corpus[0].site = "same.example";
  corpus[1].site = "same.example";
  Result<DistResult> got =
      RunDistributedExtraction(corpus, kb, kb.ontology(), DistConfig());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(CoordinatorValidationTest, BadConfigRejected) {
  KnowledgeBase kb((Ontology()));
  DistConfig config;
  config.num_workers = 0;
  EXPECT_EQ(RunDistributedExtraction({}, kb, kb.ontology(), config)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  config = DistConfig();
  config.max_attempts_per_shard = 0;
  EXPECT_EQ(RunDistributedExtraction({}, kb, kb.ontology(), config)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardOfSiteTest, StableAndInRange) {
  // Stability across calls and runs is load-bearing (checkpoint layout);
  // pin an actual value so an accidental hash change cannot slip through.
  EXPECT_EQ(ShardOfSite("imdb.example", 1), 0);
  const int32_t pinned = ShardOfSite("imdb.example", 1000);
  EXPECT_EQ(ShardOfSite("imdb.example", 1000), pinned);
  for (int32_t shards : {1, 2, 7, 64}) {
    const int32_t got = ShardOfSite("any.example", shards);
    EXPECT_GE(got, 0);
    EXPECT_LT(got, shards);
  }
}

}  // namespace
}  // namespace ceres::dist
