#include "util/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

// The inversion tests below provoke real lock-order cycles on purpose.
// ThreadSanitizer's own deadlock detector would (correctly) report them and
// fail the run before our detector's report is asserted, so it is switched
// off for this binary only; data-race detection stays fully active.
extern "C" const char* __tsan_default_options() {
  return "detect_deadlocks=0";
}

namespace ceres {
namespace {

/// Captures lock-order violations for the duration of a test instead of
/// letting the default handler abort the process; restores the aborting
/// default on destruction.
class ViolationCapture {
 public:
  ViolationCapture() {
    SetLockOrderViolationHandler([this](const LockOrderViolation& violation) {
      std::lock_guard<std::mutex> lock(mu_);
      reports_.push_back(violation.report);
    });
  }
  ~ViolationCapture() { SetLockOrderViolationHandler(nullptr); }

  std::vector<std::string> reports() {
    std::lock_guard<std::mutex> lock(mu_);
    return reports_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> reports_;
};

TEST(CheckedMutexTest, LocksAndUnlocks) {
  CheckedMutex mu("test.basic");
  {
    MutexLock lock(mu);
  }
  {
    UniqueMutexLock lock(mu);
    lock.unlock();
    lock.lock();
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  EXPECT_STREQ(mu.name(), "test.basic");
}

TEST(CheckedMutexTest, ConsistentNestingAcrossThreadsIsQuiet) {
  ViolationCapture capture;
  CheckedMutex a("test.quiet.a");
  CheckedMutex b("test.quiet.b");
  auto nest = [&] {
    for (int i = 0; i < 10; ++i) {
      MutexLock outer(a);
      MutexLock inner(b);
    }
  };
  std::thread t1(nest);
  std::thread t2(nest);
  t1.join();
  t2.join();
  EXPECT_TRUE(capture.reports().empty());
}

TEST(CheckedMutexTest, SequentialLockingCreatesNoEdges) {
  ViolationCapture capture;
  CheckedMutex a("test.seq.a");
  CheckedMutex b("test.seq.b");
  // Non-nested use in both orders is fine: no lock is held while the
  // other is acquired, so there is no ordering to conflict.
  {
    MutexLock lock(a);
  }
  {
    MutexLock lock(b);
  }
  {
    MutexLock lock(b);
  }
  {
    MutexLock lock(a);
  }
  EXPECT_TRUE(capture.reports().empty());
}

TEST(CheckedMutexTest, ReportsAbToBaInversionWithoutHanging) {
  ViolationCapture capture;
  CheckedMutex a("test.inv.a");
  CheckedMutex b("test.inv.b");

  // One thread establishes A -> B and fully releases before the main
  // thread tries B -> A, so the schedule can never actually deadlock —
  // the detector must flag the *potential* from the order graph alone.
  std::thread first([&] {
    MutexLock outer(a);
    MutexLock inner(b);
  });
  first.join();

  {
    MutexLock outer(b);
    MutexLock inner(a);  // closes the cycle: report fires here
  }

  const std::vector<std::string> reports = capture.reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NE(reports[0].find("lock-order cycle"), std::string::npos)
      << reports[0];
  // Both chains appear: the acquiring chain (B held, acquiring A) and the
  // recorded conflicting order (A held, acquiring B).
  EXPECT_NE(reports[0].find("test.inv.a"), std::string::npos) << reports[0];
  EXPECT_NE(reports[0].find("test.inv.b"), std::string::npos) << reports[0];
  EXPECT_NE(reports[0].find("conflicting order"), std::string::npos)
      << reports[0];
}

TEST(CheckedMutexTest, ThreeLockCycleDetectedTransitively) {
  ViolationCapture capture;
  CheckedMutex a("test.tri.a");
  CheckedMutex b("test.tri.b");
  CheckedMutex c("test.tri.c");

  std::thread t1([&] {
    MutexLock outer(a);
    MutexLock inner(b);
  });
  t1.join();
  std::thread t2([&] {
    MutexLock outer(b);
    MutexLock inner(c);
  });
  t2.join();
  {
    MutexLock outer(c);
    MutexLock inner(a);  // A->B->C->A
  }
  EXPECT_EQ(capture.reports().size(), 1u);
}

TEST(CheckedMutexTest, CondVarWaitKeepsTrackingConsistent) {
  CheckedMutex mu("test.cv.mu");
  CondVar cv;
  bool ready = false;

  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });

  {
    UniqueMutexLock lock(mu);
    cv.wait(lock, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();

  // The wait's unlock/relock must leave the held-stack balanced: nesting
  // another mutex afterwards is still tracked (and quiet).
  ViolationCapture capture;
  CheckedMutex other("test.cv.other");
  {
    MutexLock outer(mu);
    MutexLock inner(other);
  }
  EXPECT_TRUE(capture.reports().empty());
}

}  // namespace
}  // namespace ceres
