#ifndef CERES_CORE_RELATION_ANNOTATOR_H_
#define CERES_CORE_RELATION_ANNOTATOR_H_

#include <unordered_map>
#include <vector>

#include "core/topic_identification.h"
#include "core/types.h"
#include "dom/dom_tree.h"
#include "kb/knowledge_base.h"

namespace ceres {

/// Parameters of Algorithm 2 (relation annotation).
struct AnnotatorConfig {
  /// When false, runs the CERES-Topic baseline of §5.2: every mention of an
  /// object is annotated with every predicate it holds with the topic,
  /// bypassing local/global disambiguation.
  bool use_relation_filtering = true;

  /// A predicate counts as "frequently duplicated" when more than this
  /// fraction of its (page, object) tasks have multiple mentions; ties in
  /// local evidence are then resolved by XPath clustering, otherwise
  /// dropped (Algorithm 2 lines 24–29).
  double duplicated_predicate_fraction = 0.5;

  /// Informativeness guard (§3.2.2 case 2): when one object value occurs as
  /// a value of a predicate on more than this fraction of annotated pages,
  /// its annotations must additionally fall in the predicate's largest
  /// XPath cluster (catches genre lists and search boxes repeated on every
  /// page).
  double duplicate_page_fraction = 0.5;

  /// Cap on distinct XPaths clustered per predicate; the most frequent
  /// paths are kept when exceeded.
  size_t max_cluster_paths = 1200;

  /// Cooperative time budget, checked at page/task granularity. On expiry
  /// the annotator stops early and sets
  /// AnnotationResult::deadline_expired.
  Deadline deadline;
};

/// Result of annotating one template cluster.
struct AnnotationResult {
  /// Positive labels, including one NAME annotation per annotated page.
  std::vector<Annotation> annotations;
  /// Pages that received at least one relation annotation.
  std::vector<PageIndex> annotated_pages;
  /// True when AnnotatorConfig::deadline expired before all tasks were
  /// decided; the result is partial and callers should treat the cluster
  /// as timed out.
  bool deadline_expired = false;
};

/// Runs Algorithm 2 over all pages with identified topics.
///
/// For every KB triple (topic, r, o) whose object is mentioned on the page,
/// chooses at most one mention to annotate: the mention whose exclusive
/// ancestor subtree holds the most objects of r (local evidence, §3.2.1),
/// with ties resolved — for frequently-duplicated predicates — by preferring
/// the mention whose XPath falls in the largest cross-page cluster of r's
/// mention paths (global evidence, §3.2.2), and dropped otherwise.
AnnotationResult AnnotateRelations(
    const std::vector<const DomDocument*>& pages,
    const std::vector<PageMentions>& mentions, const TopicResult& topics,
    const KnowledgeBase& kb, const AnnotatorConfig& config = {});

}  // namespace ceres

#endif  // CERES_CORE_RELATION_ANNOTATOR_H_
