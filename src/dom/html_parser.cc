#include "dom/html_parser.h"

#include <cctype>
#include <charconv>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace ceres {

namespace {

const std::unordered_set<std::string_view>& VoidElements() {
  static const auto* kSet = new std::unordered_set<std::string_view>{
      "area", "base",  "br",    "col",  "embed", "hr",  "img", "input",
      "link", "meta",  "param", "source", "track", "wbr"};
  return *kSet;
}

// Tags that implicitly close an open element of the same (or listed) kind.
// Maps a start tag to the set of open tags it closes when found on top of
// the stack.
const std::unordered_map<std::string_view,
                         std::unordered_set<std::string_view>>&
AutoCloseRules() {
  static const auto* kRules = new std::unordered_map<
      std::string_view, std::unordered_set<std::string_view>>{
      {"li", {"li"}},
      {"p", {"p"}},
      {"dt", {"dt", "dd"}},
      {"dd", {"dt", "dd"}},
      {"td", {"td", "th"}},
      {"th", {"td", "th"}},
      {"tr", {"td", "th", "tr"}},
      {"option", {"option"}},
  };
  return *kRules;
}

// Lower-cases `text` into `*scratch` and returns a view of it. The scratch
// buffer is reused across calls, so one parse does O(1) lowering
// allocations instead of one per tag/attribute.
std::string_view ToLowerInto(std::string_view text, std::string* scratch) {
  scratch->assign(text);
  for (char& c : *scratch) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return *scratch;
}

// Appends a code point to `out` as UTF-8.
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

// Appends the decoded form of `text` to `*out` (no clear).
void DecodeEntitiesInto(std::string_view text, std::string* out) {
  static const auto* kNamed =
      new std::unordered_map<std::string_view, std::string_view>{
          {"amp", "&"},   {"lt", "<"},     {"gt", ">"},   {"quot", "\""},
          {"apos", "'"},  {"nbsp", " "},   {"copy", "©"}, {"reg", "®"},
          {"hellip", "…"}, {"mdash", "—"}, {"ndash", "–"}, {"rsquo", "’"},
          {"lsquo", "‘"}, {"rdquo", "”"},  {"ldquo", "“"}, {"times", "×"},
      };
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out->push_back(text[i++]);
      continue;
    }
    size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 10) {
      out->push_back(text[i++]);
      continue;
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (!entity.empty() && entity[0] == '#') {
      uint32_t cp = 0;
      bool ok = false;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        auto [p, ec] = std::from_chars(entity.data() + 2,
                                       entity.data() + entity.size(), cp, 16);
        ok = ec == std::errc() && p == entity.data() + entity.size();
      } else {
        auto [p, ec] = std::from_chars(entity.data() + 1,
                                       entity.data() + entity.size(), cp, 10);
        ok = ec == std::errc() && p == entity.data() + entity.size();
      }
      if (ok && cp > 0 && cp <= 0x10FFFF) {
        AppendUtf8(cp, out);
        i = semi + 1;
        continue;
      }
    } else {
      auto it = kNamed->find(entity);
      if (it != kNamed->end()) {
        out->append(it->second);
        i = semi + 1;
        continue;
      }
    }
    out->push_back(text[i++]);
  }
}

// Reusable working buffers for one ParseHtml call: every per-tag and
// per-attribute transform (lowering, entity decoding, whitespace collapse)
// lands in one of these and is then interned or arena-copied, so steady
// state parsing does not allocate per token.
struct ParseScratch {
  std::string lower;    // lower-cased tag / attribute / close-tag names
  std::string decoded;  // entity-decoded attribute values and text
  std::string collapsed;  // whitespace-collapsed text segments
};

// Parses an attribute list between a tag name and '>' / '/>' directly into
// the document's flat attribute array for node `id`.
void ParseAttributes(std::string_view body, DomDocument* doc, NodeId id,
                     ParseScratch* scratch) {
  size_t i = 0;
  while (i < body.size()) {
    while (i < body.size() &&
           std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    if (i >= body.size() || body[i] == '/') break;
    size_t name_start = i;
    while (i < body.size() && body[i] != '=' && body[i] != '/' &&
           !std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    std::string_view name =
        ToLowerInto(body.substr(name_start, i - name_start), &scratch->lower);
    if (name.empty()) {
      ++i;
      continue;
    }
    while (i < body.size() &&
           std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    scratch->decoded.clear();
    if (i < body.size() && body[i] == '=') {
      ++i;
      while (i < body.size() &&
             std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      if (i < body.size() && (body[i] == '"' || body[i] == '\'')) {
        char quote = body[i++];
        size_t value_start = i;
        while (i < body.size() && body[i] != quote) ++i;
        DecodeEntitiesInto(body.substr(value_start, i - value_start),
                           &scratch->decoded);
        if (i < body.size()) ++i;  // Closing quote.
      } else {
        size_t value_start = i;
        while (i < body.size() && body[i] != '/' &&
               !std::isspace(static_cast<unsigned char>(body[i]))) {
          ++i;
        }
        DecodeEntitiesInto(body.substr(value_start, i - value_start),
                           &scratch->decoded);
      }
    }
    doc->AddAttribute(id, name, scratch->decoded);
  }
}

// Decodes and whitespace-collapses raw character data, then appends it to
// the node's text in the document arena.
void AppendText(DomDocument* doc, NodeId id, std::string_view raw,
                ParseScratch* scratch) {
  scratch->decoded.clear();
  DecodeEntitiesInto(raw, &scratch->decoded);
  std::string_view trimmed = StripWhitespace(scratch->decoded);
  if (trimmed.empty()) return;
  std::string& collapsed = scratch->collapsed;
  collapsed.clear();
  bool last_space = false;
  for (char c : trimmed) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!last_space) collapsed.push_back(' ');
      last_space = true;
    } else {
      collapsed.push_back(c);
      last_space = false;
    }
  }
  doc->AppendTextSegment(id, collapsed);
}

}  // namespace

std::string DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  DecodeEntitiesInto(text, &out);
  return out;
}

Result<DomDocument> ParseHtml(std::string_view html,
                              const HtmlParseOptions& options) {
  DomDocument doc;
  doc.ReserveFor(html.size());
  std::vector<NodeId> stack;
  stack.reserve(32);
  stack.push_back(doc.root());
  bool saw_explicit_html = false;
  ParseScratch scratch;
  scratch.lower.reserve(64);
  scratch.decoded.reserve(512);
  scratch.collapsed.reserve(512);

  size_t i = 0;
  const size_t n = html.size();
  while (i < n) {
    if (html[i] != '<') {
      size_t next = html.find('<', i);
      if (next == std::string_view::npos) next = n;
      AppendText(&doc, stack.back(), html.substr(i, next - i), &scratch);
      i = next;
      continue;
    }
    // Comment.
    if (html.compare(i, 4, "<!--") == 0) {
      size_t end = html.find("-->", i + 4);
      i = end == std::string_view::npos ? n : end + 3;
      continue;
    }
    // Doctype or other declaration.
    if (i + 1 < n && (html[i + 1] == '!' || html[i + 1] == '?')) {
      size_t end = html.find('>', i);
      i = end == std::string_view::npos ? n : end + 1;
      continue;
    }
    size_t close = html.find('>', i);
    if (close == std::string_view::npos) {
      // Trailing junk; treat as text.
      AppendText(&doc, stack.back(), html.substr(i), &scratch);
      break;
    }
    std::string_view tag_body = html.substr(i + 1, close - i - 1);
    i = close + 1;
    if (tag_body.empty()) continue;

    if (tag_body[0] == '/') {
      // End tag: pop to the matching open element, ignoring if absent.
      std::string_view tag =
          ToLowerInto(StripWhitespace(tag_body.substr(1)), &scratch.lower);
      for (size_t depth = stack.size(); depth-- > 0;) {
        if (doc.node(stack[depth]).tag == tag) {
          if (depth == 0) break;  // Never pop the root.
          stack.resize(depth);
          break;
        }
      }
      continue;
    }

    // Start tag.
    size_t name_end = 0;
    while (name_end < tag_body.size() && tag_body[name_end] != '/' &&
           !std::isspace(static_cast<unsigned char>(tag_body[name_end]))) {
      ++name_end;
    }
    std::string_view tag =
        ToLowerInto(tag_body.substr(0, name_end), &scratch.lower);
    if (tag.empty()) continue;
    bool self_closing = !tag_body.empty() && tag_body.back() == '/';

    if (tag == "html" && !saw_explicit_html) {
      // Merge into the implicit root rather than nesting a second <html>.
      saw_explicit_html = true;
      ParseAttributes(tag_body.substr(name_end), &doc, doc.root(), &scratch);
      continue;
    }

    // Implicit closes (e.g. <li> after an unclosed <li>).
    auto rule = AutoCloseRules().find(tag);
    if (rule != AutoCloseRules().end()) {
      while (stack.size() > 1 &&
             rule->second.count(doc.node(stack.back()).tag) > 0) {
        stack.pop_back();
      }
    }

    if (doc.size() >= options.max_nodes) {
      return Status::ResourceExhausted(
          StrCat("page exceeds max_nodes=", options.max_nodes));
    }
    NodeId id = doc.AddChild(stack.back(), tag);
    // Rebind to the pooled (stable) tag: ParseAttributes reuses the lowering
    // scratch buffer `tag` currently points into.
    tag = doc.node(id).tag;
    ParseAttributes(tag_body.substr(name_end), &doc, id, &scratch);

    bool is_void = VoidElements().count(tag) > 0;
    if ((tag == "script" || tag == "style") && !self_closing) {
      // Raw-text element: consume to the matching close tag.
      const char* close_tag = tag == "script" ? "</script" : "</style";
      const size_t close_len = tag.size() + 2;
      size_t end = i;
      while (true) {
        end = html.find('<', end);
        if (end == std::string_view::npos) {
          end = n;
          break;
        }
        if (end + close_len <= n) {
          std::string_view candidate =
              ToLowerInto(html.substr(end, close_len), &scratch.lower);
          if (candidate == close_tag) break;
        }
        ++end;
      }
      if (!options.skip_script_content) {
        AppendText(&doc, id, html.substr(i, end - i), &scratch);
      }
      size_t tag_end = html.find('>', end);
      i = tag_end == std::string_view::npos ? n : tag_end + 1;
      continue;
    }
    if (!is_void && !self_closing) stack.push_back(id);
  }
  return doc;
}

}  // namespace ceres
