file(REMOVE_RECURSE
  "CMakeFiles/ceres_extract.dir/ceres_extract_main.cc.o"
  "CMakeFiles/ceres_extract.dir/ceres_extract_main.cc.o.d"
  "ceres_extract"
  "ceres_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
