#ifndef CERES_UTIL_ALLOC_COUNTER_H_
#define CERES_UTIL_ALLOC_COUNTER_H_

#include <cstdint>

namespace ceres {
namespace util {

/// Heap-allocation counting for benchmarks and regression tests.
///
/// Implemented by the `ceres_alloc_count` library, which replaces the global
/// `operator new` family with counting wrappers. Link that library ONLY into
/// binaries that gate on allocation counts (bench/pipeline_throughput, the
/// no-alloc micro-regression tests): replacing global new in every binary
/// would interfere with the sanitizer tiers' own allocator interposition.
/// Calling these functions from a binary that does not link
/// `ceres_alloc_count` is a link error — by design.

/// Number of successful global operator new / new[] calls since process
/// start, across all threads. Monotonic; never reset.
uint64_t AllocationCount();

/// Total bytes requested from global operator new since process start.
uint64_t AllocationBytes();

}  // namespace util
}  // namespace ceres

#endif  // CERES_UTIL_ALLOC_COUNTER_H_
