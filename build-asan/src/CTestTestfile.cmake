# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("text")
subdirs("dom")
subdirs("kb")
subdirs("ml")
subdirs("cluster")
subdirs("core")
subdirs("robustness")
subdirs("baselines")
subdirs("synth")
subdirs("eval")
subdirs("fusion")
