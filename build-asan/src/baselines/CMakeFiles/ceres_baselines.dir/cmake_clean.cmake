file(REMOVE_RECURSE
  "CMakeFiles/ceres_baselines.dir/ceres_baseline.cc.o"
  "CMakeFiles/ceres_baselines.dir/ceres_baseline.cc.o.d"
  "CMakeFiles/ceres_baselines.dir/vertex.cc.o"
  "CMakeFiles/ceres_baselines.dir/vertex.cc.o.d"
  "libceres_baselines.a"
  "libceres_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
