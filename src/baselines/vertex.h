#ifndef CERES_BASELINES_VERTEX_H_
#define CERES_BASELINES_VERTEX_H_

#include <string>
#include <vector>

#include "core/features.h"
#include "core/types.h"
#include "dom/dom_tree.h"
#include "dom/xpath.h"
#include "kb/ontology.h"
#include "util/status.h"

namespace ceres {

/// Configuration of the Vertex++ wrapper learner (§5.2 baseline 1).
struct VertexConfig {
  /// Validate rule matches with structural attribute anchors shared by all
  /// training examples (the "richer feature set" of Vertex++). Disable to
  /// get plain generalized-XPath Vertex.
  bool use_attribute_anchors = true;
  /// Ancestor levels inspected for anchors.
  int max_anchor_level = 3;
};

/// A learned extraction rule for one predicate: a generalized absolute
/// XPath (index -1 = wildcard, matching any sibling index) plus structural
/// and textual anchors every match must satisfy.
struct VertexRule {
  PredicateId predicate = kInvalidPredicate;
  std::vector<XPathStep> steps;  // step.index == -1 means wildcard.
  /// Anchors: (ancestor level, attribute name, attribute value) common to
  /// all training examples.
  struct Anchor {
    int level;
    std::string attribute;
    std::string value;
  };
  std::vector<Anchor> anchors;
  /// Text anchors: (context slot, normalized text) shared by all training
  /// examples — the section label next to the value ("director:"), part of
  /// Vertex++'s richer feature set. Slots: 0 = previous sibling, 1 =
  /// parent's previous sibling, 2 = first child of parent's previous
  /// sibling.
  std::vector<std::pair<int, std::string>> text_anchors;
};

/// Supervised wrapper induction in the style of Vertex [17] with richer
/// features — the VERTEX++ comparator of the paper.
///
/// From a handful of manually annotated pages (the paper uses two per
/// site) it learns, per predicate, generalized XPath rules: indices that
/// vary across examples become wildcards; indices that agree stay fixed.
/// Rules carry attribute anchors so near-identical paths in other page
/// sections don't fire. Applying the wrapper to a page evaluates every rule
/// against every node.
class VertexWrapper {
 public:
  /// Learns rules from ground-truth annotations over `pages` (indices into
  /// `pages` are annotation.page). A NAME rule (kNamePredicate) must be
  /// present among the annotations so extraction can locate subjects.
  static Result<VertexWrapper> Learn(
      const std::vector<const DomDocument*>& pages,
      const std::vector<Annotation>& manual_annotations,
      const VertexConfig& config = {});

  /// Applies the wrapper. `page_indices` are the global ids reported in
  /// the extractions, parallel to `pages`. Confidence is always 1 (rules
  /// either fire or don't).
  std::vector<Extraction> Extract(
      const std::vector<const DomDocument*>& pages,
      const std::vector<PageIndex>& page_indices) const;

  const std::vector<VertexRule>& rules() const { return rules_; }

 private:
  explicit VertexWrapper(std::vector<VertexRule> rules)
      : rules_(std::move(rules)) {}

  std::vector<VertexRule> rules_;
};

}  // namespace ceres

#endif  // CERES_BASELINES_VERTEX_H_
