#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace ceres::lint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Tokenizer: comments, string/char literals, and preprocessor lines are
// stripped (literals survive as placeholder tokens so statement shapes stay
// intact); `// ceres-lint: allow(<rule>)` comments are recorded per line.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
  bool is_literal = false;
};

struct TokenizedFile {
  std::vector<Token> tokens;
  /// line -> rules suppressed on that line ("all" suppresses every rule).
  std::unordered_map<int, std::unordered_set<std::string>> suppressions;
};

bool IsIdentStart(char c) {
  return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }

bool IsIdent(const Token& token) {
  return !token.is_literal && !token.text.empty() &&
         IsIdentStart(token.text[0]);
}

/// Records `ceres-lint: allow(rule)` found in a comment's text.
void ParseSuppression(const std::string& comment, int line,
                      TokenizedFile* out) {
  static const std::string kMarker = "ceres-lint: allow(";
  size_t at = comment.find(kMarker);
  while (at != std::string::npos) {
    const size_t start = at + kMarker.size();
    const size_t end = comment.find(')', start);
    if (end == std::string::npos) break;
    out->suppressions[line].insert(comment.substr(start, end - start));
    at = comment.find(kMarker, end);
  }
}

TokenizedFile Tokenize(const std::string& content) {
  TokenizedFile out;
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen on this line so far

  auto advance_newline = [&]() {
    ++line;
    at_line_start = true;
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      advance_newline();
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor directive: skip the logical line (with continuations).
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          advance_newline();
          i += 2;
          continue;
        }
        if (content[i] == '\n') {
          advance_newline();
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const size_t start = i;
      while (i < n && content[i] != '\n') ++i;
      ParseSuppression(content.substr(start, i - start), line, &out);
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const size_t start = i;
      const int comment_line = line;
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') advance_newline();
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      ParseSuppression(content.substr(start, i - start), comment_line, &out);
      continue;
    }
    // Identifiers (and raw-string prefixes).
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(content[j])) ++j;
      const std::string ident = content.substr(i, j - i);
      static const std::unordered_set<std::string> kRawPrefixes = {
          "R", "LR", "u8R", "uR", "UR"};
      if (j < n && content[j] == '"' && kRawPrefixes.count(ident) > 0) {
        // Raw string literal: R"delim( ... )delim".
        size_t k = j + 1;
        std::string delim;
        while (k < n && content[k] != '(') delim += content[k++];
        const std::string closer = ")" + delim + "\"";
        size_t close = content.find(closer, k);
        if (close == std::string::npos) close = n;
        for (size_t p = j; p < std::min(close + closer.size(), n); ++p) {
          if (content[p] == '\n') advance_newline();
        }
        out.tokens.push_back(Token{"<str>", line, true});
        i = std::min(close + closer.size(), n);
        continue;
      }
      out.tokens.push_back(Token{ident, line, false});
      i = j;
      continue;
    }
    // Numbers (only shape matters; consume alnum + dots + exponent signs).
    if (c >= '0' && c <= '9') {
      size_t j = i;
      while (j < n && (IsIdentChar(content[j]) || content[j] == '.' ||
                       ((content[j] == '+' || content[j] == '-') && j > i &&
                        (content[j - 1] == 'e' || content[j - 1] == 'E')))) {
        ++j;
      }
      out.tokens.push_back(Token{content.substr(i, j - i), line, false});
      i = j;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && content[j] != quote) {
        if (content[j] == '\\' && j + 1 < n) ++j;
        if (content[j] == '\n') advance_newline();
        ++j;
      }
      out.tokens.push_back(
          Token{quote == '"' ? "<str>" : "<chr>", line, true});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // Two-character punctuators the rules care about.
    if (i + 1 < n) {
      const std::string two = content.substr(i, 2);
      if (two == "::" || two == "->") {
        out.tokens.push_back(Token{two, line, false});
        i += 2;
        continue;
      }
    }
    out.tokens.push_back(Token{std::string(1, c), line, false});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scope classification from the file path.
// ---------------------------------------------------------------------------

bool PathContains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Test code: exempt from thread-hygiene (tests legitimately sleep to widen
/// race windows and provoke timeouts).
bool IsTestFile(const std::string& path) {
  return PathContains(path, "tests/") || EndsWith(path, "_test.cc");
}

/// The concurrency-critical scope that must use util/sync.h wrappers.
/// src/net/ is included: the HTTP server's event loop and responder inbox
/// coordinate with handler threads, so their locks must participate in
/// lock-order deadlock detection too.
bool IsCheckedSyncScope(const std::string& path) {
  if (EndsWith(path, "util/sync.h") || EndsWith(path, "util/sync.cc")) {
    return false;  // the wrappers themselves wrap std primitives
  }
  return PathContains(path, "src/serve/") || PathContains(path, "src/net/") ||
         EndsWith(path, "util/parallel.h");
}

/// Pipeline-stage configuration scope for the config-deadline rule.
/// src/fusion/ is included: fusion is the last pipeline stage and its
/// config must be interruptible like any other (FusionConfig::deadline).
bool IsStageConfigScope(const std::string& path) {
  return PathContains(path, "src/core/") ||
         PathContains(path, "src/cluster/") ||
         PathContains(path, "src/fusion/");
}

/// Process-lifecycle scope for the raw-process rule: src/dist/ owns every
/// fork/exec/kill/waitpid in the tree, so worker lifetimes always flow
/// through the coordinator's watchdog, reaping, and restart accounting.
bool IsRawProcessScope(const std::string& path) {
  return !PathContains(path, "src/dist/");
}

/// Socket-edge scope for the raw-socket rule: src/net/ owns every socket
/// and epoll descriptor in the tree, so connection lifecycle, non-blocking
/// setup, and event-loop registration stay behind one audited boundary.
/// (`poll` itself stays unpoliced: src/dist/ waits on worker pipes with
/// it, which is not a socket edge.)
bool IsRawSocketScope(const std::string& path) {
  return !PathContains(path, "src/net/");
}

/// Batch-pipeline scope for the raw-parallelism rule: stage code receives
/// its thread budget via ParallelConfig, it never picks one itself.
bool IsBatchParallelScope(const std::string& path) {
  return PathContains(path, "src/core/");
}

/// Timing scope for the raw-timing rule: pipeline and serving code must
/// time through obs (TraceSpan / MonotonicNow) so measurements land in the
/// shared trace and metrics surfaces. src/obs/ itself wraps the clock and
/// stays out of scope.
bool IsRawTimingScope(const std::string& path) {
  if (PathContains(path, "src/obs/")) return false;
  return PathContains(path, "src/core/") || PathContains(path, "src/serve/");
}

bool Suppressed(const TokenizedFile& file, int line, const std::string& rule) {
  auto it = file.suppressions.find(line);
  if (it == file.suppressions.end()) return false;
  return it->second.count(rule) > 0 || it->second.count("all") > 0;
}

// ---------------------------------------------------------------------------
// Pass one: mine the names of functions declared to return Status/Result.
// ---------------------------------------------------------------------------

const std::unordered_set<std::string>& KeywordBlacklist() {
  static const std::unordered_set<std::string> kKeywords = {
      "if",     "for",    "while",  "switch", "return", "sizeof",
      "operator", "new",  "delete", "co_await", "co_return", "throw"};
  return kKeywords;
}

void CollectStatusFunctions(const TokenizedFile& file,
                            std::unordered_set<std::string>* names) {
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].is_literal) continue;
    const std::string& text = tokens[i].text;
    if (text != "Status" && text != "Result") continue;
    size_t j = i + 1;
    if (text == "Result") {
      if (j >= tokens.size() || tokens[j].text != "<") continue;
      int depth = 1;
      ++j;
      while (j < tokens.size() && depth > 0) {
        if (tokens[j].text == "<") ++depth;
        if (tokens[j].text == ">") --depth;
        ++j;
      }
      if (depth != 0) continue;
    }
    // Identifier chain: Name, Class::Name, ns::Class::Name, ...
    size_t name_at = j;
    while (name_at + 1 < tokens.size() && IsIdent(tokens[name_at]) &&
           tokens[name_at + 1].text == "::") {
      name_at += 2;
    }
    if (name_at >= tokens.size() || !IsIdent(tokens[name_at])) continue;
    if (name_at + 1 >= tokens.size() || tokens[name_at + 1].text != "(") {
      continue;
    }
    const std::string& name = tokens[name_at].text;
    if (KeywordBlacklist().count(name) > 0) continue;
    names->insert(name);
  }
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

void CheckIgnoredStatus(const SourceFile& source, const TokenizedFile& file,
                        const std::unordered_set<std::string>& status_fns,
                        std::vector<Diagnostic>* out) {
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsIdent(tokens[i]) || status_fns.count(tokens[i].text) == 0) continue;
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    // Walk back over the receiver chain (obj.  obj->  ns::) to find what
    // precedes the whole call expression.
    size_t k = i;
    while (k >= 2 && !tokens[k - 1].is_literal &&
           (tokens[k - 1].text == "::" || tokens[k - 1].text == "." ||
            tokens[k - 1].text == "->") &&
           IsIdent(tokens[k - 2])) {
      k -= 2;
    }
    if (k > 0) {
      const std::string& before = tokens[k - 1].text;
      if (before != ";" && before != "{" && before != "}") continue;
    }
    // The call must be the entire statement: matching ')' followed by ';'.
    size_t j = i + 2;
    int depth = 1;
    while (j < tokens.size() && depth > 0) {
      if (!tokens[j].is_literal) {
        if (tokens[j].text == "(") ++depth;
        if (tokens[j].text == ")") --depth;
      }
      ++j;
    }
    if (depth != 0 || j >= tokens.size() || tokens[j].text != ";") continue;
    const int line = tokens[i].line;
    if (Suppressed(file, line, "ignored-status")) continue;
    out->push_back(Diagnostic{
        source.path, line, "ignored-status",
        "result of Status/Result-returning call '" + tokens[i].text +
            "' is ignored; propagate it, handle it, or discard explicitly "
            "with (void)"});
  }
}

void CheckNakedSync(const SourceFile& source, const TokenizedFile& file,
                    std::vector<Diagnostic>* out) {
  if (!IsCheckedSyncScope(source.path)) return;
  static const std::unordered_map<std::string, std::string> kReplacements = {
      {"mutex", "ceres::CheckedMutex"},
      {"recursive_mutex", "ceres::CheckedMutex"},
      {"shared_mutex", "ceres::CheckedMutex"},
      {"timed_mutex", "ceres::CheckedMutex"},
      {"lock_guard", "ceres::MutexLock"},
      {"scoped_lock", "ceres::MutexLock"},
      {"unique_lock", "ceres::UniqueMutexLock"},
      {"condition_variable", "ceres::CondVar"},
      {"condition_variable_any", "ceres::CondVar"},
  };
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].is_literal || tokens[i].text != "std") continue;
    if (tokens[i + 1].text != "::") continue;
    auto it = kReplacements.find(tokens[i + 2].text);
    if (it == kReplacements.end()) continue;
    const int line = tokens[i].line;
    if (Suppressed(file, line, "naked-sync")) continue;
    out->push_back(Diagnostic{
        source.path, line, "naked-sync",
        "naked std::" + it->first +
            " in lock-order-checked scope; use " + it->second +
            " from util/sync.h"});
  }
}

void CheckThreadHygiene(const SourceFile& source, const TokenizedFile& file,
                        std::vector<Diagnostic>* out) {
  if (IsTestFile(source.path)) return;
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].is_literal) continue;
    const std::string& text = tokens[i].text;
    if (text == "detach" && i > 0 && i + 1 < tokens.size() &&
        (tokens[i - 1].text == "." || tokens[i - 1].text == "->") &&
        tokens[i + 1].text == "(") {
      const int line = tokens[i].line;
      if (Suppressed(file, line, "thread-hygiene")) continue;
      out->push_back(Diagnostic{
          source.path, line, "thread-hygiene",
          "detached thread in non-test code; detached threads outlive the "
          "invariants of the objects they capture — keep the handle and "
          "join"});
    }
    if (text == "sleep_for" || text == "sleep_until") {
      const int line = tokens[i].line;
      if (Suppressed(file, line, "thread-hygiene")) continue;
      out->push_back(Diagnostic{
          source.path, line, "thread-hygiene",
          text + " polling in non-test code; wait on a condition variable "
                 "or future instead of sleeping"});
    }
  }
}

void CheckConfigDeadline(const SourceFile& source, const TokenizedFile& file,
                         std::vector<Diagnostic>* out) {
  if (!IsStageConfigScope(source.path)) return;
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].is_literal || tokens[i].text != "struct") continue;
    if (!IsIdent(tokens[i + 1]) || !EndsWith(tokens[i + 1].text, "Config")) {
      continue;
    }
    if (tokens[i + 2].text != "{") continue;
    const int line = tokens[i].line;
    size_t j = i + 3;
    int depth = 1;
    bool has_deadline = false;
    while (j < tokens.size() && depth > 0) {
      if (!tokens[j].is_literal) {
        if (tokens[j].text == "{") ++depth;
        if (tokens[j].text == "}") --depth;
        if (tokens[j].text == "Deadline") has_deadline = true;
      }
      ++j;
    }
    if (has_deadline || Suppressed(file, line, "config-deadline")) continue;
    out->push_back(Diagnostic{
        source.path, line, "config-deadline",
        "pipeline-stage config struct '" + tokens[i + 1].text +
            "' carries no Deadline member; every stage config must be "
            "cooperatively interruptible (util/deadline.h)"});
  }
}

void CheckRawParallelism(const SourceFile& source, const TokenizedFile& file,
                         std::vector<Diagnostic>* out) {
  if (!IsBatchParallelScope(source.path)) return;
  const std::vector<Token>& tokens = file.tokens;
  auto is_number = [](const Token& token) {
    return !token.is_literal && !token.text.empty() &&
           token.text[0] >= '0' && token.text[0] <= '9';
  };
  auto emit = [&](int line, const std::string& message) {
    if (Suppressed(file, line, "raw-parallelism")) return;
    out->push_back(Diagnostic{source.path, line, "raw-parallelism", message});
  };
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].is_literal) continue;
    const std::string& text = tokens[i].text;
    // Raw std::thread (spawn, member, or hardware_concurrency probe): the
    // thread budget belongs to the caller's ParallelConfig, not the stage.
    if (text == "std" && i + 2 < tokens.size() &&
        tokens[i + 1].text == "::" && tokens[i + 2].text == "thread") {
      emit(tokens[i].line,
           "raw std::thread in batch-pipeline code; take a ParallelConfig "
           "and run through ParallelFor (util/parallel.h)");
      continue;
    }
    // ParallelFor(n, <literal>, body): a hard-coded thread count.
    if (text == "ParallelFor" && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      size_t j = i + 2;
      int depth = 1;
      while (j < tokens.size()) {
        if (!tokens[j].is_literal) {
          const std::string& t = tokens[j].text;
          if (t == "(" || t == "{" || t == "[") ++depth;
          if (t == ")" || t == "}" || t == "]") {
            if (--depth == 0) break;  // call ended before a second argument
          }
          if (depth == 1 && t == ",") break;
        }
        ++j;
      }
      if (j + 2 < tokens.size() && tokens[j].text == "," &&
          is_number(tokens[j + 1]) && tokens[j + 2].text == ",") {
        emit(tokens[j + 1].line,
             "literal thread count passed to ParallelFor; accept a "
             "ParallelConfig from the caller instead");
      }
      continue;
    }
    // ParallelConfig{<literal>} / ParallelConfig name{<literal>}: same
    // smell, aggregate-initialized with a hard-coded count.
    if (text == "ParallelConfig" && i + 2 < tokens.size()) {
      size_t brace = i + 1;
      if (IsIdent(tokens[brace])) ++brace;  // optional variable name
      if (brace + 1 < tokens.size() && tokens[brace].text == "{" &&
          is_number(tokens[brace + 1])) {
        emit(tokens[i].line,
             "ParallelConfig built from a literal thread count; use "
             "ParallelConfig::Sequential() or the caller's config");
      }
    }
  }
}

void CheckRawTiming(const SourceFile& source, const TokenizedFile& file,
                    std::vector<Diagnostic>* out) {
  if (!IsRawTimingScope(source.path)) return;
  const std::vector<Token>& tokens = file.tokens;
  for (const Token& token : tokens) {
    if (token.is_literal || token.text != "steady_clock") continue;
    if (Suppressed(file, token.line, "raw-timing")) continue;
    out->push_back(Diagnostic{
        source.path, token.line, "raw-timing",
        "raw std::chrono::steady_clock timing in pipeline/serve code; time "
        "through obs::TraceSpan or obs::MonotonicNow (src/obs/trace.h) so "
        "measurements land in the shared trace and metrics surfaces"});
  }
}

void CheckRawProcess(const SourceFile& source, const TokenizedFile& file,
                     std::vector<Diagnostic>* out) {
  if (!IsRawProcessScope(source.path) || IsTestFile(source.path)) return;
  static const std::unordered_set<std::string> kProcessCalls = {
      "fork", "vfork", "execv", "execvp", "execve", "waitpid", "kill",
      "_exit"};
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsIdent(tokens[i]) || kProcessCalls.count(tokens[i].text) == 0) {
      continue;
    }
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    if (i > 0) {
      const std::string& before = tokens[i - 1].text;
      // Member calls (handle.kill()) and class-qualified names
      // (Proc::kill()) are someone else's API; a bare `::` global-scope
      // qualifier is still the raw syscall.
      if (!tokens[i - 1].is_literal && (before == "." || before == "->")) {
        continue;
      }
      if (before == "::" && i >= 2 && IsIdent(tokens[i - 2])) continue;
      // A preceding identifier is a declaration (`void kill();`), not a
      // call — except `return kill(...)`.
      if (IsIdent(tokens[i - 1]) && before != "return") continue;
    }
    const int line = tokens[i].line;
    if (Suppressed(file, line, "raw-process")) continue;
    out->push_back(Diagnostic{
        source.path, line, "raw-process",
        "raw process-control call '" + tokens[i].text +
            "' outside src/dist/; process lifecycle belongs to the dist "
            "coordinator/worker layer (watchdog, reaping, restart "
            "accounting)"});
  }
}

void CheckRawSocket(const SourceFile& source, const TokenizedFile& file,
                    std::vector<Diagnostic>* out) {
  if (!IsRawSocketScope(source.path) || IsTestFile(source.path)) return;
  static const std::unordered_set<std::string> kSocketCalls = {
      "socket",       "bind",          "listen",    "accept",     "accept4",
      "connect",      "epoll_create",  "epoll_create1",
      "epoll_ctl",    "epoll_wait"};
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsIdent(tokens[i]) || kSocketCalls.count(tokens[i].text) == 0) {
      continue;
    }
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    if (i > 0) {
      const std::string& before = tokens[i - 1].text;
      // Member calls (channel.connect()) and class-qualified names
      // (Transport::bind()) are someone else's API; a bare `::`
      // global-scope qualifier is still the raw syscall.
      if (!tokens[i - 1].is_literal && (before == "." || before == "->")) {
        continue;
      }
      if (before == "::" && i >= 2 && IsIdent(tokens[i - 2])) continue;
      // A preceding identifier is a declaration (`int accept();`), not a
      // call — except `return accept(...)`.
      if (IsIdent(tokens[i - 1]) && before != "return") continue;
    }
    const int line = tokens[i].line;
    if (Suppressed(file, line, "raw-socket")) continue;
    out->push_back(Diagnostic{
        source.path, line, "raw-socket",
        "raw socket/epoll call '" + tokens[i].text +
            "' outside src/net/; the socket edge belongs to the net layer "
            "(non-blocking setup, event-loop registration, connection "
            "lifecycle) — serve it through HttpServer/HttpClient"});
  }
}

}  // namespace

std::vector<Diagnostic> Lint(const std::vector<SourceFile>& files) {
  std::vector<TokenizedFile> tokenized;
  tokenized.reserve(files.size());
  std::unordered_set<std::string> status_fns;
  for (const SourceFile& file : files) {
    tokenized.push_back(Tokenize(file.content));
    CollectStatusFunctions(tokenized.back(), &status_fns);
  }
  std::vector<Diagnostic> diagnostics;
  for (size_t i = 0; i < files.size(); ++i) {
    CheckIgnoredStatus(files[i], tokenized[i], status_fns, &diagnostics);
    CheckNakedSync(files[i], tokenized[i], &diagnostics);
    CheckThreadHygiene(files[i], tokenized[i], &diagnostics);
    CheckConfigDeadline(files[i], tokenized[i], &diagnostics);
    CheckRawParallelism(files[i], tokenized[i], &diagnostics);
    CheckRawTiming(files[i], tokenized[i], &diagnostics);
    CheckRawProcess(files[i], tokenized[i], &diagnostics);
    CheckRawSocket(files[i], tokenized[i], &diagnostics);
  }
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return diagnostics;
}

std::vector<SourceFile> CollectSources(const std::vector<std::string>& paths,
                                       std::string* error) {
  std::vector<std::string> collected;
  auto want_file = [](const fs::path& path) {
    const std::string ext = path.extension().string();
    return ext == ".h" || ext == ".cc";
  };
  auto skip_dir = [](const fs::path& path) {
    const std::string name = path.filename().string();
    return name == "corpus" || name == ".git" ||
           name.rfind("build", 0) == 0;
  };
  for (const std::string& root : paths) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      collected.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      if (error != nullptr) *error = "no such file or directory: " + root;
      return {};
    }
    fs::recursive_directory_iterator it(root, ec), end;
    while (it != end) {
      if (it->is_directory() && skip_dir(it->path())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() && want_file(it->path())) {
        collected.push_back(it->path().string());
      }
      it.increment(ec);
      if (ec) break;
    }
  }
  std::sort(collected.begin(), collected.end());
  std::vector<SourceFile> sources;
  sources.reserve(collected.size());
  for (const std::string& path : collected) {
    std::ifstream in(path);
    if (!in) {
      if (error != nullptr) *error = "cannot read: " + path;
      return {};
    }
    std::ostringstream content;
    content << in.rdbuf();
    sources.push_back(SourceFile{path, content.str()});
  }
  return sources;
}

std::string FormatDiagnostic(const Diagnostic& diagnostic) {
  return diagnostic.file + ":" + std::to_string(diagnostic.line) + ": [" +
         diagnostic.rule + "] " + diagnostic.message;
}

}  // namespace ceres::lint
