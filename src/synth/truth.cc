#include "synth/truth.h"

#include "dom/xpath.h"
#include "util/logging.h"

namespace ceres::synth {

eval::SiteTruth BuildSiteTruth(const std::vector<GeneratedPage>& generated,
                               const std::vector<DomDocument>& parsed) {
  CERES_CHECK(generated.size() == parsed.size());
  eval::SiteTruth truth;
  truth.pages.resize(generated.size());
  for (size_t i = 0; i < generated.size(); ++i) {
    eval::PageTruth& page = truth.pages[i];
    page.topic = generated[i].topic;
    page.topic_name = generated[i].topic_name;
    for (const GroundTruthFact& fact : generated[i].facts) {
      Result<XPath> path = XPath::Parse(fact.xpath);
      if (!path.ok()) {
        ++truth.unresolved;
        continue;
      }
      NodeId node = path->Resolve(parsed[i]);
      if (node == kInvalidNode) {
        ++truth.unresolved;
        continue;
      }
      if (fact.predicate == kNamePredicate) page.topic_node = node;
      page.facts.push_back(
          eval::PageTruth::Fact{node, fact.predicate, fact.object_text});
    }
  }
  return truth;
}

}  // namespace ceres::synth
