file(REMOVE_RECURSE
  "CMakeFiles/ceres_eval.dir/metrics.cc.o"
  "CMakeFiles/ceres_eval.dir/metrics.cc.o.d"
  "CMakeFiles/ceres_eval.dir/report.cc.o"
  "CMakeFiles/ceres_eval.dir/report.cc.o.d"
  "libceres_eval.a"
  "libceres_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
