#include "eval/metrics.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "text/fuzzy_matcher.h"
#include "text/normalize.h"

namespace ceres::eval {

namespace {

// Applies the page filter; empty filter means "all pages".
std::unordered_set<PageIndex> PageFilter(const std::vector<PageIndex>& pages,
                                         size_t num_pages) {
  std::unordered_set<PageIndex> out;
  if (pages.empty()) {
    for (size_t i = 0; i < num_pages; ++i) {
      out.insert(static_cast<PageIndex>(i));
    }
  } else {
    out.insert(pages.begin(), pages.end());
  }
  return out;
}

std::unordered_set<PredicateId> PredicateFilter(
    const std::vector<PredicateId>& predicates) {
  return {predicates.begin(), predicates.end()};
}

bool Allowed(const std::unordered_set<PredicateId>& filter,
             PredicateId predicate) {
  return filter.empty() || filter.count(predicate) > 0;
}

}  // namespace

bool SubjectMatchesTruth(const Extraction& extraction,
                         const PageTruth& truth) {
  std::string subject = NormalizeText(extraction.subject);
  std::string topic = NormalizeText(truth.topic_name);
  if (subject == topic) return true;
  return StripTrailingYear(subject) == topic;
}

namespace {
bool SubjectMatches(const Extraction& extraction, const PageTruth& truth) {
  return SubjectMatchesTruth(extraction, truth);
}
}  // namespace

bool PageTruth::Asserts(NodeId node, PredicateId predicate) const {
  for (const Fact& fact : facts) {
    if (fact.node == node && fact.predicate == predicate) return true;
  }
  return false;
}


std::map<PredicateId, Prf> ScoreExtractionsByPredicate(
    const std::vector<Extraction>& extractions, const SiteTruth& truth,
    const ScoreOptions& options) {
  const auto pages = PageFilter(options.pages, truth.pages.size());
  const auto predicates = PredicateFilter(options.predicates);
  std::map<PredicateId, Prf> out;

  // True-positive keys for recall accounting.
  std::set<std::tuple<PageIndex, NodeId, PredicateId>> correct;

  for (const Extraction& extraction : extractions) {
    if (extraction.confidence < options.confidence_threshold) continue;
    if (pages.count(extraction.page) == 0) continue;
    if (!Allowed(predicates, extraction.predicate)) continue;
    const PageTruth& page_truth =
        truth.pages[static_cast<size_t>(extraction.page)];
    bool ok = page_truth.Asserts(extraction.node, extraction.predicate);
    if (ok && options.check_subject && !SubjectMatches(extraction,
                                                       page_truth)) {
      ok = false;
    }
    if (ok) {
      // A repeated extraction of the same (page, node, predicate) is not
      // new evidence: count the key once or precision inflates with
      // duplicate emissions.
      if (correct
              .emplace(extraction.page, extraction.node, extraction.predicate)
              .second) {
        ++out[extraction.predicate].tp;
      }
    } else {
      ++out[extraction.predicate].fp;
    }
  }
  for (PageIndex page : pages) {
    const PageTruth& page_truth = truth.pages[static_cast<size_t>(page)];
    for (const PageTruth::Fact& fact : page_truth.facts) {
      if (!Allowed(predicates, fact.predicate)) continue;
      if (correct.count({page, fact.node, fact.predicate}) == 0) {
        ++out[fact.predicate].fn;
      }
    }
  }
  return out;
}

Prf ScoreExtractions(const std::vector<Extraction>& extractions,
                     const SiteTruth& truth, const ScoreOptions& options) {
  Prf total;
  for (const auto& [predicate, prf] :
       ScoreExtractionsByPredicate(extractions, truth, options)) {
    total += prf;
  }
  return total;
}

Prf ScorePageHits(const std::vector<Extraction>& extractions,
                  const SiteTruth& truth, const ScoreOptions& options) {
  const auto pages = PageFilter(options.pages, truth.pages.size());
  const auto predicates = PredicateFilter(options.predicates);

  // Best extraction per (page, predicate).
  std::map<std::pair<PageIndex, PredicateId>, const Extraction*> best;
  for (const Extraction& extraction : extractions) {
    if (extraction.confidence < options.confidence_threshold) continue;
    if (pages.count(extraction.page) == 0) continue;
    if (!Allowed(predicates, extraction.predicate)) continue;
    auto key = std::make_pair(extraction.page, extraction.predicate);
    auto it = best.find(key);
    if (it == best.end() || extraction.confidence > it->second->confidence) {
      best[key] = &extraction;
    }
  }

  Prf prf;
  std::set<std::pair<PageIndex, PredicateId>> hit_keys;
  for (const auto& [key, extraction] : best) {
    const PageTruth& page_truth = truth.pages[static_cast<size_t>(key.first)];
    bool ok = page_truth.Asserts(extraction->node, extraction->predicate);
    if (ok && options.check_subject &&
        !SubjectMatches(*extraction, page_truth)) {
      ok = false;
    }
    if (ok) {
      ++prf.tp;
      hit_keys.insert(key);
    } else {
      ++prf.fp;
    }
  }
  for (PageIndex page : pages) {
    const PageTruth& page_truth = truth.pages[static_cast<size_t>(page)];
    std::set<PredicateId> asserted;
    for (const PageTruth::Fact& fact : page_truth.facts) {
      if (Allowed(predicates, fact.predicate)) {
        asserted.insert(fact.predicate);
      }
    }
    for (PredicateId predicate : asserted) {
      if (hit_keys.count({page, predicate}) == 0) ++prf.fn;
    }
  }
  return prf;
}

namespace {

// True when (topic, predicate, object) is present in the seed KB, matching
// entities by surface name.
bool InSeedKb(const KnowledgeBase& seed_kb, const std::string& topic_name,
              PredicateId predicate, const std::string& object_text) {
  for (EntityId subject : seed_kb.MatchMentions(topic_name)) {
    for (EntityId object : seed_kb.MatchMentions(object_text)) {
      if (seed_kb.HasTriple(subject, predicate, object)) return true;
    }
  }
  return false;
}

}  // namespace

std::map<PredicateId, Prf> ScoreAnnotationsByPredicate(
    const std::vector<Annotation>& annotations, const SiteTruth& truth,
    const KnowledgeBase& seed_kb, const std::vector<PageIndex>& pages_in) {
  const auto pages = PageFilter(pages_in, truth.pages.size());
  std::map<PredicateId, Prf> out;
  std::set<std::tuple<PageIndex, NodeId, PredicateId>> correct;
  for (const Annotation& annotation : annotations) {
    if (pages.count(annotation.page) == 0) continue;
    const PageTruth& page_truth =
        truth.pages[static_cast<size_t>(annotation.page)];
    if (page_truth.Asserts(annotation.node, annotation.predicate)) {
      // Same duplicate guard as ScoreExtractionsByPredicate: repeated
      // annotations of one (page, node, predicate) count a single TP.
      if (correct
              .emplace(annotation.page, annotation.node, annotation.predicate)
              .second) {
        ++out[annotation.predicate].tp;
      }
    } else {
      ++out[annotation.predicate].fp;
    }
  }
  // Recall denominator: asserted facts that the seed KB knows (annotatable).
  for (PageIndex page : pages) {
    const PageTruth& page_truth = truth.pages[static_cast<size_t>(page)];
    if (page_truth.topic == kInvalidEntity) continue;
    for (const PageTruth::Fact& fact : page_truth.facts) {
      if (fact.predicate == kNamePredicate) continue;
      if (correct.count({page, fact.node, fact.predicate}) > 0) continue;
      if (InSeedKb(seed_kb, page_truth.topic_name, fact.predicate,
                   fact.object_text)) {
        ++out[fact.predicate].fn;
      }
    }
  }
  return out;
}

Prf ScoreAnnotations(const std::vector<Annotation>& annotations,
                     const SiteTruth& truth, const KnowledgeBase& seed_kb,
                     const std::vector<PageIndex>& pages) {
  Prf total;
  for (const auto& [predicate, prf] : ScoreAnnotationsByPredicate(
           annotations, truth, seed_kb, pages)) {
    if (predicate == kNamePredicate) continue;
    total += prf;
  }
  return total;
}

Prf ScoreTopics(const std::vector<EntityId>& predicted_topic,
                const SiteTruth& truth, const KnowledgeBase& seed_kb,
                const std::vector<PageIndex>& pages_in) {
  const auto pages = PageFilter(pages_in, truth.pages.size());
  Prf prf;
  for (PageIndex page : pages) {
    const PageTruth& page_truth = truth.pages[static_cast<size_t>(page)];
    // Callers may pass a prediction vector covering only a prefix of the
    // site's pages (e.g. a partial run); a missing entry means "no topic
    // identified", not an out-of-bounds read.
    const EntityId predicted =
        static_cast<size_t>(page) < predicted_topic.size()
            ? predicted_topic[static_cast<size_t>(page)]
            : kInvalidEntity;
    const bool has_truth =
        page_truth.topic != kInvalidEntity &&
        !seed_kb.MatchMentions(page_truth.topic_name).empty();
    if (predicted == kInvalidEntity) {
      if (has_truth) ++prf.fn;
      continue;
    }
    const bool correct =
        page_truth.topic != kInvalidEntity &&
        NormalizeText(seed_kb.entity(predicted).name) ==
            NormalizeText(page_truth.topic_name);
    if (correct) {
      ++prf.tp;
    } else {
      ++prf.fp;
      if (has_truth) ++prf.fn;
    }
  }
  return prf;
}

}  // namespace ceres::eval
