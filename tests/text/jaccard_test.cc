#include "text/jaccard.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/random.h"

namespace ceres {
namespace {

using Set = std::unordered_set<int64_t>;

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Set{1, 2, 3}, Set{2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Set{1}, Set{1}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Set{1}, Set{2}), 0.0);
}

TEST(JaccardTest, EmptySets) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Set{}, Set{}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Set{1}, Set{}), 0.0);
}

TEST(JaccardTest, SubsetScore) {
  // |A∩B| / |A∪B| = 2/4.
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Set{1, 2}, Set{1, 2, 3, 4}), 0.5);
}

TEST(JaccardPropertyTest, SymmetricAndBounded) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    Set a;
    Set b;
    int na = static_cast<int>(rng.Uniform(0, 20));
    int nb = static_cast<int>(rng.Uniform(0, 20));
    for (int i = 0; i < na; ++i) a.insert(rng.Uniform(0, 30));
    for (int i = 0; i < nb; ++i) b.insert(rng.Uniform(0, 30));
    double ab = JaccardSimilarity(a, b);
    double ba = JaccardSimilarity(b, a);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    if (!a.empty()) {
      EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
    }
  }
}

}  // namespace
}  // namespace ceres
