#include "text/levenshtein.h"

#include <cstdlib>

namespace ceres {

size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t bound) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (m - n > bound) return bound + 1;
  // Banded dynamic program: only cells with |i - j| <= bound can hold a
  // value <= bound, so each row examines a window of width 2*bound + 1.
  const size_t kInf = bound + 1;
  std::vector<size_t> prev(m + 1, kInf);
  std::vector<size_t> cur(m + 1, kInf);
  for (size_t j = 0; j <= std::min(m, bound); ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    const size_t lo = i > bound ? i - bound : 0;
    const size_t hi = std::min(m, i + bound);
    std::fill(cur.begin(), cur.end(), kInf);
    if (lo == 0) cur[0] = i;
    bool any_within = lo == 0 && cur[0] <= bound;
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      size_t best = kInf;
      if (prev[j] < best) best = prev[j] + 1 <= kInf ? prev[j] + 1 : kInf;
      if (cur[j - 1] < best) best = cur[j - 1] + 1;
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      if (sub < best) best = sub;
      cur[j] = std::min(best, kInf);
      if (cur[j] <= bound) any_within = true;
    }
    if (!any_within) return bound + 1;
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace ceres
