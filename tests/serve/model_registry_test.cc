#include "serve/model_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/extractor.h"
#include "serve/serve_test_util.h"
#include "util/parallel.h"

namespace ceres::serve {
namespace {

using ceres::testing::TrainedFilmSite;

class ModelRegistryTest : public ::testing::Test {
 protected:
  std::string NewRoot(const std::string& name) {
    std::string root = ::testing::TempDir() + "/registry_" + name;
    std::filesystem::remove_all(root);
    return root;
  }

  TrainedFilmSite site_;
};

TEST_F(ModelRegistryTest, GetLoadsFromStoreThenServesWarm) {
  const std::string root = NewRoot("warm");
  ASSERT_TRUE(SaveModelVersion(root, "films.example", *site_.model,
                               site_.kb.kb.ontology())
                  .ok());
  ModelRegistry registry(site_.kb.kb.ontology(), {root});

  bool hit = true;
  Result<std::shared_ptr<const SiteModel>> cold =
      registry.Get("films.example", &hit);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(hit);
  EXPECT_EQ((*cold)->version, 1);
  EXPECT_GT((*cold)->bytes, 0u);

  Result<std::shared_ptr<const SiteModel>> warm =
      registry.Get("films.example", &hit);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(cold.value().get(), warm.value().get());

  RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.loads, 1);
  EXPECT_EQ(stats.models_cached, 1);
  EXPECT_EQ(stats.bytes_cached, (*cold)->bytes);
}

TEST_F(ModelRegistryTest, UnknownSiteFailsTypedAndIsNotNegativelyCached) {
  ModelRegistry registry(site_.kb.kb.ontology(), {NewRoot("unknown")});
  EXPECT_EQ(registry.Get("nope.example").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.Get("nope.example").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.stats().load_failures, 2);
}

TEST_F(ModelRegistryTest, ByteBudgetEvictsLeastRecentlyUsed) {
  const std::string root = NewRoot("evict");
  ModelRegistry seeded(site_.kb.kb.ontology(), {root});
  ASSERT_TRUE(seeded.Publish("a.example", *site_.model).ok());
  ASSERT_TRUE(seeded.Publish("b.example", *site_.model).ok());
  ASSERT_TRUE(seeded.Publish("c.example", *site_.model).ok());

  // Budget for two copies of this model, not three.
  ModelRegistryConfig config;
  config.root_dir = root;
  config.byte_budget = 2 * EstimateModelBytes(*site_.model) +
                       EstimateModelBytes(*site_.model) / 2;
  ModelRegistry registry(site_.kb.kb.ontology(), config);

  ASSERT_TRUE(registry.Get("a.example").ok());
  ASSERT_TRUE(registry.Get("b.example").ok());
  ASSERT_TRUE(registry.Get("c.example").ok());  // evicts a (LRU)
  EXPECT_EQ(registry.stats().evictions, 1);
  EXPECT_EQ(registry.stats().models_cached, 2);

  bool hit = false;
  ASSERT_TRUE(registry.Get("b.example", &hit).ok());
  EXPECT_TRUE(hit) << "b was touched after a, must still be warm";
  ASSERT_TRUE(registry.Get("a.example", &hit).ok());
  EXPECT_FALSE(hit) << "a was the LRU victim, must reload";
  EXPECT_LE(registry.stats().bytes_cached, config.byte_budget);
}

TEST_F(ModelRegistryTest, OversizedModelStillServedThenEvicted) {
  const std::string root = NewRoot("oversized");
  ModelRegistry seeded(site_.kb.kb.ontology(), {root});
  ASSERT_TRUE(seeded.Publish("a.example", *site_.model).ok());
  ASSERT_TRUE(seeded.Publish("b.example", *site_.model).ok());

  ModelRegistryConfig config;
  config.root_dir = root;
  config.byte_budget = 1;  // below any model
  ModelRegistry registry(site_.kb.kb.ontology(), config);

  ASSERT_TRUE(registry.Get("a.example").ok());
  ASSERT_TRUE(registry.Get("b.example").ok());  // evicts a
  bool hit = true;
  ASSERT_TRUE(registry.Get("a.example", &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_GE(registry.stats().evictions, 2);
}

TEST_F(ModelRegistryTest, PublishHotSwapsWhileOldReadersFinish) {
  const std::string root = NewRoot("hotswap");
  ModelRegistry registry(site_.kb.kb.ontology(), {root});
  ASSERT_TRUE(registry.Publish("films.example", *site_.model).ok());

  Result<std::shared_ptr<const SiteModel>> v1 = registry.Get("films.example");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ((*v1)->version, 1);
  std::shared_ptr<const SiteModel> held = v1.value();

  Result<int64_t> v2 = registry.Publish("films.example", *site_.model);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2);
  EXPECT_EQ(registry.stats().hot_swaps, 1);

  Result<std::shared_ptr<const SiteModel>> after =
      registry.Get("films.example");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->version, 2);
  // The reader that grabbed v1 before the swap still has a working model.
  EXPECT_EQ(held->version, 1);
  DomDocument unseen =
      ceres::testing::ParseOrDie(TrainedFilmSite::UnseenPageHtml());
  std::vector<Extraction> extractions = ExtractFromPages(
      {&unseen}, {0}, const_cast<TrainedModel*>(&held->model),
      held->featurizer, {});
  EXPECT_FALSE(extractions.empty());
}

TEST_F(ModelRegistryTest, ConcurrentColdGetsDeduplicateTheDiskLoad) {
  const std::string root = NewRoot("dedup");
  ModelRegistry seeded(site_.kb.kb.ontology(), {root});
  ASSERT_TRUE(seeded.Publish("films.example", *site_.model).ok());

  ModelRegistry registry(site_.kb.kb.ontology(), {root});
  std::atomic<int> failures{0};
  ParallelFor(8, 8, [&](size_t) {
    if (!registry.Get("films.example").ok()) failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);
  RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.loads, 1) << "one disk load, everyone else rides it";
  EXPECT_EQ(stats.hits + stats.misses, 8);
}

TEST_F(ModelRegistryTest, EvictionAndHotSwapUnderConcurrentReaders) {
  const std::string root = NewRoot("churn");
  ModelRegistry seeded(site_.kb.kb.ontology(), {root});
  const std::vector<std::string> sites = {"a.example", "b.example",
                                          "c.example"};
  for (const std::string& site : sites) {
    ASSERT_TRUE(seeded.Publish(site, *site_.model).ok());
  }

  // Budget for ~1.5 models: every reader round churns the cache while a
  // writer hot-swaps new versions underneath.
  ModelRegistryConfig config;
  config.root_dir = root;
  config.byte_budget = EstimateModelBytes(*site_.model) * 3 / 2;
  ModelRegistry registry(site_.kb.kb.ontology(), config);

  DomDocument unseen =
      ceres::testing::ParseOrDie(TrainedFilmSite::UnseenPageHtml());
  std::atomic<int> reader_failures{0};
  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    for (int round = 0; round < 5 && !stop_writer.load(); ++round) {
      for (const std::string& site : sites) {
        if (!registry.Publish(site, *site_.model).ok()) {
          reader_failures.fetch_add(1);
        }
      }
    }
  });
  ParallelFor(4, 4, [&](size_t worker) {
    for (int i = 0; i < 30; ++i) {
      const std::string& site = sites[(worker + i) % sites.size()];
      Result<std::shared_ptr<const SiteModel>> model = registry.Get(site);
      if (!model.ok()) {
        reader_failures.fetch_add(1);
        continue;
      }
      std::vector<Extraction> extractions = ExtractFromPages(
          {&unseen}, {0}, const_cast<TrainedModel*>(&(*model)->model),
          (*model)->featurizer, {});
      if (extractions.empty()) reader_failures.fetch_add(1);
    }
  });
  stop_writer.store(true);
  writer.join();

  EXPECT_EQ(reader_failures.load(), 0);
  RegistryStats stats = registry.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.bytes_cached, config.byte_budget);
  // Every site's warm (or reloaded) model is the writer's newest version.
  for (const std::string& site : sites) {
    Result<std::shared_ptr<const SiteModel>> model = registry.Get(site);
    ASSERT_TRUE(model.ok());
    Result<int64_t> latest = LatestModelVersion(root, site);
    ASSERT_TRUE(latest.ok());
    EXPECT_EQ((*model)->version, *latest) << site;
  }
}

TEST_F(ModelRegistryTest, InvalidateForcesReload) {
  const std::string root = NewRoot("invalidate");
  ModelRegistry registry(site_.kb.kb.ontology(), {root});
  ASSERT_TRUE(registry.Publish("films.example", *site_.model).ok());
  ASSERT_TRUE(registry.Get("films.example").ok());

  registry.Invalidate("films.example");
  EXPECT_EQ(registry.stats().models_cached, 0);
  bool hit = true;
  ASSERT_TRUE(registry.Get("films.example", &hit).ok());
  EXPECT_FALSE(hit);
}

TEST_F(ModelRegistryTest, CorruptStoreFileYieldsTypedErrorAndRecovers) {
  const std::string root = NewRoot("corrupt");
  ModelRegistry registry(site_.kb.kb.ontology(), {root});
  ASSERT_TRUE(registry.Publish("films.example", *site_.model).ok());
  registry.Invalidate("films.example");

  // Truncate the snapshot behind the registry's back.
  const std::string path = ModelVersionPath(root, "films.example", 1);
  {
    std::ifstream in(path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::trunc);
    out << bytes.substr(0, bytes.size() / 3);
  }
  Result<std::shared_ptr<const SiteModel>> broken =
      registry.Get("films.example");
  EXPECT_FALSE(broken.ok());
  EXPECT_EQ(broken.status().code(), StatusCode::kInvalidArgument);

  // A retrain publishes version 2 and the site heals — no negative cache.
  ASSERT_TRUE(registry.Publish("films.example", *site_.model).ok());
  Result<std::shared_ptr<const SiteModel>> healed =
      registry.Get("films.example");
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ((*healed)->version, 2);
}

}  // namespace
}  // namespace ceres::serve
