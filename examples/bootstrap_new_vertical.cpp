// Domain scenario: entering a brand-new vertical with NO knowledge base —
// the bootstrapping recipe of the paper's footnote 2:
//
//   1. manually annotate a couple of pages on ONE prominent site and learn
//      a Vertex++ wrapper for it;
//   2. extract that site with the wrapper and turn the (fused) output into
//      a seed KB;
//   3. distantly supervise every OTHER site in the vertical with that
//      bootstrapped KB — no further human effort.
//
// Here the "manual annotations" come from the generator's ground truth for
// two pages, exactly what a human annotator would mark up.

#include <cstdio>

#include "baselines/vertex.h"
#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "fusion/knowledge_fusion.h"
#include "synth/corpora.h"
#include "synth/truth.h"

int main() {
  using namespace ceres;  // NOLINT(build/namespaces)

  std::printf("Building an NBA-style vertical (10 sites)...\n");
  synth::Corpus corpus =
      synth::MakeSwdeCorpus(synth::SwdeVertical::kNbaPlayer, 0.5);

  // Parse all sites.
  struct Site {
    std::vector<DomDocument> pages;
    eval::SiteTruth truth;
  };
  std::vector<Site> sites;
  for (const synth::SyntheticSite& generated : corpus.sites) {
    Site site;
    for (const synth::GeneratedPage& page : generated.pages) {
      site.pages.push_back(std::move(ParseHtml(page.html)).value());
    }
    site.truth = synth::BuildSiteTruth(generated.pages, site.pages);
    sites.push_back(std::move(site));
  }

  // ---- Step 1: wrapper induction on the prominent site (two pages). -----
  const Site& prominent = sites[0];
  std::vector<const DomDocument*> prominent_pages;
  for (const DomDocument& doc : prominent.pages) {
    prominent_pages.push_back(&doc);
  }
  std::vector<Annotation> manual;
  for (PageIndex page = 0; page < 2; ++page) {
    for (const eval::PageTruth::Fact& fact :
         prominent.truth.pages[static_cast<size_t>(page)].facts) {
      manual.push_back(Annotation{page, fact.node, fact.predicate,
                                  kInvalidEntity});
    }
  }
  Result<VertexWrapper> wrapper = VertexWrapper::Learn(prominent_pages,
                                                       manual);
  if (!wrapper.ok()) {
    std::fprintf(stderr, "wrapper learning failed: %s\n",
                 wrapper.status().ToString().c_str());
    return 1;
  }
  std::vector<PageIndex> all_indices;
  for (size_t i = 0; i < prominent.pages.size(); ++i) {
    all_indices.push_back(static_cast<PageIndex>(i));
  }
  std::vector<Extraction> wrapper_output =
      wrapper->Extract(prominent_pages, all_indices);
  std::printf("Step 1: wrapper extracted %zu fields from the prominent "
              "site (2 hand-annotated pages).\n",
              wrapper_output.size());

  // ---- Step 2: fuse the wrapper output into a bootstrapped seed KB. -----
  const Ontology& ontology = corpus.seed_kb.ontology();
  fusion::FusionResult fused = fusion::FuseExtractions(
      {{corpus.sites[0].name, wrapper_output}}, ontology);
  KnowledgeBase bootstrap_kb =
      fusion::BuildKbFromFusedTriples(fused, ontology, /*min_score=*/0.5);
  std::printf("Step 2: bootstrapped seed KB: %lld entities, %lld triples "
              "(no pre-existing KB used).\n",
              static_cast<long long>(bootstrap_kb.num_entities()),
              static_cast<long long>(bootstrap_kb.num_triples()));

  // ---- Step 3: distant supervision on the remaining nine sites. ---------
  eval::TableReport table({"Site", "Annotated pages", "Extractions", "P",
                           "R"});
  eval::Prf total;
  for (size_t s = 1; s < sites.size(); ++s) {
    PipelineConfig config;
    Result<PipelineResult> result =
        RunPipeline(sites[s].pages, bootstrap_kb, config);
    if (!result.ok()) continue;
    eval::ScoreOptions options;
    options.confidence_threshold = 0.5;
    eval::Prf prf = eval::ScoreExtractions(result->extractions,
                                           sites[s].truth, options);
    total += prf;
    table.AddRow({corpus.sites[s].name,
                  std::to_string(result->annotated_pages.size()),
                  std::to_string(prf.tp + prf.fp),
                  eval::FormatRatio(prf.precision()),
                  eval::FormatRatio(prf.recall())});
  }
  table.Print();
  std::printf(
      "\nVertical total: P=%.2f R=%.2f from TWO manually annotated pages — "
      "footnote 2's annotate-once, extract-everywhere loop.\n",
      total.precision(), total.recall());
  return 0;
}
