#ifndef CERES_CLUSTER_DETAIL_PAGE_DETECTOR_H_
#define CERES_CLUSTER_DETAIL_PAGE_DETECTOR_H_

#include <vector>

#include "dom/dom_tree.h"
#include "util/deadline.h"

namespace ceres {

/// Signals computed over a template cluster of pages, used to decide
/// whether the cluster consists of *detail pages* (one entity per page,
/// §2.1) — the paper's §7 future-work item "methods to effectively
/// identify semi-structured pages".
struct DetailPageSignals {
  /// Fraction of text fields whose normalized text recurs on most pages of
  /// the cluster (template labels, navigation). Detail pages have a
  /// moderate boilerplate share; pure chrome/index pages approach 1.
  double boilerplate_fraction = 0.0;
  /// Fraction of fields that are numeric or date-like. Chart/listing pages
  /// (daily box-office tables) are dominated by them.
  double numeric_fraction = 0.0;
  /// Fraction of pages whose first prominent heading text is unique within
  /// the cluster — detail pages name a distinct entity per page.
  double distinct_heading_fraction = 0.0;
  /// Mean number of text fields per page.
  double mean_fields = 0.0;
};

/// Thresholds of the rule-based verdict.
struct DetailPageConfig {
  /// A normalized string is boilerplate when it occurs on at least this
  /// fraction of pages.
  double boilerplate_page_fraction = 0.5;
  double max_numeric_fraction = 0.45;
  double min_distinct_heading_fraction = 0.6;
  double min_mean_fields = 4.0;
  /// Cooperative time budget, checked per page while computing signals:
  /// once expired, the signals are computed from the pages seen so far.
  Deadline deadline;
};

/// Computes the cluster signals.
DetailPageSignals ComputeDetailPageSignals(
    const std::vector<const DomDocument*>& pages,
    const DetailPageConfig& config = {});

/// True when the cluster looks like detail pages and is worth running the
/// CERES pipeline on; chart-only and index clusters (boxofficemojo-style)
/// are rejected.
bool LooksLikeDetailPages(const std::vector<const DomDocument*>& pages,
                          const DetailPageConfig& config = {});

}  // namespace ceres

#endif  // CERES_CLUSTER_DETAIL_PAGE_DETECTOR_H_
