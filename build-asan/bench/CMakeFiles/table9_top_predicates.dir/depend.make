# Empty dependencies file for table9_top_predicates.
# This may be replaced when dependencies are built.
