#include "robustness/resilient_loader.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ceres {

Result<LoadedCrawl> LoadCrawl(const std::vector<RawPage>& raw,
                              const ResilientLoadOptions& options) {
  LoadedCrawl crawl;
  crawl.surviving_index.assign(raw.size(), -1);
  for (size_t i = 0; i < raw.size(); ++i) {
    Result<DomDocument> parsed = ParseHtml(raw[i].html, options.parse);
    if (!parsed.ok()) {
      crawl.quarantined.push_back(QuarantinedPage{
          static_cast<PageIndex>(i), raw[i].url,
          PrependContext(parsed.status(), raw[i].url)});
      continue;
    }
    crawl.surviving_index[i] = static_cast<PageIndex>(crawl.pages.size());
    crawl.source_index.push_back(static_cast<PageIndex>(i));
    crawl.pages.push_back(std::move(parsed).value());
  }
  // Division-free budget check (quarantined > budget * total): an empty
  // batch can never divide by zero or spuriously trip the budget — zero
  // quarantined pages always passes, whatever the batch size.
  if (static_cast<double>(crawl.quarantined.size()) >
      options.max_quarantine_fraction * static_cast<double>(raw.size())) {
    return Status::ResourceExhausted(
        StrCat("quarantined ", crawl.quarantined.size(), " of ", raw.size(),
               " pages, over the budget of ",
               options.max_quarantine_fraction));
  }
  if (!crawl.quarantined.empty()) {
    LogInfo(StrCat("resilient load: quarantined ", crawl.quarantined.size(),
                   " of ", raw.size(), " pages"));
  }
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("ceres_loader_pages_total")
        ->Increment(static_cast<int64_t>(raw.size()));
    registry.GetCounter("ceres_loader_quarantined_total")
        ->Increment(static_cast<int64_t>(crawl.quarantined.size()));
  }
  return crawl;
}

namespace {

// Maps a caller page set (raw indexing) onto surviving indices, dropping
// quarantined members. `what` names the set in error messages.
Result<std::vector<PageIndex>> MapPageSet(const std::vector<PageIndex>& pages,
                                          const LoadedCrawl& crawl,
                                          const char* what) {
  std::vector<PageIndex> mapped;
  mapped.reserve(pages.size());
  for (PageIndex page : pages) {
    if (page < 0 ||
        static_cast<size_t>(page) >= crawl.surviving_index.size()) {
      return Status::InvalidArgument(
          StrCat(what, " page out of range: ", page));
    }
    PageIndex surviving = crawl.surviving_index[static_cast<size_t>(page)];
    if (surviving >= 0) mapped.push_back(surviving);
  }
  if (!pages.empty() && mapped.empty()) {
    // An empty set means "all pages" to the pipeline; a requested set that
    // was quarantined away must not silently widen into that.
    return Status::ResourceExhausted(
        StrCat("every requested ", what, " page was quarantined"));
  }
  return mapped;
}

}  // namespace

Result<PipelineResult> RunPipelineResilient(
    const std::vector<RawPage>& raw, const KnowledgeBase& kb,
    const PipelineConfig& config, const ResilientLoadOptions& load_options) {
  CERES_ASSIGN_OR_RETURN(LoadedCrawl crawl, LoadCrawl(raw, load_options),
                         "resilient load");

  // An empty surviving batch — an empty input crawl, or one whose pages all
  // quarantined under a permissive budget — degrades to an empty result
  // with exact diagnostics. Handing RunPipeline zero pages would turn a
  // data condition into a spurious InvalidArgument, which matters once
  // batches arrive as corpus shards: an emptied shard must cost nothing,
  // not fail its worker.
  if (crawl.pages.empty()) {
    PipelineResult empty;
    empty.cluster_of_page.assign(raw.size(), -1);
    empty.topic_of_page.assign(raw.size(), kInvalidEntity);
    empty.topic_node_of_page.assign(raw.size(), kInvalidNode);
    empty.diagnostics.quarantined_pages = std::move(crawl.quarantined);
    return empty;
  }

  PipelineConfig inner_config = config;
  CERES_ASSIGN_OR_RETURN(
      inner_config.annotation_pages,
      MapPageSet(config.annotation_pages, crawl, "annotation"));
  CERES_ASSIGN_OR_RETURN(
      inner_config.extraction_pages,
      MapPageSet(config.extraction_pages, crawl, "extraction"));

  CERES_ASSIGN_OR_RETURN(PipelineResult inner,
                         RunPipeline(crawl.pages, kb, inner_config));

  // Re-express every page index in the caller's raw-crawl indexing.
  PipelineResult result;
  result.cluster_of_page.assign(raw.size(), -1);
  result.topic_of_page.assign(raw.size(), kInvalidEntity);
  result.topic_node_of_page.assign(raw.size(), kInvalidNode);
  for (size_t i = 0; i < crawl.pages.size(); ++i) {
    const size_t source = static_cast<size_t>(crawl.source_index[i]);
    result.cluster_of_page[source] = inner.cluster_of_page[i];
    result.topic_of_page[source] = inner.topic_of_page[i];
    result.topic_node_of_page[source] = inner.topic_node_of_page[i];
  }
  result.annotations = std::move(inner.annotations);
  for (Annotation& annotation : result.annotations) {
    annotation.page = crawl.source_index[static_cast<size_t>(annotation.page)];
  }
  result.annotated_pages.reserve(inner.annotated_pages.size());
  for (PageIndex page : inner.annotated_pages) {
    result.annotated_pages.push_back(
        crawl.source_index[static_cast<size_t>(page)]);
  }
  std::sort(result.annotated_pages.begin(), result.annotated_pages.end());
  result.extractions = std::move(inner.extractions);
  for (Extraction& extraction : result.extractions) {
    extraction.page = crawl.source_index[static_cast<size_t>(extraction.page)];
  }
  result.models = std::move(inner.models);
  result.diagnostics = std::move(inner.diagnostics);
  result.diagnostics.quarantined_pages = std::move(crawl.quarantined);
  return result;
}

}  // namespace ceres
