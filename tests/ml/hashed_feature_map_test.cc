#include "ml/hashed_feature_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace ceres {
namespace {

TEST(HashedFeatureMapTest, AssignsDenseIndicesInFirstOccurrenceOrder) {
  HashedFeatureMap map;
  EXPECT_EQ(map.GetOrAdd(0xdeadbeefull), 0);
  EXPECT_EQ(map.GetOrAdd(0xcafef00dull), 1);
  EXPECT_EQ(map.GetOrAdd(0xdeadbeefull), 0);  // Re-add returns existing.
  EXPECT_EQ(map.GetOrAdd(0x12345678ull), 2);
  EXPECT_EQ(map.size(), 3);
  EXPECT_EQ(map.IdAt(0), 0xdeadbeefull);
  EXPECT_EQ(map.IdAt(1), 0xcafef00dull);
  EXPECT_EQ(map.IdAt(2), 0x12345678ull);
}

TEST(HashedFeatureMapTest, GetNeverInserts) {
  HashedFeatureMap map;
  EXPECT_EQ(map.Get(42), -1);
  EXPECT_EQ(map.size(), 0);
  map.GetOrAdd(42);
  EXPECT_EQ(map.Get(42), 0);
}

TEST(HashedFeatureMapTest, FrozenMapDropsUnseenIds) {
  HashedFeatureMap map;
  map.GetOrAdd(1);
  map.GetOrAdd(2);
  map.Freeze();
  EXPECT_TRUE(map.frozen());
  EXPECT_EQ(map.GetOrAdd(3), -1);
  EXPECT_EQ(map.GetOrAdd(1), 0);  // Known ids still resolve.
  EXPECT_EQ(map.size(), 2);
}

TEST(HashedFeatureMapTest, CollidingIdsStayDistinct) {
  // Ids congruent modulo any power-of-two table size the map will ever
  // reach: identical low 40 bits, distinct high bits. Every one lands on
  // the same initial probe slot, exercising linear probing end to end.
  HashedFeatureMap map;
  constexpr uint64_t kStride = 1ull << 40;
  constexpr int kColliders = 64;
  for (int i = 0; i < kColliders; ++i) {
    EXPECT_EQ(map.GetOrAdd(0x123ull + kStride * static_cast<uint64_t>(i)), i);
  }
  for (int i = 0; i < kColliders; ++i) {
    const uint64_t id = 0x123ull + kStride * static_cast<uint64_t>(i);
    EXPECT_EQ(map.Get(id), i);
    EXPECT_EQ(map.IdAt(i), id);
  }
  // A colliding id never inserted resolves to absent, not to a neighbour.
  EXPECT_EQ(map.Get(0x123ull + kStride * kColliders), -1);
}

TEST(HashedFeatureMapTest, CollidersSurviveTableGrowth) {
  HashedFeatureMap map;
  constexpr uint64_t kStride = 1ull << 40;
  // Interleave a colliding family with enough distinct ids to force the
  // probe table through several growths, then re-verify the family.
  for (int i = 0; i < 50; ++i) {
    map.GetOrAdd(0x77ull + kStride * static_cast<uint64_t>(i));
  }
  for (uint64_t filler = 0; filler < 3000; ++filler) {
    map.GetOrAdd(0x1000000ull + filler);
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(map.Get(0x77ull + kStride * static_cast<uint64_t>(i)), i);
  }
  EXPECT_EQ(map.size(), 3050);
}

TEST(HashedFeatureMapTest, CopyIsIndependent) {
  HashedFeatureMap map;
  map.GetOrAdd(7);
  HashedFeatureMap copy = map;
  copy.GetOrAdd(8);
  EXPECT_EQ(map.size(), 1);
  EXPECT_EQ(copy.size(), 2);
  EXPECT_EQ(copy.Get(7), 0);
}

TEST(HashedFeatureMapTest, ZeroIdIsAValidFeature) {
  // Id 0 must not be confused with an empty slot.
  HashedFeatureMap map;
  EXPECT_EQ(map.GetOrAdd(0), 0);
  EXPECT_EQ(map.Get(0), 0);
  EXPECT_EQ(map.GetOrAdd(0), 0);
  EXPECT_EQ(map.size(), 1);
}

}  // namespace
}  // namespace ceres
