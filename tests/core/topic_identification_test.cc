#include "core/topic_identification.h"

#include <gtest/gtest.h>

#include "core/entity_matcher.h"
#include "testing/fixtures.h"

namespace ceres {
namespace {

using testing::FilmPageHtml;
using testing::ParseOrDie;
using testing::TinyMovieKb;

struct SitePages {
  std::vector<DomDocument> docs;
  std::vector<const DomDocument*> ptrs;
  std::vector<PageMentions> mentions;

  void Add(const KnowledgeBase& kb, const std::string& html) {
    docs.push_back(ParseOrDie(html));
    ptrs.clear();
    mentions.clear();
    for (const DomDocument& doc : docs) {
      ptrs.push_back(&doc);
      mentions.push_back(MatchPageMentions(doc, kb));
    }
  }
};

TopicConfig LooseConfig() {
  TopicConfig config;
  config.min_annotations_per_page = 2;
  config.common_string_min_count = 100;  // Tiny KB: disable the filter.
  return config;
}

TEST(TopicIdentificationTest, IdentifiesFilmTopics) {
  TinyMovieKb fixture;
  SitePages site;
  site.Add(fixture.kb,
           FilmPageHtml("Do the Right Thing", "Spike Lee", "Spike Lee",
                        {"Spike Lee", "Danny Aiello", "John Turturro"},
                        {"Comedy", "Dramedy"}));
  site.Add(fixture.kb,
           FilmPageHtml("Crooklyn", "Spike Lee", "Joie Lee",
                        {"Zelda Harris"}, {"Comedy"}));
  TopicResult result = IdentifyTopics(site.ptrs, site.mentions, fixture.kb,
                                      LooseConfig());
  EXPECT_EQ(result.topic[0], fixture.right_thing);
  EXPECT_EQ(result.topic[1], fixture.crooklyn);
  // The topic node is the h1 on both pages (the dominant XPath).
  EXPECT_EQ(site.docs[0].node(result.topic_node[0]).tag, "h1");
  EXPECT_EQ(site.docs[1].node(result.topic_node[1]).tag, "h1");
}

TEST(TopicIdentificationTest, DominantPathOverridesSpuriousLocalWinner) {
  TinyMovieKb fixture;
  SitePages site;
  // Three normal pages fix the h1 path as dominant...
  site.Add(fixture.kb,
           FilmPageHtml("Do the Right Thing", "Spike Lee", "Spike Lee",
                        {"Danny Aiello", "John Turturro"}, {"Comedy"}));
  site.Add(fixture.kb,
           FilmPageHtml("Crooklyn", "Spike Lee", "Joie Lee",
                        {"Zelda Harris"}, {"Comedy"}));
  // ...then a page whose h1 is Selma but which also mentions Crooklyn data
  // in a side box; the topic must come from the h1 field.
  site.Add(fixture.kb,
           FilmPageHtml("Selma", "Ava DuVernay", "Paul Webb",
                        {"Danny Aiello"},
                        {"Dramedy"}, {"Crooklyn", "Comedy"}));
  TopicResult result = IdentifyTopics(site.ptrs, site.mentions, fixture.kb,
                                      LooseConfig());
  EXPECT_EQ(result.topic[2], fixture.selma);
}

TEST(TopicIdentificationTest, UniquenessFilterDropsRepeatedCandidate) {
  TinyMovieKb fixture;
  SitePages site;
  // Six pages whose real topics are unknown to the KB but which all carry
  // a "Crooklyn" recommendation: Crooklyn would win as candidate topic on
  // every page.
  for (int i = 0; i < 6; ++i) {
    site.Add(fixture.kb,
             FilmPageHtml("Unknown Film #" + std::to_string(i), "Spike Lee",
                          "Spike Lee", {"Danny Aiello", "John Turturro"},
                          {"Comedy", "Dramedy"}, {"Crooklyn"}));
  }
  TopicConfig config = LooseConfig();
  config.max_pages_per_topic = 5;
  TopicResult result =
      IdentifyTopics(site.ptrs, site.mentions, fixture.kb, config);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(result.topic[i], kInvalidEntity) << "page " << i;
  }
  // Without the uniqueness filter the spurious candidate sticks.
  config.apply_uniqueness_filter = false;
  result = IdentifyTopics(site.ptrs, site.mentions, fixture.kb, config);
  int assigned = 0;
  for (int i = 0; i < 6; ++i) {
    if (result.topic[i] != kInvalidEntity) ++assigned;
  }
  EXPECT_GT(assigned, 0);
}

TEST(TopicIdentificationTest, InformativenessFilterDropsThinPages) {
  TinyMovieKb fixture;
  SitePages site;
  // Selma has only 2 facts in the KB; a min of 3 annotations drops it.
  site.Add(fixture.kb, FilmPageHtml("Selma", "X", "Y", {"Danny Aiello"},
                                    {"Dramedy"}));
  site.Add(fixture.kb,
           FilmPageHtml("Do the Right Thing", "Spike Lee", "Spike Lee",
                        {"Danny Aiello", "John Turturro"}, {"Comedy"}));
  TopicConfig config = LooseConfig();
  config.min_annotations_per_page = 3;
  TopicResult result =
      IdentifyTopics(site.ptrs, site.mentions, fixture.kb, config);
  EXPECT_EQ(result.topic[0], kInvalidEntity);
  EXPECT_EQ(result.topic[1], fixture.right_thing);
}

TEST(TopicIdentificationTest, LiteralEntitiesNeverTopics) {
  // Build a KB where a literal would otherwise be the best candidate.
  Ontology ontology;
  TypeId film = ontology.AddEntityType("film");
  TypeId date = ontology.AddEntityType("date", /*is_literal=*/true);
  PredicateId released = ontology.AddPredicate("released", film, date, false);
  KnowledgeBase kb(std::move(ontology));
  EntityId f = kb.AddEntity(film, "Some Film");
  EntityId d = kb.AddEntity(date, "12 June 1989");
  kb.AddTriple(f, released, d);
  kb.Freeze();

  DomDocument page = ParseOrDie(
      "<body><h1>Some Film</h1><div>12 June 1989</div></body>");
  std::vector<const DomDocument*> pages{&page};
  std::vector<PageMentions> mentions{MatchPageMentions(page, kb)};
  TopicConfig config;
  config.min_annotations_per_page = 1;
  config.common_string_min_count = 100;
  TopicResult result = IdentifyTopics(pages, mentions, kb, config);
  EXPECT_EQ(result.topic[0], f);
}

TEST(TopicIdentificationTest, PagesWithNoCandidatesGetNoTopic) {
  TinyMovieKb fixture;
  SitePages site;
  site.Add(fixture.kb, "<body><h1>Nothing here</h1></body>");
  TopicResult result = IdentifyTopics(site.ptrs, site.mentions, fixture.kb,
                                      LooseConfig());
  EXPECT_EQ(result.topic[0], kInvalidEntity);
}

// The §3.1.1 common-string filter: with the floor disabled (min_count 1),
// 0.01% of a tiny KB rounds below one triple, so any topic whose name also
// appears as a triple object (films do, via inverse predicates) becomes
// "common" and is banned; the floor restores sane behaviour.
TEST(TopicIdentificationTest, CommonStringFloorPreventsOverFiltering) {
  Ontology ontology;
  TypeId film = ontology.AddEntityType("film");
  TypeId person = ontology.AddEntityType("person");
  PredicateId directed =
      ontology.AddPredicate("directedBy", film, person, true);
  PredicateId director_of =
      ontology.AddPredicate("directorOf", person, film, true);
  KnowledgeBase kb(std::move(ontology));
  EntityId f = kb.AddEntity(film, "Do the Right Thing");
  EntityId p = kb.AddEntity(person, "Spike Lee");
  kb.AddTriple(f, directed, p);
  kb.AddTriple(p, director_of, f);  // The film's name is now an object.
  kb.Freeze();

  DomDocument page = ParseOrDie(
      "<body><h1>Do the Right Thing</h1><div>Spike Lee</div></body>");
  std::vector<const DomDocument*> pages{&page};
  std::vector<PageMentions> mentions{MatchPageMentions(page, kb)};
  TopicConfig config;
  config.min_annotations_per_page = 1;
  config.common_string_fraction = 0.0001;
  config.common_string_min_count = 1;  // Floor disabled: everything common.
  TopicResult no_floor = IdentifyTopics(pages, mentions, kb, config);
  EXPECT_EQ(no_floor.topic[0], kInvalidEntity);

  config.common_string_min_count = 200;  // Default floor.
  TopicResult with_floor = IdentifyTopics(pages, mentions, kb, config);
  EXPECT_EQ(with_floor.topic[0], f);
}

TEST(TopicIdentificationTest, RankedPathsOrderedByFrequency) {
  TinyMovieKb fixture;
  SitePages site;
  for (int i = 0; i < 3; ++i) {
    site.Add(fixture.kb,
             FilmPageHtml(i == 0 ? "Do the Right Thing"
                          : i == 1 ? "Crooklyn" : "Selma",
                          "Spike Lee", "Spike Lee", {"Danny Aiello"},
                          {"Comedy"}));
  }
  TopicConfig config = LooseConfig();
  config.min_annotations_per_page = 1;
  TopicResult result =
      IdentifyTopics(site.ptrs, site.mentions, fixture.kb, config);
  ASSERT_FALSE(result.ranked_paths.empty());
  // The h1 title path must rank first: every page's candidate lives there.
  EXPECT_EQ(result.ranked_paths[0].steps().back().tag, "h1");
}

}  // namespace
}  // namespace ceres
