// Corpus: blocking work on the event-loop thread (the test lints this
// content under a src/net/ path). Exactly one blocking-in-loop violation
// — the std::ifstream constructed in loop scope; the guarded ::read, the
// (void)-discarded ::write, and the socket recv/send calls are all
// compliant shapes the loop legitimately performs on non-blocking fds.
// Never compiled — linted by tests/lint/ceres_lint_test.cc.

#include <fstream>
#include <string>

namespace ceres {

void PumpEvents(int wake_fd, int client_fd) {
  char scratch[64];
  while (::read(wake_fd, scratch, sizeof(scratch)) > 0) {  // guarded: checked
  }
  const char byte = 1;
  (void)!::write(wake_fd, &byte, 1);  // discarded deliberately with (void)

  std::ifstream config("limits.conf");  // BAD: file I/O stalls the loop
  std::string line;

  (void)::recv(client_fd, scratch, sizeof(scratch), 0);
  (void)::send(client_fd, scratch, sizeof(scratch), 0);
}

}  // namespace ceres
