// Domain scenario: a complex multi-template site (IMDb-like) with long
// multi-valued predicates, duplicated mentions, and trap sections.
//
// Runs CERES-Full and the CERES-Topic ablation side by side and reports
// annotation and extraction precision per page domain — the §5.4
// experiment in miniature.

#include <cstdio>

#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "synth/corpora.h"
#include "synth/truth.h"

int main() {
  using namespace ceres;  // NOLINT(build/namespaces)

  std::printf("Building the IMDb-like corpus...\n");
  synth::Corpus corpus = synth::MakeImdbCorpus(/*scale=*/0.5);
  const synth::SyntheticSite& site = corpus.sites[0];

  std::vector<DomDocument> pages;
  for (const synth::GeneratedPage& page : site.pages) {
    Result<DomDocument> parsed = ParseHtml(page.html);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    pages.push_back(std::move(parsed).value());
  }
  eval::SiteTruth truth = synth::BuildSiteTruth(site.pages, pages);
  std::printf("%zu pages (films, people, and TV episodes mixed).\n\n",
              pages.size());

  // 50/50 split, as in the paper.
  PipelineConfig base;
  for (size_t i = 0; i < pages.size(); ++i) {
    (i % 2 == 0 ? base.annotation_pages : base.extraction_pages)
        .push_back(static_cast<PageIndex>(i));
  }

  eval::TableReport table({"System", "Annotation P", "Annotation R",
                           "Extraction P", "Extraction R",
                           "#Extractions"});
  for (bool full : {false, true}) {
    PipelineConfig config = base;
    config.annotator.use_relation_filtering = full;
    Result<PipelineResult> result =
        RunPipeline(pages, corpus.seed_kb, config);
    if (!result.ok()) {
      std::fprintf(stderr, "pipeline error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    eval::Prf annotation = eval::ScoreAnnotations(
        result->annotations, truth, corpus.seed_kb, base.annotation_pages);
    eval::ScoreOptions options;
    options.pages = base.extraction_pages;
    options.confidence_threshold = 0.5;
    eval::Prf extraction =
        eval::ScoreExtractions(result->extractions, truth, options);
    table.AddRow({full ? "CERES-Full" : "CERES-Topic",
                  eval::FormatRatio(annotation.precision()),
                  eval::FormatRatio(annotation.recall()),
                  eval::FormatRatio(extraction.precision()),
                  eval::FormatRatio(extraction.recall()),
                  std::to_string(extraction.tp + extraction.fp)});
  }
  table.Print();
  std::printf(
      "\nAlgorithm 2's local+global mention disambiguation is what turns "
      "the noisy Topic-only labels into a usable training set.\n");
  return 0;
}
