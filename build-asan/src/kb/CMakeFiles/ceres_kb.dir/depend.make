# Empty dependencies file for ceres_kb.
# This may be replaced when dependencies are built.
