#ifndef CERES_TEXT_JACCARD_H_
#define CERES_TEXT_JACCARD_H_

#include <cstddef>
#include <span>
#include <unordered_set>

namespace ceres {

/// Jaccard similarity |A ∩ B| / |A ∪ B| between two sets. Returns 0 when
/// both sets are empty. This is the topic-candidate score of Equation (1).
template <typename T>
double JaccardSimilarity(const std::unordered_set<T>& a,
                         const std::unordered_set<T>& b) {
  if (a.empty() && b.empty()) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t intersection = 0;
  for (const T& item : small) {
    if (large.count(item) > 0) ++intersection;
  }
  const size_t uni = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

/// Overload for a hash set against a duplicate-free sorted span (the shape
/// of the frozen KB's ObjectsOfSubject views): |A ∩ B| is counted by
/// probing `a` per span element, no temporary set.
template <typename T>
double JaccardSimilarity(const std::unordered_set<T>& a,
                         std::span<const T> b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t intersection = 0;
  for (const T& item : b) {
    if (a.count(item) > 0) ++intersection;
  }
  const size_t uni = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

}  // namespace ceres

#endif  // CERES_TEXT_JACCARD_H_
