#ifndef CERES_TOOLS_LINT_LINT_H_
#define CERES_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

/// ceres_lint — a tokenizer-level static analyzer enforcing the project's
/// concurrency and status-discipline invariants over src/, tools/, and
/// bench/. It deliberately has no libclang dependency (only g++ ships in
/// the build image): files are tokenized with comment/string/preprocessor
/// stripping, and each rule pattern-matches the token stream. The rules
/// are tuned to the repo's idiom — precise on this codebase rather than
/// general over all C++.
///
/// Rules:
///   ignored-status   A call to a function declared as returning Status /
///                    Result<T> used as a bare expression statement. The
///                    declared-function set is mined from the scanned
///                    files themselves (pass one). Discard deliberately
///                    with `(void)Call();`.
///   naked-sync       `std::mutex` / `std::lock_guard` / `std::unique_lock`
///                    / `std::condition_variable` (and friends) named in
///                    the concurrency-critical scope (src/serve/, src/net/,
///                    src/util/parallel.h). That scope must use the
///                    checked wrappers from util/sync.h so every lock
///                    participates in lock-order deadlock detection.
///   thread-hygiene   `std::thread::detach()` or `sleep_for`/`sleep_until`
///                    polling in non-test code. Detached threads outlive
///                    their owners' invariants; sleep-polling hides
///                    missing condition-variable signalling.
///   config-deadline  A `*Config` struct in src/core/, src/cluster/, or
///                    src/fusion/ without a `Deadline` member. Every
///                    pipeline-stage config must carry the cooperative
///                    deadline so no stage is uninterruptible.
///   raw-parallelism  Raw `std::thread`, a `ParallelFor` call with a bare
///                    numeric thread count, or `ParallelConfig{<number>}`
///                    in src/core/. Batch code must thread ParallelConfig
///                    through from the caller (or use
///                    ParallelConfig::Sequential()) so thread budgets stay
///                    a single top-level policy knob.
///   raw-timing       `std::chrono::steady_clock` named in src/core/ or
///                    src/serve/ (src/obs/ excluded — it wraps the clock).
///                    Pipeline and serving code times through
///                    obs::TraceSpan / obs::MonotonicNow (src/obs/trace.h)
///                    so every measurement lands in the shared trace and
///                    metrics surfaces instead of ad-hoc locals.
///   raw-process      `fork` / `vfork` / `exec*` / `waitpid` / `kill` /
///                    `_exit` called outside src/dist/ (tests exempt).
///                    src/dist/ owns process lifecycle: a stray fork or
///                    kill elsewhere bypasses the coordinator's watchdog,
///                    reaping, and restart accounting.
///   raw-socket       `socket` / `bind` / `listen` / `accept` / `accept4`
///                    / `connect` / `epoll_*` called outside src/net/
///                    (tests exempt). src/net/ owns the socket edge: a
///                    stray socket elsewhere bypasses the server's
///                    non-blocking setup, backpressure, rate limiting, and
///                    drain accounting. `poll` is deliberately not policed
///                    — src/dist/ waits on worker pipes with it.
///
/// Any diagnostic can be suppressed for one line with a trailing comment:
///   // ceres-lint: allow(<rule>)    or    // ceres-lint: allow(all)
namespace ceres::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  /// Rule slug ("ignored-status", "naked-sync", ...).
  std::string rule;
  std::string message;
};

/// One input to the linter. `path` decides rule scope (serve scope, test
/// exemption) and is what diagnostics cite; `content` is linted as-is, so
/// callers may pair corpus content with a synthetic path to pin a scope.
struct SourceFile {
  std::string path;
  std::string content;
};

/// Lints `files` as one program: pass one mines Status-returning function
/// declarations across all of them, pass two applies every rule per file.
/// Diagnostics come back sorted by (file, line).
std::vector<Diagnostic> Lint(const std::vector<SourceFile>& files);

/// Recursively collects .h/.cc files under each of `paths` (a path may
/// also name a single file). Skips directories named "corpus" (the lint
/// self-test's deliberately-bad snippets) and any build output directory
/// (name starting with "build").
std::vector<SourceFile> CollectSources(const std::vector<std::string>& paths,
                                       std::string* error);

/// "file:line: [rule] message" — the grep/IDE-clickable rendering.
std::string FormatDiagnostic(const Diagnostic& diagnostic);

}  // namespace ceres::lint

#endif  // CERES_TOOLS_LINT_LINT_H_
