#include "synth/names.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>

namespace ceres::synth {
namespace {

TEST(NamesTest, DeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(PersonName(&a), PersonName(&b));
  }
}

TEST(NamesTest, PersonNamesHaveTwoParts) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    std::string name = PersonName(&rng);
    EXPECT_NE(name.find(' '), std::string::npos) << name;
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(name[0]))) << name;
  }
}

TEST(NamesTest, VarietyAcrossDraws) {
  Rng rng(2);
  std::set<std::string> names;
  for (int i = 0; i < 200; ++i) names.insert(FilmTitle(&rng));
  EXPECT_GT(names.size(), 100u);
}

TEST(NamesTest, LocalesProduceDistinctFlavours) {
  Rng a(3);
  Rng b(3);
  // Same seed, different locale banks: names differ.
  std::string english = PersonName(&a, Locale::kEnglish);
  std::string icelandic = PersonName(&b, Locale::kIcelandic);
  EXPECT_NE(english, icelandic);
}

TEST(NamesTest, LiteralFormats) {
  Rng rng(4);
  EXPECT_NE(DateString(&rng).find(' '), std::string::npos);
  std::string height = HeightString(&rng);
  EXPECT_NE(height.find('\''), std::string::npos);
  std::string weight = WeightString(&rng);
  EXPECT_NE(weight.find("lbs"), std::string::npos);
  std::string phone = PhoneString(&rng);
  EXPECT_EQ(phone.front(), '(');
  std::string isbn = IsbnString(&rng);
  EXPECT_EQ(isbn.substr(0, 4), "978-");
  EXPECT_EQ(WebsiteString(&rng, "Ashford College"),
            "www.ashford-college.edu");
}

TEST(NamesTest, GenreVocabularyFixed) {
  EXPECT_EQ(GenreNames().size(), 18u);
  EXPECT_EQ(GenreNames()[0], "Comedy");
}

TEST(NamesTest, AmbiguousEpisodeTitlesIncludePilot) {
  const auto& titles = AmbiguousEpisodeTitles();
  EXPECT_NE(std::find(titles.begin(), titles.end(), "Pilot"), titles.end());
}

TEST(UiLabelTest, EnglishDefaults) {
  EXPECT_EQ(UiLabel("director", Locale::kEnglish), "Director:");
  EXPECT_EQ(UiLabel("cast", Locale::kEnglish), "Cast");
}

TEST(UiLabelTest, LocalizedWhenAvailable) {
  EXPECT_EQ(UiLabel("director", Locale::kItalian), "Regia:");
  EXPECT_EQ(UiLabel("director", Locale::kCzech), "Režie:");
  EXPECT_EQ(UiLabel("director", Locale::kDanish), "Instruktør:");
}

TEST(UiLabelTest, FallsBackToEnglish) {
  // Italian table has no "isbn" entry.
  EXPECT_EQ(UiLabel("isbn", Locale::kItalian), "ISBN-13:");
  // Unknown key falls through to the key itself.
  EXPECT_EQ(UiLabel("nonexistent_key", Locale::kEnglish),
            "nonexistent_key");
}

TEST(SlugifyTest, Basics) {
  EXPECT_EQ(Slugify("Do the Right Thing"), "do-the-right-thing");
  EXPECT_EQ(Slugify("  A -- B  "), "a-b");
  EXPECT_EQ(Slugify("Ümlaut"), "mlaut");  // Non-ASCII dropped.
  EXPECT_EQ(Slugify(""), "");
}

}  // namespace
}  // namespace ceres::synth
